#!/usr/bin/env python3
"""Check that internal Markdown links resolve.

Walks the Markdown files given on the command line (files or directories),
extracts ``[text](target)`` links, and verifies that every *internal*
target exists:

* relative file targets must name a file or directory in the repo
  (resolved against the linking file's directory),
* pure-fragment targets (``#section``) must match a heading in the same
  file, using GitHub's slug rules (lowercase, punctuation dropped, spaces
  to hyphens),
* ``http(s)://`` and ``mailto:`` targets are skipped — CI must not depend
  on the network.

Exit status is the number of broken links, so CI can run simply::

    python tools/check_doc_links.py README.md docs

This is the docs job's backstop (see .github/workflows/ci.yml); run it
locally before committing documentation changes.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, drop punctuation, '-' for spaces."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in _HEADING_RE.finditer(markdown):
        base = github_slug(match.group(1))
        n = counts.get(base, 0)
        counts[base] = n + 1
        slugs.add(base if n == 0 else f"{base}-{n}")
    return slugs


def collect_files(arguments: list[str]) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"error: no such file or directory: {argument}", file=sys.stderr)
            sys.exit(2)
    return files


def check_file(md_file: Path) -> list[str]:
    """Return one human-readable error per broken link in ``md_file``."""
    errors: list[str] = []
    text = md_file.read_text(encoding="utf-8")
    own_slugs = heading_slugs(text)
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        lineno = text.count("\n", 0, match.start()) + 1
        if target.startswith("#"):
            if target[1:] not in own_slugs:
                errors.append(f"{md_file}:{lineno}: no heading for anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (md_file.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{md_file}:{lineno}: broken link {target!r} -> {resolved}")
            continue
        if anchor and resolved.suffix == ".md":
            slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
            if anchor not in slugs:
                errors.append(
                    f"{md_file}:{lineno}: {target!r} anchor #{anchor} not found in {resolved.name}"
                )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    files = collect_files(argv)
    errors: list[str] = []
    for md_file in files:
        errors.extend(check_file(md_file))
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(files)
    print(f"checked {checked} markdown file(s): {len(errors)} broken link(s)")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
