#!/usr/bin/env python
"""End-to-end smoke test of the observability plane over real sockets.

What CI runs (and any developer can run locally):

1. boot a real ``repro serve --access-log`` on an ephemeral port;
2. ingest a batch, then tail ``GET /projects/<name>/tail`` with a *raw*
   stdlib HTTP client — no repro transport code — and assert the sealed
   rows arrive as SSE frames with ``logs.seq`` ids;
3. ingest more while the tail is open and assert the new rows arrive
   live on the same connection;
4. reconnect with ``Last-Event-ID`` and assert the stream resumes after
   the cursor — no duplicates, no gap;
5. read ``GET /service/telemetry`` before and after the ingest and
   assert the counters actually moved;
6. render one ``repro monitor --once`` frame against the live server;
7. SIGTERM the server and assert the structured access log recorded the
   requests (``method path status latency_ms tenant``).

Exits non-zero with a diagnostic on any failure.  Usage::

    PYTHONPATH=src python tools/obs_smoke.py
"""

from __future__ import annotations

import http.client
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from urllib.parse import urlparse

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.testing import ServerProcess  # noqa: E402

BATCH = 6
READ_TIMEOUT = 15.0


def _ingest(server: ServerProcess, project: str, tag: str) -> None:
    body = server.post(
        f"/projects/{project}/logs",
        {
            "filename": "train.py",
            "records": [
                {"name": "metric", "value": f"{tag}.r{i}", "ctx_id": i}
                for i in range(BATCH)
            ],
        },
    )
    if body["queued"] != BATCH:
        raise AssertionError(f"queued {body['queued']} of {BATCH} records")


def _seal(server: ServerProcess, project: str) -> None:
    server.get(f"/projects/{project}/dataframe?names=metric&primary=1")


def _open_tail(base_url: str, project: str, last_event_id: int = 0):
    """A raw stdlib SSE subscription: connection + streaming response."""
    netloc = urlparse(base_url).netloc
    conn = http.client.HTTPConnection(netloc, timeout=READ_TIMEOUT)
    headers = {"Accept": "text/event-stream"}
    if last_event_id:
        headers["Last-Event-ID"] = str(last_event_id)
    conn.request("GET", f"/projects/{project}/tail?keepalive=1.0", headers=headers)
    resp = conn.getresponse()
    if resp.status != 200:
        raise AssertionError(f"tail answered {resp.status}: {resp.read()!r}")
    content_type = resp.headers.get("Content-Type", "")
    if "text/event-stream" not in content_type:
        raise AssertionError(f"tail Content-Type is {content_type!r}")
    return conn, resp


def _read_events(resp, count: int) -> list[dict[str, str]]:
    """Parse ``count`` SSE event frames off the wire, skipping comments."""
    deadline = time.monotonic() + READ_TIMEOUT
    events: list[dict[str, str]] = []
    frame: dict[str, str] = {}
    while len(events) < count:
        if time.monotonic() > deadline:
            raise AssertionError(f"read {len(events)} of {count} events before timeout")
        line = resp.readline().decode("utf-8")
        if not line:
            raise AssertionError(f"stream ended after {len(events)} of {count} events")
        line = line.rstrip("\n")
        if not line:
            if frame:
                events.append(frame)
                frame = {}
            continue
        if line.startswith(":"):
            continue
        key, _, value = line.partition(":")
        frame[key] = value.strip()
    return events


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="flor-obs-smoke-") as tmp:
        root = Path(tmp) / "host"
        with ServerProcess(root, extra_args=("--access-log",)) as server:
            print(f"server up at {server.base_url} (access log on)")

            _ingest(server, "alpha", "pre")
            _seal(server, "alpha")

            conn, resp = _open_tail(server.base_url, "alpha")
            backlog = _read_events(resp, BATCH)
            ids = [int(e["id"]) for e in backlog]
            if ids != list(range(1, BATCH + 1)):
                print(f"FAIL: backlog ids {ids}", file=sys.stderr)
                return 1
            print(f"raw-socket tail delivered the {BATCH}-row backlog, ids {ids[0]}..{ids[-1]}")

            _ingest(server, "alpha", "live")
            _seal(server, "alpha")
            live = _read_events(resp, BATCH)
            live_ids = [int(e["id"]) for e in live]
            if live_ids != list(range(BATCH + 1, 2 * BATCH + 1)):
                print(f"FAIL: live ids {live_ids}", file=sys.stderr)
                return 1
            conn.close()
            print(f"rows ingested mid-stream arrived live, ids {live_ids[0]}..{live_ids[-1]}")

            cursor = live_ids[2]
            conn, resp = _open_tail(server.base_url, "alpha", last_event_id=cursor)
            resumed = _read_events(resp, 2 * BATCH - cursor)
            resumed_ids = [int(e["id"]) for e in resumed]
            if resumed_ids != list(range(cursor + 1, 2 * BATCH + 1)):
                print(f"FAIL: resume from {cursor} gave {resumed_ids}", file=sys.stderr)
                return 1
            conn.close()
            print(f"Last-Event-ID {cursor} resumed at {resumed_ids[0]} — no gap, no duplicate")

            telemetry = server.get("/service/telemetry")
            if telemetry["counters"].get("flush.rows", 0) < 2 * BATCH:
                print(f"FAIL: flush.rows stuck at {telemetry['counters']}", file=sys.stderr)
                return 1
            if telemetry["tail"]["subscribed_total"] < 2:
                print(f"FAIL: tail stats {telemetry['tail']}", file=sys.stderr)
                return 1
            if "flush.ms" not in telemetry["histograms"]:
                print("FAIL: no flush.ms histogram in telemetry", file=sys.stderr)
                return 1
            print(
                f"telemetry moved: flush.rows={telemetry['counters']['flush.rows']:.0f}, "
                f"subscribed_total={telemetry['tail']['subscribed_total']}"
            )

            env = {**os.environ}
            env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            monitor = subprocess.run(
                [sys.executable, "-m", "repro.cli", "monitor", "--once", "--url", server.base_url],
                capture_output=True,
                text=True,
                timeout=30,
                env=env,
            )
            if monitor.returncode != 0 or "flush.rows" not in monitor.stdout:
                print(f"FAIL: repro monitor --once: {monitor.stdout}{monitor.stderr}", file=sys.stderr)
                return 1
            print("repro monitor --once rendered a frame:")
            for line in monitor.stdout.strip().splitlines()[:4]:
                print(f"  {line}")

            code = server.terminate()
            output = server.process.stdout.read() if server.process.stdout else ""
            if code != 0:
                print(f"FAIL: server exited {code} after SIGTERM", file=sys.stderr)
                return 1
            access_lines = [
                line
                for line in output.splitlines()
                if line.startswith(("POST /projects/alpha/logs", "GET /service/telemetry"))
            ]
            if not access_lines:
                print(f"FAIL: no access-log lines in output:\n{output}", file=sys.stderr)
                return 1
            parts = access_lines[0].split()
            if len(parts) != 5 or parts[2] not in ("200", "202"):
                print(f"FAIL: malformed access-log line {access_lines[0]!r}", file=sys.stderr)
                return 1
            print(f"access log recorded {len(access_lines)} request lines, e.g. {access_lines[0]!r}")

    print("obs smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
