#!/usr/bin/env python
"""End-to-end smoke test of multi-tenant admission control over real sockets.

What CI runs (and any developer can run locally):

1. boot ``repro serve --qos-policy policy.json`` — a single-process service
   with a rate policy on the ``hot`` tenant and nothing on ``cold``;
2. drive a 10:1 hot/cold request mix through the real HTTP stack: the hot
   tenant must collect ``429`` answers carrying a positive ``Retry-After``
   header, the cold tenant must never see one (never starved, never
   throttled);
3. check ``GET /service/stats`` reports the admission counters (hot
   throttled > 0, cold throttled == 0) and ``GET /service/policy`` shows
   the enforcing table;
4. PUT a conflicting rule and require the structured ``409`` rejection;
5. SIGTERM the server expecting a clean exit 0.

Exits non-zero with a diagnostic on any failure.  Usage::

    PYTHONPATH=src python tools/qos_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.testing import ServerProcess  # noqa: E402

POLICY = {"rules": [{"selector": "hot", "rate": 5.0, "burst": 3.0}]}
ROUNDS = 12  #: each round: 10 hot posts, 1 cold post (the 10:1 mix)


def _post(server: ServerProcess, project: str, tag: str):
    """One append; returns (status, retry_after_header_or_None)."""
    try:
        server.post(
            f"/projects/{project}/logs",
            {"records": [{"name": "metric", "value": tag, "ctx_id": 0}]},
        )
        return 202, None
    except urllib.error.HTTPError as error:
        error.read()
        return error.code, error.headers.get("Retry-After")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="flor-qos-smoke-") as tmp:
        policy_file = Path(tmp) / "policy.json"
        policy_file.write_text(json.dumps(POLICY))
        root = Path(tmp) / "host"
        with ServerProcess(
            root, job_workers=0, extra_args=("--qos-policy", str(policy_file))
        ) as server:
            print(f"qos service up at {server.base_url} (policy: {POLICY['rules']})")

            hot_throttled = cold_denied = 0
            for i in range(ROUNDS):
                for j in range(10):
                    status, retry_after = _post(server, "hot", f"hot.{i}.{j}")
                    if status == 429:
                        hot_throttled += 1
                        if retry_after is None or float(retry_after) <= 0:
                            print(
                                f"FAIL: 429 without a positive Retry-After ({retry_after!r})",
                                file=sys.stderr,
                            )
                            return 1
                    elif status != 202:
                        print(f"FAIL: hot tenant got {status}", file=sys.stderr)
                        return 1
                status, _ = _post(server, "cold", f"cold.{i}")
                if status != 202:
                    cold_denied += 1
            print(f"mix done: hot saw {hot_throttled} 429s, cold saw {cold_denied} denials")
            if hot_throttled == 0:
                print("FAIL: hot tenant was never throttled", file=sys.stderr)
                return 1
            if cold_denied > 0:
                print(f"FAIL: cold tenant denied {cold_denied} times", file=sys.stderr)
                return 1

            qos = server.get("/service/stats")["qos"]
            hot_stats = qos["tenants"]["hot"]
            cold_stats = qos["tenants"]["cold"]
            print(
                f"counters: hot admitted={hot_stats['admitted']} "
                f"throttled={hot_stats['throttled']}, "
                f"cold admitted={cold_stats['admitted']} "
                f"throttled={cold_stats['throttled']}"
            )
            if hot_stats["throttled"] < hot_throttled:
                print("FAIL: stats under-count hot throttles", file=sys.stderr)
                return 1
            if cold_stats["throttled"] != 0 or cold_stats["admitted"] != ROUNDS:
                print("FAIL: cold tenant counters wrong", file=sys.stderr)
                return 1

            table = server.get("/service/policy")
            if not table["enforcing"] or not table["rules"]:
                print(f"FAIL: policy table not enforcing: {table}", file=sys.stderr)
                return 1

            # A rule shadowed by hot's prefix sibling must be rejected 409
            # with the structured conflict detail.
            request = urllib.request.Request(
                f"{server.base_url}/service/policy/h*",
                data=json.dumps({"rate": 50.0, "position": -1}).encode(),
                method="PUT",
                headers={"Content-Type": "application/json"},
            )
            try:
                urllib.request.urlopen(request, timeout=10)
                print("FAIL: conflicting policy write was accepted", file=sys.stderr)
                return 1
            except urllib.error.HTTPError as error:
                detail = json.load(error)["detail"]
                if error.code != 409 or detail.get("code") != "shadows":
                    print(f"FAIL: bad conflict answer {error.code}: {detail}", file=sys.stderr)
                    return 1
                error.read()
            print(f"conflicting write rejected 409 ({detail})")

            code = server.terminate()
            if code != 0:
                print(f"FAIL: server exited {code} after SIGTERM", file=sys.stderr)
                return 1
            print("server drained and exited 0 after SIGTERM")

    print("qos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
