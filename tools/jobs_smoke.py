#!/usr/bin/env python
"""End-to-end smoke test of durable job orchestration over a real socket.

What CI runs (and any developer can run locally):

1. populate a temp multi-tenant root with one project holding two committed
   versions of ``train.py`` that never logged ``weight``;
2. start ``repro serve --job-workers 1`` as a real subprocess on an
   ephemeral port;
3. submit a tiny backfill job over HTTP (``POST
   /projects/<name>/jobs/backfill``);
4. poll ``GET /jobs/<id>`` until the embedded worker drives it to
   ``succeeded``, then confirm the backfilled column through the dataframe
   endpoint;
5. send SIGTERM and verify the server drains and exits cleanly (exit code
   0) — the graceful-shutdown path container deployments rely on.

Exits non-zero with a diagnostic on any failure.  Usage::

    PYTHONPATH=src python tools/jobs_smoke.py
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ProjectConfig, Session  # noqa: E402
from repro.workloads import BackfillJobWorkload  # noqa: E402

POLL_SECONDS = 0.2
STARTUP_TIMEOUT = 30.0
JOB_TIMEOUT = 60.0
SHUTDOWN_TIMEOUT = 20.0


def _request(method: str, url: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


def main() -> int:
    workload = BackfillJobWorkload(projects=1, versions=2, epochs=2, steps=1)
    project = workload.project_names()[0]
    with tempfile.TemporaryDirectory(prefix="flor-jobs-smoke-") as tmp:
        root = Path(tmp) / "host"
        workload.populate(root)
        print(f"populated {project} under {root} ({workload.versions} versions)")

        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "--project",
                str(root),
                "serve",
                "--port",
                "0",
                "--job-workers",
                "1",
                "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=str(REPO_ROOT),
            env={**__import__("os").environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        try:
            # The ready banner prints the bound ephemeral port.
            base = None
            deadline = time.monotonic() + STARTUP_TIMEOUT
            while time.monotonic() < deadline:
                line = server.stdout.readline()
                if not line:
                    time.sleep(POLL_SECONDS)
                    continue
                match = re.search(r"at (http://[\d.]+:\d+)", line)
                if match:
                    base = match.group(1)
                    break
            if base is None:
                print("FAIL: server never printed its address", file=sys.stderr)
                return 1
            print(f"server up at {base}")

            body = _request(
                "POST",
                f"{base}/projects/{project}/jobs/backfill",
                {"filename": workload.filename, "new_source": workload.hindsight_source()},
            )
            job_id = body["job"]["id"]
            print(f"submitted job {job_id} ({body['job']['state']})")

            state = None
            deadline = time.monotonic() + JOB_TIMEOUT
            while time.monotonic() < deadline:
                state = _request("GET", f"{base}/jobs/{job_id}")["job"]["state"]
                if state in ("succeeded", "failed", "cancelled"):
                    break
                time.sleep(POLL_SECONDS)
            events = _request("GET", f"{base}/jobs/{job_id}/events")["events"]
            print(f"job {job_id} -> {state}; events: {[e['kind'] for e in events]}")
            if state != "succeeded":
                print(f"FAIL: job finished {state!r}, wanted 'succeeded'", file=sys.stderr)
                return 1

            frame = _request(
                "GET", f"{base}/projects/{project}/dataframe?names=weight"
            )
            backfilled = sum(
                1 for record in frame["records"] if record.get("weight") is not None
            )
            expected = workload.expected_new_records
            print(f"backfilled weight rows visible over HTTP: {backfilled}/{expected}")
            if backfilled != expected:
                print("FAIL: backfilled column incomplete", file=sys.stderr)
                return 1

            server.send_signal(signal.SIGTERM)
            try:
                code = server.wait(timeout=SHUTDOWN_TIMEOUT)
            except subprocess.TimeoutExpired:
                print("FAIL: server did not drain after SIGTERM", file=sys.stderr)
                return 1
            if code != 0:
                print(f"FAIL: server exited {code} after SIGTERM", file=sys.stderr)
                return 1
            print("server drained and exited 0 after SIGTERM")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)

        # Durability outlives the process: the job row and its trail are
        # still readable straight from the root.
        from repro.jobs import JobStore

        with JobStore.open(root) as store:
            job = store.require(job_id)
            assert job.state == "succeeded", job.state
            print(f"durable after shutdown: job {job.id} {job.state}, "
                  f"{len(store.events(job.id))} events on disk")
        with Session(ProjectConfig(root / project, project)) as session:
            rows = len(session.dataframe("weight"))
            assert rows == workload.expected_new_records, rows

    print("jobs smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
