#!/usr/bin/env python3
"""Enforce the storage seam: ``sqlite3`` stays behind the storage layer.

The whole point of the :mod:`repro.storage` protocols is that every layer
above storage is backend-agnostic — repositories, the query engine, the
flusher, the service pool and the job store talk to
:class:`~repro.storage.protocols.RelationalStore`, never to SQLite
directly.  That property only holds while nobody re-introduces a direct
``sqlite3`` import, so this lint walks ``src/repro`` and fails when any
module outside ``repro.storage`` or ``repro.relational`` imports
``sqlite3`` (via ``import sqlite3``, ``from sqlite3 import ...``, or an
aliased form).

Detection is AST-based — docstrings and comments that merely *mention*
sqlite3 are fine; only actual import statements count.

Exit status is the number of violating imports, so CI can run simply::

    python tools/check_storage_seam.py

Run it locally after touching anything under ``src/repro``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Packages allowed to import sqlite3: the storage layer itself and the
#: relational package that hosts the reference RelationalStore backend.
ALLOWED_PREFIXES = ("repro.storage", "repro.relational")

FORBIDDEN_MODULE = "sqlite3"


def module_name(src_root: Path, path: Path) -> str:
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def sqlite_imports(path: Path) -> list[int]:
    """Line numbers of sqlite3 import statements in ``path``."""
    tree = ast.parse(path.read_text("utf-8"), filename=str(path))
    lines = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == FORBIDDEN_MODULE:
                    lines.append(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:
                if node.module.split(".")[0] == FORBIDDEN_MODULE:
                    lines.append(node.lineno)
    return lines


def main(argv: list[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent / "src"
    violations = 0
    for path in sorted(src_root.rglob("*.py")):
        name = module_name(src_root, path)
        if any(name == p or name.startswith(p + ".") for p in ALLOWED_PREFIXES):
            continue
        for lineno in sqlite_imports(path):
            print(
                f"{path}:{lineno}: {name} imports sqlite3 directly — "
                f"go through repro.storage.protocols.RelationalStore instead"
            )
            violations += 1
    if violations == 0:
        print("storage seam intact: sqlite3 imports confined to", ", ".join(ALLOWED_PREFIXES))
    return violations


if __name__ == "__main__":
    sys.exit(main(sys.argv))
