#!/usr/bin/env python
"""End-to-end smoke test of the worker fleet over real sockets.

What CI runs (and any developer can run locally):

1. boot ``repro serve --workers 2`` — router + supervisor in front, two
   worker subprocesses on ephemeral ports — and wait for full
   registration;
2. find two projects the hash ring places on *different* workers
   (``GET /fleet/resolve``) and ingest a batch to each through the router;
3. SIGKILL one worker by pid, poll ``GET /fleet/workers`` until the
   supervisor has respawned and re-registered the same worker id under a
   new pid, then ingest again and read both projects back with a primary
   read — routing must still resolve identically;
4. check the aggregated ``GET /service/stats`` names every worker with
   its id, owned-shard count and a fresh heartbeat age;
5. SIGTERM the supervisor and verify the drain hand-off exits 0.

Exits non-zero with a diagnostic on any failure.  Usage::

    PYTHONPATH=src python tools/fleet_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path
from urllib.parse import quote

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.testing import FleetProcess  # noqa: E402

WORKERS = 2
BATCH = 8
RECOVERY_TIMEOUT = 60.0


def _ingest(fleet: FleetProcess, project: str, tag: str) -> list[str]:
    values = [f"{tag}.r{i}" for i in range(BATCH)]
    body = fleet.post(
        f"/projects/{project}/logs",
        {
            "filename": "train.py",
            "records": [
                {"name": "metric", "value": value, "ctx_id": i}
                for i, value in enumerate(values)
            ],
        },
    )
    if body["queued"] != BATCH:
        raise AssertionError(f"queued {body['queued']} of {BATCH} records")
    return values


def _stored(fleet: FleetProcess, project: str) -> set[str]:
    fleet.get(f"/projects/{project}/dataframe?names=metric&primary=1")
    query = quote("SELECT value FROM logs WHERE value_name = 'metric'")
    body = fleet.get(f"/projects/{project}/sql?q={query}")
    return {str(record["value"]) for record in body["records"]}


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="flor-fleet-smoke-") as tmp:
        root = Path(tmp) / "host"
        with FleetProcess(root, workers=WORKERS) as fleet:
            print(f"fleet up at {fleet.base_url} ({WORKERS} workers)")
            placed = fleet.projects_on_distinct_workers(2)
            (victim_project, victim), (other_project, other) = placed.items()
            print(f"placement: {victim_project}->{victim}, {other_project}->{other}")

            expected = {victim_project: set(), other_project: set()}
            for project in placed:
                expected[project].update(_ingest(fleet, project, "pre"))
            print(f"ingested {BATCH} records to each project through the router")

            old_pid = fleet.kill_worker9(victim)
            print(f"SIGKILLed worker {victim} (pid {old_pid})")
            took = fleet.wait_worker_recovered(victim, old_pid, timeout=RECOVERY_TIMEOUT)
            new_pid = fleet.worker_view(victim)["pid"]
            print(f"supervisor respawned {victim} as pid {new_pid} in {took:.2f}s")

            if fleet.resolve(victim_project) != victim:
                print("FAIL: ring placement changed across the restart", file=sys.stderr)
                return 1
            for project in placed:
                expected[project].update(_ingest(fleet, project, "post"))
            print("post-recovery ingest routed and acknowledged")

            for project in placed:
                stored = _stored(fleet, project)
                # The kill window may eat pre-kill unflushed rows on the
                # victim (they were never sealed); post-recovery rows and
                # the untouched worker's rows must all be present.
                must_have = (
                    {v for v in expected[project] if v.startswith("post")}
                    if project == victim_project
                    else expected[project]
                )
                missing = must_have - stored
                if missing:
                    print(f"FAIL: {project} lost rows {sorted(missing)}", file=sys.stderr)
                    return 1
            print("both projects read back consistent through the router")

            stats = fleet.get("/service/stats")
            for worker_id, worker_stats in stats["workers"].items():
                if "error" in worker_stats:
                    print(f"FAIL: {worker_id} unreachable in aggregation", file=sys.stderr)
                    return 1
                ident = worker_stats["worker"]
                if ident["id"] != worker_id or ident["heartbeat_age"] is None:
                    print(f"FAIL: bad identity block for {worker_id}: {ident}", file=sys.stderr)
                    return 1
                print(
                    f"  {worker_id}: pid {ident['pid']}, "
                    f"{ident['owned_shards']} shards, "
                    f"heartbeat {ident['heartbeat_age']:.2f}s ago"
                )

            code = fleet.terminate()
            if code != 0:
                print(f"FAIL: supervisor exited {code} after SIGTERM", file=sys.stderr)
                return 1
            print("supervisor drained the fleet and exited 0 after SIGTERM")

    print("fleet smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
