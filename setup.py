"""Compatibility shim for editable installs in offline environments.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``python setup.py develop`` keeps working where the ``wheel`` package
(required by PEP 517 editable builds on older setuptools) is unavailable.
"""

from setuptools import setup

setup()
