"""Closing the loop: human feedback through the web UI improves the model.

Reproduces Section 4.4 of the paper:

1. the pipeline processes documents and trains a first-page classifier,
2. the feedback web application serves predictions as "page colors",
3. simulated experts correct the colors for a few documents via
   ``POST /save_colors`` (recorded with full provenance),
4. the corrected labels are folded into a second training run, and the
   model registry shows which run inference would now select.

Run with ``python examples/feedback_loop.py``.  The Quickstart in the
repo-root README.md introduces the log/commit/dataframe primitives the
feedback routes record with.
"""

from __future__ import annotations

from pathlib import Path

from repro import ProjectConfig, Session
from repro.mlops import LabelStore, MetricRegistry
from repro.pipeline import PdfPipeline


def simulate_expert(pipeline: PdfPipeline, document_name: str) -> list[int]:
    """An expert derives the true page colors from document structure."""
    document = pipeline.state.corpus.get(document_name)
    colors, color = [], -1
    for page in document.pages:
        if page.is_first_page or page.heading is not None:
            color += 1
        colors.append(max(color, 0))
    return colors


def main() -> None:
    root = Path(__file__).resolve().parent / "example_runs" / "feedback_loop"
    session = Session(ProjectConfig(root, "feedback-loop"))
    pipeline = PdfPipeline(session, documents=5, max_pages=6, epochs=3, seed=3)

    print("--- initial pipeline run ---")
    pipeline.run_all()
    registry = MetricRegistry(session)
    print("  ", registry.render("acc"))
    print("  ", registry.render("recall"))

    app = pipeline.state.app
    client = app.test_client()
    documents = pipeline.state.corpus.document_names()

    print("\n--- experts review and correct page colors through the UI ---")
    for name in documents[:3]:
        corrected = simulate_expert(pipeline, name)
        response = client.post("/save_colors", json_body={"pdf_name": name, "colors": corrected})
        print(f"  {name}: saved {response.json()['count']} colors (status {response.status})")

    labels = LabelStore(session, filename="app.py")
    coverage = labels.coverage("page_color", documents)
    print(f"\nhuman-label coverage: {coverage['human_labelled']:.0f}/{coverage['entities']:.0f} documents")

    print("\n--- colors now served back by the UI reflect the corrections ---")
    for name in documents[:3]:
        print(f"  {name}: {app.get_colors(name)}")

    print("\n--- retrain with the feedback in history, then compare runs ---")
    pipeline.train()
    session.commit("retraining after feedback")
    comparison = registry.compare_runs(["acc", "recall"])
    print(comparison.to_string())

    best = pipeline.registry.best("recall")
    print(f"\nmodel registry: inference now selects the run at {best['tstamp']} (recall={best['recall']:.3f})")

    session.close()


if __name__ == "__main__":
    main()
