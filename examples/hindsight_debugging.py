"""Multiversion hindsight logging: "log now, get data from the past".

The scenario from Section 2 of the paper:

1. A training script is run and committed several times, each version with
   different hyperparameters.  None of the runs logged the model's weight
   norm — the developer did not anticipate needing it.
2. A regression is noticed; the developer adds ``flor.log("weight", ...)``
   to the *latest* version only.
3. ``HindsightEngine.backfill`` propagates that statement into every prior
   version and replays them (differentially, using checkpoints), so the new
   column appears for all historical runs in ``flor.dataframe``.

Run with ``python examples/hindsight_debugging.py``.  The Quickstart in
the repo-root README.md covers the recording side this example replays.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import HindsightEngine, ProjectConfig, ReplayPlan, Session
from repro.workloads import VersionedScriptWorkload


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="flor_hindsight_"))
    session = Session(ProjectConfig(root, "hindsight-demo"))
    workload = VersionedScriptWorkload(versions=4, epochs=6, steps=3, refactor=True)

    print("recording 4 versions of train.py (no 'weight' logging anywhere)...")
    vids = workload.record_all_versions(session)
    for i, vid in enumerate(vids):
        print(f"  version {i}: vid={vid}")

    before = session.dataframe("loss", "weight")
    missing = sum(1 for row in before.to_records() if row.get("weight") is None)
    print(f"\nbefore backfill: {len(before)} rows, {missing} missing 'weight' values")

    print("\ndeveloper adds flor.log('weight', state['w']) to the latest version only")
    engine = HindsightEngine(session)
    report = engine.backfill("train.py", new_source=workload.hindsight_source(), parallelism="thread")
    print("backfill report:", report.summary())
    for version in report.versions:
        replay = version.replay
        print(
            f"  vid={version.vid} injected={version.injected_statements} "
            f"executed={replay.iterations_executed if replay else 0} "
            f"skipped={replay.iterations_skipped if replay else 0}"
        )

    after = session.dataframe("loss", "weight")
    still_missing = sum(1 for row in after.to_records() if row.get("weight") is None)
    print(f"\nafter backfill: {len(after)} rows, {still_missing} missing 'weight' values")
    print(after.head(8).to_string())

    print("\ndifferential replay: materialize only the final epoch of each version")
    plan = ReplayPlan.only(epoch=[workload.epochs - 1])
    focused = engine.backfill("train.py", new_source=workload.hindsight_source(), plan=plan)
    print("focused backfill:", focused.summary())

    session.close()


if __name__ == "__main__":
    main()
