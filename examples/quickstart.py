"""Quickstart: instrument a training loop with FlorDB and query it back.

This is the paper's Figure 5 in miniature:

1. train a small classifier with ``flor.loop`` / ``flor.log`` /
   ``flor.checkpointing``,
2. commit the run,
3. read the metrics back as a pivoted dataframe and pick the best epoch.

Run with ``python examples/quickstart.py``.  All state lands in
``./example_runs/quickstart/.flor`` so repeated runs accumulate history.
This is the runnable version of the Quickstart section in the repo-root
README.md, which also covers install and the CLI.
"""

from __future__ import annotations

from pathlib import Path

from repro import ProjectConfig, Session, active_session, flor
from repro.ml import TrainingConfig, make_synthetic_classification, train_test_split, train_classifier


def main() -> None:
    root = Path(__file__).resolve().parent / "example_runs" / "quickstart"
    session = Session(ProjectConfig(root, "quickstart"), cli_args={"epochs": 6})

    data = make_synthetic_classification(samples=300, features=10, classes=3, seed=7)
    train_data, test_data = train_test_split(data, test_fraction=0.25, seed=7)

    with active_session(session):
        result = train_classifier(train_data, test_data, TrainingConfig(hidden=32, epochs=6, lr=5e-3))
        vid = flor.commit("quickstart training run")

        print(f"committed version {vid}")
        print(f"final accuracy: {result.final_accuracy:.3f}  final recall: {result.final_recall:.3f}")

        # The "metadata later" payoff: everything logged is already queryable.
        frame = flor.dataframe("acc", "recall")
        print("\nPer-epoch metrics across all recorded runs:")
        print(frame.to_string())

        best = max(frame.to_records(), key=lambda row: row["recall"] or 0.0)
        print(f"\nbest epoch so far: epoch={best['epoch']} recall={best['recall']:.3f} (run {best['tstamp']})")

    session.close()


if __name__ == "__main__":
    main()
