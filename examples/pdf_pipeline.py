"""The PDF-parser pipeline end to end, driven by the Make-like executor.

Reproduces Figures 2 and 4 of the paper: a Makefile describes the stage
dependencies (demux → featurize → train → infer → run), the executor runs
only stale stages, and FlorDB records application, behavioral and change
context along the way.  After the first build the script touches one stage's
input and rebuilds, showing that only the downstream stages re-run.

Run with ``python examples/pdf_pipeline.py``.  New here?  Start with the
Quickstart in the repo-root README.md (and examples/quickstart.py) for the
core log → commit → dataframe flow this pipeline builds on.
"""

from __future__ import annotations

from pathlib import Path

from repro import ProjectConfig, Session
from repro.mlops import MetricRegistry
from repro.relational.queries import git_view
from repro.workloads import PipelineWorkload


def main() -> None:
    root = Path(__file__).resolve().parent / "example_runs" / "pdf_pipeline"
    session = Session(ProjectConfig(root, "pdf-parser"))
    workload = PipelineWorkload(documents=4, max_pages=6, epochs=3)
    executor, pipeline = workload.build_executor(session, root / "build")

    print("Makefile (Figure 4 analogue):")
    print(workload.makefile_text())

    print("\n--- first build ---")
    report = executor.build("run")
    for result in report.results:
        status = "RUN   " if result.executed else "cached"
        print(f"  [{status}] {result.target:<14} {result.reason}")

    print("\n--- second build (everything cached) ---")
    report = executor.build("run")
    print(f"  executed: {report.executed or 'nothing'}")

    print("\n--- after featurize.py changes, only downstream stages rebuild ---")
    (root / "build" / "featurize.py").touch()
    report = executor.build("run")
    for result in report.results:
        status = "RUN   " if result.executed else "cached"
        print(f"  [{status}] {result.target:<14} {result.reason}")

    # Behavioral context: the recorded dependency DAG for the latest version.
    latest_epoch = session.ts2vid.latest(session.projid)
    if latest_epoch is not None:
        print("\nbuild_deps recorded for the latest version:")
        for record in session.build_deps.by_vid(latest_epoch.vid):
            deps = ", ".join(record.deps) or "(none)"
            print(f"  {record.target:<14} <- {deps}   cached={record.cached}")

    # Change context: the virtual git table over the version store.
    frame = git_view(session.repository)
    if not frame.empty:
        print(f"\nversion store holds {len(frame)} file snapshots across {frame['vid'].nunique()} versions")

    registry = MetricRegistry(session)
    print("\ntraining metrics (TensorBoard-style, after the fact):")
    print(" ", registry.render("acc"))
    print(" ", registry.render("recall"))

    # The model-registry role: which checkpoint would inference pick?
    best = pipeline.registry.best("recall")
    if best is not None:
        print(f"\ninference would select the checkpoint from run {best['tstamp']} (recall={best['recall']:.3f})")

    session.close()


if __name__ == "__main__":
    main()
