"""The incremental pivot query engine.

The paper's headline read path — ``flor.dataframe`` over the append-only
``logs``/``loops`` context — used to rebuild the pivoted view from every
row of history on every call.  This package makes that path scale the way
the ingestion path already does: do the work once, amortize it across
requests.

* :class:`PivotViewCache` — materialized pivot views keyed by
  ``(projid, sorted names)``.  Each view records ``logs.seq`` /
  ``loops.rowid`` watermarks; appends only annotate-and-merge the delta
  (per-run re-pivot through the same primitives as a cold rebuild), and
  writers invalidate cheaply through per-project generation counters.
* :class:`QueryEngine` — the planner façade sessions, the CLI and the
  service layer all route reads through: pushdown filters (name set,
  timestamp range) go to SQLite via :mod:`repro.relational.queries`;
  unfiltered pivot reads go through the cache.

See ``docs/architecture.md`` ("Query engine") for the data-flow picture
and benchmark T9 for the measured cold vs. warm/incremental latencies.
"""

from .cache import CacheStats, PivotViewCache
from .engine import QueryEngine

__all__ = [
    "CacheStats",
    "PivotViewCache",
    "QueryEngine",
]
