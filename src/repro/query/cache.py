"""Materialized pivot views with append-aware incremental maintenance.

A cache entry holds one *view state* per ``(projid, sorted names)``: the
annotated long-format records bucketed per run, the per-run pivots of every
co-occurrence group, and the finished frames per requested column order.
Because the pivot is computed run-by-run (see
:mod:`repro.core.dataframe_view`), maintenance is local: an append only
re-pivots the runs it touched and every other run's rows are reused
verbatim, so the refreshed frame equals a from-scratch rebuild by
construction (benchmark T9 asserts this at scale).

Freshness is detected in two tiers:

* **generation counters** — writers in this process
  (:meth:`~repro.core.session.Session.flush`, the service's
  :class:`~repro.service.ingest.IngestionQueue`) bump a per-project
  counter, and the database handle's
  :attr:`~repro.relational.database.Database.write_version` catches any
  other writer sharing the connection (replay backfills, raw repository
  writes).  A read whose entry matches both returns the cached frame
  without touching SQLite at all (a *fast hit*).
* **watermarks** — after a generation bump the cache probes
  ``MAX(logs.seq)`` and ``MAX(loops.rowid)`` (indexed, O(1)).  Unchanged
  watermarks re-validate the entry (*warm hit*); advanced watermarks
  trigger an incremental refresh that fetches only ``seq > watermark``
  log rows, plus a full re-read of any cached run whose loop rows were
  rewritten (``INSERT OR REPLACE`` allocates a fresh rowid, so rewrites
  advance the loop watermark and show up in ``runs_touched_since``).

Returned frames are defensive copies; the cached master is never handed
to callers.  The cache is thread-safe and LRU-capped — one instance is
shared per project shard in the service layer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..core.dataframe_view import (
    RunPivot,
    co_occurrence_groups,
    compose_group,
    finalize,
    pivot_run,
)
from ..dataframe import DataFrame
from ..storage.protocols import RelationalStore
from ..relational.queries import (
    AnnotatedLog,
    log_watermark,
    long_format_records,
    loop_watermark,
    runs_touched_since,
)

#: A run within one project: ``(tstamp, filename)``.
RunPair = tuple[str, str]


@dataclass
class CacheStats:
    """Counters describing a cache's lifetime behaviour."""

    lookups: int = 0
    fast_hits: int = 0
    warm_hits: int = 0
    incremental_refreshes: int = 0
    cold_builds: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hits(self) -> int:
        return self.fast_hits + self.warm_hits

    def as_dict(self) -> dict[str, int]:
        return {
            "lookups": self.lookups,
            "fast_hits": self.fast_hits,
            "warm_hits": self.warm_hits,
            "incremental_refreshes": self.incremental_refreshes,
            "cold_builds": self.cold_builds,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass
class _ViewState:
    """One materialized view: records, per-run pivots, finished frames."""

    projid: str
    names_key: tuple[str, ...]
    #: run -> annotated records, runs in first-appearance order.
    records: "OrderedDict[RunPair, list[AnnotatedLog]]" = field(default_factory=OrderedDict)
    #: name -> runs using it (drives the co-occurrence partition).
    runs_by_name: dict[str, set[RunPair]] = field(default_factory=dict)
    #: group (as a frozenset of names) -> run -> pivoted rows.
    pivots: dict[frozenset, dict[RunPair, RunPivot]] = field(default_factory=dict)
    #: requested column order -> finished frame.
    frames: dict[tuple[str, ...], DataFrame] = field(default_factory=dict)
    log_seq: int = 0
    loop_rowid: int = 0
    generation: int = -1
    db_version: int = -1


class PivotViewCache:
    """LRU-capped cache of incrementally-maintained pivot views.

    Parameters
    ----------
    capacity:
        Maximum number of simultaneously materialized views; the coldest
        entry is dropped beyond that.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple[str, tuple[str, ...]], _ViewState]" = OrderedDict()
        self._generations: dict[str, int] = {}
        self._lock = threading.RLock()
        self.stats = CacheStats()
        # Optional repro.obs.MetricsRegistry, assigned post-construction by
        # the service pool; duck-typed so the query layer stays free of any
        # observability dependency.
        self.metrics = None

    # ------------------------------------------------------------ freshness
    def generation(self, projid: str) -> int:
        with self._lock:
            return self._generations.get(projid, 0)

    def bump_generation(self, projid: str) -> int:
        """Mark the project dirty; the next read re-checks the watermarks.

        This is the write-side invalidation hook: cheap enough to call on
        every flush, precise enough that unrelated projects stay fast.
        """
        with self._lock:
            value = self._generations.get(projid, 0) + 1
            self._generations[projid] = value
            return value

    def invalidate(self, projid: str | None = None) -> int:
        """Drop materialized views (all of them, or one project's); returns the count."""
        with self._lock:
            if projid is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                keys = [k for k in self._entries if k[0] == projid]
                dropped = len(keys)
                for key in keys:
                    del self._entries[key]
            if dropped:
                self.stats.invalidations += 1
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _note(self, tier: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"cache.{tier}")

    # --------------------------------------------------------------- lookup
    def dataframe(self, db: RelationalStore, projid: str, names: Sequence[str]) -> DataFrame:
        """The pivoted view of ``names``, served from the freshest cache tier.

        Any permutation (or duplication) of the same name set shares one
        view state: the co-occurrence partition is order-independent, and
        only the final column order / join anchoring depend on the request
        order, which is re-derived per request from the cached state.
        """
        ordered: list[str] = []
        for name in names:
            name = str(name)
            if name not in ordered:
                ordered.append(name)
        if not ordered:
            return DataFrame()
        key = (projid, tuple(sorted(ordered)))
        with self._lock:
            self.stats.lookups += 1
            generation = self._generations.get(projid, 0)
            db_version = db.write_version
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                if entry.generation == generation and entry.db_version == db_version:
                    self.stats.fast_hits += 1
                    self._note("fast_hits")
                    return self._frame_for(entry, ordered)
                current_seq = log_watermark(db, projid)
                current_loop = loop_watermark(db, projid)
                if current_seq == entry.log_seq and current_loop == entry.loop_rowid:
                    entry.generation = generation
                    entry.db_version = db_version
                    self.stats.warm_hits += 1
                    self._note("warm_hits")
                    return self._frame_for(entry, ordered)
                self._refresh(db, entry, current_seq, current_loop)
                entry.generation = generation
                # The snapshot from the top of this lookup, NOT a re-read:
                # a concurrent untracked write landing during the refresh
                # must leave the entry looking stale so the next read probes
                # the watermarks again instead of fast-hitting past it.
                entry.db_version = db_version
                self.stats.incremental_refreshes += 1
                self._note("incremental_refreshes")
                return self._frame_for(entry, ordered)
            entry = self._cold_build(db, projid, key[1], generation)
            entry.db_version = db_version
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self.stats.cold_builds += 1
            self._note("cold_builds")
            return self._frame_for(entry, ordered)

    # ---------------------------------------------------------- maintenance
    def _cold_build(
        self, db: RelationalStore, projid: str, names_key: tuple[str, ...], generation: int
    ) -> _ViewState:
        # Watermarks are read *before* the record fetch and bound it
        # (max_seq), so a concurrent append lands entirely after the
        # watermark and is picked up — exactly once — by the next refresh.
        current_seq = log_watermark(db, projid)
        current_loop = loop_watermark(db, projid)
        entry = _ViewState(
            projid=projid,
            names_key=names_key,
            runs_by_name={name: set() for name in names_key},
            log_seq=current_seq,
            loop_rowid=current_loop,
            generation=generation,
        )
        records = long_format_records(db, projid, list(names_key), max_seq=current_seq)
        for record in records:
            pair = (record.tstamp, record.filename)
            entry.records.setdefault(pair, []).append(record)
            entry.runs_by_name[record.value_name].add(pair)
        return entry

    def _refresh(
        self, db: RelationalStore, entry: _ViewState, current_seq: int, current_loop: int
    ) -> None:
        """Merge the append delta into the view, re-pivoting only touched runs."""
        touched: set[RunPair] = set()
        rewritten: set[RunPair] = set()
        if current_loop > entry.loop_rowid:
            # Runs whose loop rows changed: new runs are cheap (no cached
            # state), but a *cached* run whose ancestry was rewritten via
            # INSERT OR REPLACE must be re-read wholesale — its existing
            # annotations may name stale iteration values.
            dirty = runs_touched_since(db, entry.projid, entry.loop_rowid)
            rewritten = {pair for pair in dirty if pair in entry.records}
            if rewritten:
                refetched = long_format_records(
                    db,
                    entry.projid,
                    list(entry.names_key),
                    run_keys=sorted(rewritten),
                    max_seq=current_seq,
                )
                by_run: dict[RunPair, list[AnnotatedLog]] = {pair: [] for pair in rewritten}
                for record in refetched:
                    by_run[(record.tstamp, record.filename)].append(record)
                for pair, records in by_run.items():
                    entry.records[pair] = records
                    touched.add(pair)
        if current_seq > entry.log_seq:
            delta = long_format_records(
                db,
                entry.projid,
                list(entry.names_key),
                min_seq=entry.log_seq,
                max_seq=current_seq,
            )
            for record in delta:
                pair = (record.tstamp, record.filename)
                if pair in rewritten:
                    continue  # already covered by the wholesale re-read
                entry.records.setdefault(pair, []).append(record)
                touched.add(pair)
        for pair in touched:
            for record in entry.records.get(pair, ()):
                entry.runs_by_name[record.value_name].add(pair)
        # The partition can only coarsen as runs append (co-occurrence sets
        # grow monotonically); groups that merged are dropped and rebuilt
        # lazily, surviving groups only re-pivot the touched runs.
        partition = {
            frozenset(group)
            for group in co_occurrence_groups(entry.runs_by_name, entry.names_key)
        }
        for group_key in [g for g in entry.pivots if g not in partition]:
            del entry.pivots[group_key]
        for group_key, per_run in entry.pivots.items():
            for pair in touched:
                per_run[pair] = pivot_run(
                    (entry.projid, *pair), entry.records.get(pair, []), set(group_key)
                )
        entry.frames.clear()
        entry.log_seq = current_seq
        entry.loop_rowid = current_loop

    # ------------------------------------------------------------- compose
    def _group_pivots(self, entry: _ViewState, group_key: frozenset) -> dict[RunPair, RunPivot]:
        per_run = entry.pivots.get(group_key)
        if per_run is None:
            wanted = set(group_key)
            per_run = {
                pair: pivot_run((entry.projid, *pair), records, wanted)
                for pair, records in entry.records.items()
            }
            entry.pivots[group_key] = per_run
        return per_run

    def _frame_for(self, entry: _ViewState, ordered: list[str]) -> DataFrame:
        order_key = tuple(ordered)
        frame = entry.frames.get(order_key)
        if frame is None:
            groups = co_occurrence_groups(entry.runs_by_name, ordered)
            frames = []
            for group in groups:
                per_run = self._group_pivots(entry, frozenset(group))
                pivots: list[RunPivot] = []
                for pair, records in entry.records.items():
                    run_pivot = per_run.get(pair)
                    if run_pivot is None:
                        run_pivot = pivot_run((entry.projid, *pair), records, set(group))
                        per_run[pair] = run_pivot
                    pivots.append(run_pivot)
                frames.append(compose_group(pivots, group))
            frame = finalize(frames, ordered)
            entry.frames[order_key] = frame
        # Hand out a copy: cached masters must survive callers that mutate
        # their result (adding columns, fillna, ...).
        return frame.copy()
