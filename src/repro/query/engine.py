"""The query planner façade every read path routes through.

:class:`QueryEngine` decides, per request, which tier answers it:

* **pivot reads** (``flor.dataframe``) with no explicit bounds go through
  the :class:`~repro.query.cache.PivotViewCache` — fast/warm hits return
  the materialized view, appends merge incrementally;
* **bounded reads** (a ``tstamp_range``) push the range into SQLite via
  :func:`repro.core.dataframe_view.build_dataframe` and bypass the cache —
  ad-hoc slices should not evict the hot unbounded views;
* **SQL over a pivot** (``session.sql(..., names=[...])``) materializes
  the temp ``pivot`` table from the *cached* frame instead of rebuilding
  it, so the CLI's ``sql --names`` and the service's ``GET .../sql`` warm
  and reuse the same views as ``dataframe``.

Writers call :meth:`note_write` (wired into ``Session.flush`` and the
service ingestion queue), which bumps the cache's per-project generation
counter — the signal that turns the next read's fast hit into a watermark
probe.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.dataframe_view import build_dataframe
from ..dataframe import DataFrame
from ..storage.protocols import RelationalStore
from ..relational.queries import latest as latest_rows
from .cache import CacheStats, PivotViewCache


class QueryEngine:
    """Plan and execute pivot/SQL reads for one project database.

    Parameters
    ----------
    db:
        The project database (one shard in service deployments).
    projid:
        Project id the reads are scoped to.
    cache:
        Shared :class:`PivotViewCache`; a private one is created when
        omitted.  The service layer shares one cache per shard so the
        views stay warm across requests and clients.
    """

    def __init__(self, db: RelationalStore, projid: str, cache: PivotViewCache | None = None):
        self.db = db
        self.projid = projid
        # Explicit None-check: an empty PivotViewCache is falsy (len() == 0),
        # and a freshly shared cache must not be silently replaced.
        self.cache = cache if cache is not None else PivotViewCache()

    # ---------------------------------------------------------------- reads
    def dataframe(
        self,
        *names: str,
        latest: bool = False,
        tstamp_range: tuple[str | None, str | None] | None = None,
    ) -> DataFrame:
        """The pivoted view of ``names`` (the paper's ``flor.dataframe``).

        ``latest`` keeps only the rows of the newest run, applied after the
        pivot so its semantics match ``flor.utils.latest`` exactly.
        ``tstamp_range`` is an inclusive ``(since, until)`` pair pushed down
        into the SQLite scan (either side may be ``None``).
        """
        requested = [str(n) for n in names]
        if not requested:
            return DataFrame()
        if tstamp_range is not None:
            frame = build_dataframe(self.db, self.projid, requested, tstamp_range=tstamp_range)
        else:
            frame = self.cache.dataframe(self.db, self.projid, requested)
        if latest:
            frame = latest_rows(frame)
        return frame

    def sql(
        self,
        query: str,
        names: Sequence[str] = (),
        params: Sequence[Any] = (),
    ) -> DataFrame:
        """Read-only SQL; with ``names`` the cached pivot backs the temp table.

        The read-only guard runs *before* the pivot is materialized, so a
        rejected statement costs nothing.  Registering the temp ``pivot``
        table writes through the shared connection, which advances its
        ``write_version`` and demotes the next dataframe read from a fast
        hit to a warm hit — two O(1) watermark seeks, after which the fast
        tier resumes.
        """
        from ..relational.sql import _require_read_only, run_sql, sql_over_names

        if names:
            _require_read_only(query)
            names = [str(n) for n in names]
            frame = self.dataframe(*names)
            return sql_over_names(self.db, self.projid, names, query, params, frame=frame)
        return run_sql(self.db, query, params)

    # --------------------------------------------------------------- writes
    def note_write(self) -> None:
        """Signal that this project's context changed (cheap, call per flush)."""
        self.cache.bump_generation(self.projid)

    def invalidate(self) -> int:
        """Drop this project's materialized views; returns how many were dropped."""
        return self.cache.invalidate(self.projid)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats
