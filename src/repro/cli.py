"""Command-line interface to a FlorDB project.

The paper positions FlorDB as open, low-friction tooling that fits the
developer's existing workflow; the CLI is the shell-side of that story.  It
operates on the ``.flor`` home of a project directory and never requires the
original training scripts to be importable.

Subcommands
-----------
``names``      list every log name recorded for the project
``versions``   list version epochs (ts2vid joined with commit metadata)
``dataframe``  print the pivoted view of one or more log names
               (``--since``/``--until`` push a timestamp range into SQLite)
``sql``        run a read-only SQL statement (optionally over a pivoted view)

Both query subcommands route through the session's
:class:`~repro.query.QueryEngine` — the same pushdown + pivot-cache path
the Python API and the HTTP service use.
``stats``      table row counts and storage summary
``backfill``   multiversion hindsight logging for a script in the project
               (``--dry-run`` prints the propagation patch plan per version
               without executing any replay)
``build``      incremental (optionally parallel) build of a Makefile target
``gc``         storage maintenance: ``--tier-cold`` packs version blobs
               older than ``--keep-epochs`` commits into append-only
               archive files (see :mod:`repro.storage.tiering`)
``serve``      multi-tenant HTTP service over the projects under a root
               directory (sharded pool + batched ingestion; see
               :mod:`repro.service`); ``--job-workers N`` embeds N durable
               job workers, and SIGTERM/SIGINT drain them gracefully;
               ``--workers N`` runs a multi-process worker fleet instead —
               a consistent-hash shard router in front of N supervised
               worker processes (see :mod:`repro.fleet`)
``jobs``       durable background jobs over the same root:
               ``submit | status | watch | list | cancel | retry | run``
               (see :mod:`repro.jobs`)
``policy``     per-tenant QoS policy table for the same root:
               ``show | set | delete`` — edits are conflict-checked, and a
               running ``serve --qos`` picks them up within its refresh
               interval (see :mod:`repro.qos`)
``monitor``    live terminal dashboard over a running service or fleet
               router: subscribes to ``GET /service/telemetry?stream=1``
               and renders counters (with rates), gauges, histogram
               percentiles, tail-broker state (see :mod:`repro.obs`)

Example::

    python -m repro.cli --project ./myproj dataframe acc recall
    python -m repro.cli --project ./myproj sql "SELECT COUNT(*) FROM logs"
    python -m repro.cli --project ./myproj backfill train.py --dry-run
    python -m repro.cli --project ./myproj build run --jobs 4
    python -m repro.cli --project ./projects serve --port 8230 --job-workers 2
    python -m repro.cli --project ./projects jobs submit alpha train.py
    python -m repro.cli --project ./projects jobs watch 1

Note that ``serve`` and ``jobs`` interpret ``--project`` differently from
the other subcommands: it is the *root holding one project subdirectory per
tenant* (``<root>/<name>/.flor``), because the service — and the job queue
that feeds its workers — is multi-tenant by design.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .config import ProjectConfig
from .core.hindsight import HindsightEngine
from .core.replay import ReplayPlan
from .core.session import Session
from .errors import ReproError
from .relational.schema import TABLES


def _open_session(args: argparse.Namespace) -> Session:
    config = ProjectConfig(Path(args.project), args.projid or "")
    flush_mode = "sync" if getattr(args, "sync_flush", False) else None
    return Session(config, flush_mode=flush_mode)


def _cmd_names(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        names = session.logs.distinct_names(session.projid)
        for name in names:
            print(name)
        if not names:
            print("(no log names recorded)", file=sys.stderr)
    return 0


def _cmd_versions(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        epochs = session.ts2vid.all(session.projid)
        if not epochs:
            print("(no versions recorded)", file=sys.stderr)
            return 0
        commits = {c.vid: c for c in session.repository.log()}
        print(f"{'ts_start':<28} {'vid':<18} {'files':>5}  message")
        for epoch in epochs:
            commit = commits.get(epoch.vid)
            files = len(commit.files) if commit else 0
            message = commit.message if commit else ""
            print(f"{epoch.ts_start:<28} {epoch.vid:<18} {files:>5}  {message}")
    return 0


def _cmd_dataframe(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        tstamp_range = None
        if args.since or args.until:
            tstamp_range = (args.since, args.until)
        frame = session.dataframe(
            *args.names, latest=args.latest, tstamp_range=tstamp_range
        )
        print(frame.to_string(max_rows=args.max_rows))
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        frame = session.sql(args.query, names=args.names or ())
        print(frame.to_string(max_rows=args.max_rows))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        print(f"project:  {session.projid}")
        print(f"database: {session.config.db_path}")
        for table in TABLES:
            if table == "meta":
                continue
            print(f"{table:>12}: {session.db.count(table)} rows")
        print(f"{'commits':>12}: {len(session.repository)}")
        print(f"{'log names':>12}: {len(session.logs.distinct_names(session.projid))}")
    return 0


def _print_dry_run(report) -> None:
    """Print the propagation patch plan per version (no replay executed)."""
    print(f"dry run: patch plan for {report.filename!r} across {len(report.versions)} version(s)")
    for version in report.versions:
        if version.error is not None:
            print(f"  {version.vid}  error: {version.error}")
            continue
        propagation = version.propagation
        print(
            f"  {version.vid}  inject={version.injected_statements}"
            f"  drop={version.skipped_statements}"
            f"  already_present={len(propagation.already_present) if propagation else 0}"
        )
        if propagation is None:
            continue
        placed = dict((id(stmt), line) for stmt, line in propagation.placements)
        for statement in propagation.injected:
            anchor = placed.get(id(statement))
            if anchor is None:
                where = "anchor unknown"
            elif anchor == 0:
                where = "at top of file"
            else:
                # Insertion index N means the statement lands after old line N.
                where = f"after old line {anchor}"
            print(f"    + {statement.text.strip().splitlines()[0]}  ({where})")
        for statement in propagation.skipped:
            print(
                f"    ! dropped (would not parse/anchor): "
                f"{statement.text.strip().splitlines()[0]}"
            )


def _cmd_backfill(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        engine = HindsightEngine(session)
        plan = ReplayPlan.all()
        if args.epoch is not None:
            plan = ReplayPlan.only(**{args.loop: list(args.epoch)})
        new_source = Path(args.source).read_text() if args.source else None
        report = engine.backfill(
            args.filename,
            new_source=new_source,
            plan=plan,
            parallelism=args.parallelism,
            max_workers=args.workers,
            dry_run=args.dry_run,
        )
        if args.dry_run:
            _print_dry_run(report)
            return 0 if all(v.error is None for v in report.versions) else 1
        summary = report.summary()
        for key, value in summary.items():
            print(f"{key:>22}: {value}")
        for version in report.versions:
            status = "ok" if version.ok else f"error: {version.error or version.replay.error}"
            print(f"  {version.vid}  injected={version.injected_statements}  {status}")
        return 0 if all(v.ok for v in report.versions) else 1


def _cmd_build(args: argparse.Namespace) -> int:
    from .build.executor import BuildExecutor
    from .build.makefile import load_makefile

    with _open_session(args) as session:
        makefile_path = Path(args.makefile)
        if not makefile_path.is_absolute():
            makefile_path = session.config.root / makefile_path
        makefile = load_makefile(makefile_path)
        executor = BuildExecutor(
            makefile,
            workdir=session.config.root,
            session=None if args.no_record else session,
            jobs=args.jobs,
            materialize_missing=False,
        )
        report = executor.build(args.target, force=args.force)
        for result in report.results:
            status = "RUN   " if result.executed else "cached"
            print(f"[{status}] {result.target:<20} {result.reason}")
        print(
            f"built {report.goal!r}: {len(report.executed)} executed, "
            f"{len(report.cached)} cached, jobs={report.jobs}, {report.seconds:.3f}s"
        )
        if report.vid:
            print(f"version: {report.vid}")
    return 0


def _install_shutdown_signals(shutdown_event) -> None:
    """Route SIGTERM/SIGINT into ``shutdown_event`` for graceful container stops.

    ``docker stop`` / Kubernetes pod eviction deliver SIGTERM; without a
    handler the process dies mid-request with job leases dangling until they
    expire.  With it, the server loop exits, job workers drain (in-flight
    jobs are released at a version boundary), and shards flush.  Signal
    handlers can only be installed from the main thread — tests driving
    ``serve`` from a worker thread simply skip them.
    """
    import signal

    def _handler(_signum, _frame):
        shutdown_event.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, _handler)
        except ValueError:  # not the main thread
            return


def _cmd_gc(args: argparse.Namespace) -> int:
    """Tier cold version blobs into the archive (``repro gc --tier-cold``)."""
    from .storage.tiering import TieredBlobStore, select_cold_ids

    if not args.tier_cold:
        print("nothing to do (pass --tier-cold to archive cold version blobs)")
        return 0
    if args.keep_epochs < 0:
        print("error: --keep-epochs must be >= 0", file=sys.stderr)
        return 2
    with _open_session(args) as session:
        repository = session.repository
        store = repository.store
        if not isinstance(store, TieredBlobStore):
            print(
                "error: this repository's blob store does not support tiering",
                file=sys.stderr,
            )
            return 2
        commits = repository.log()
        hot, cold = select_cold_ids(commits, keep_epochs=args.keep_epochs)
        candidates = sorted(cid for cid in cold if store.hot.exists(cid))
        kept = min(args.keep_epochs, len(commits))
        print(f"commits: {len(commits)} total, newest {kept} kept hot")
        print(f"hot blobs referenced: {len(hot)}")
        if args.dry_run:
            print(f"would archive: {len(candidates)} blob(s)")
            return 0
        moved = store.archive(candidates)
        stats = store.stats()
        print(f"archived: {moved} blob(s) (archive now holds {stats['archived']})")
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """Supervisor mode: N worker processes behind a consistent-hash router."""
    import threading

    from .fleet.run import serve_fleet

    if args.backend != "sqlite":
        print(
            "error: --workers requires the sqlite backend "
            "(fleet workers share shard state through the filesystem)",
            file=sys.stderr,
        )
        return 2
    worker_args = [
        "--pool-capacity",
        str(args.pool_capacity),
        "--flush-size",
        str(args.flush_size),
        "--flush-interval",
        str(args.flush_interval),
        "--backend",
        args.backend,
    ]
    if args.replicas > 0:
        worker_args += ["--replicas", str(args.replicas)]
    if args.job_workers > 0:
        # JobStore claiming is CAS-safe across processes, so every worker
        # can run its own drain loop over the shared host-level queue.
        worker_args += ["--job-workers", str(args.job_workers)]
    if args.access_log:
        # Each worker logs the requests it actually served (the router
        # proxies verbatim, so worker-side lines carry the tenant path).
        worker_args += ["--access-log", "--access-log-sample", str(args.access_log_sample)]
    # Deliberately NOT forwarded: --qos / --qos-policy.  Admission control
    # for a fleet runs on the router (one policy view, one set of buckets);
    # workers trust the router and run unthrottled.
    shutdown_event = threading.Event()
    _install_shutdown_signals(shutdown_event)
    root = Path(args.project).resolve()

    def ready(host: str, port: int, supervisor) -> None:
        summary = supervisor.summary()
        print(
            f"serving FlorDB fleet ({summary['registered']} workers) under "
            f"{root} at http://{host}:{port}"
        )
        print("routes: data plane proxied by project hash; control plane local")
        print("        GET /fleet/workers | GET /fleet/resolve?project=<name> | GET /service/stats")
        if args.qos or args.qos_policy:
            print("admission control: enforced at the router (429 + Retry-After; policy at /service/policy)")
        if args.job_workers > 0:
            print(f"job workers: {args.job_workers} per fleet worker (shared durable queue)")
        sys.stdout.flush()

    try:
        serve_fleet(
            root,
            workers=args.workers,
            host=args.host,
            port=args.port,
            worker_args=worker_args,
            sync_flush=args.sync_flush,
            heartbeat_interval=args.fleet_heartbeat,
            quiet=args.quiet,
            ready=ready,
            shutdown_event=shutdown_event,
            qos=args.qos,
            qos_policy_file=args.qos_policy,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from .jobs import JobRunner, pool_session_provider
    from .service import FlorService
    from .service.server import serve

    if args.workers > 0:
        return _cmd_serve_fleet(args)

    service = FlorService(
        Path(args.project).resolve(),
        pool_capacity=args.pool_capacity,
        flush_size=args.flush_size,
        flush_interval=None if args.flush_interval <= 0 else args.flush_interval,
        flush_mode="sync" if args.sync_flush else None,
        backend=args.backend,
        replicas=args.replicas,
        qos=args.qos,
        qos_policy_file=args.qos_policy,
    )
    shutdown_event = threading.Event()
    _install_shutdown_signals(shutdown_event)
    runner = None
    if args.job_workers > 0:
        runner = JobRunner(
            service.jobs,
            pool_session_provider(service.pool),
            workers=args.job_workers,
            name="serve-jobs",
        ).start()
    agent = None
    if args.fleet_worker:
        from .fleet.worker import WorkerAgent

        if not args.fleet_register:
            print("error: --fleet-worker requires --fleet-register", file=sys.stderr)
            return 2
        # An orphaned worker (supervisor gone, heartbeats failing past the
        # timeout) takes the same graceful exit as SIGTERM: drain + close.
        agent = WorkerAgent(
            args.fleet_worker,
            args.fleet_register,
            interval=args.fleet_heartbeat,
            on_orphaned=shutdown_event.set,
        )
        service.worker_agent = agent

    app = service.app()
    if args.access_log:
        from .obs import AccessLog, stderr_emitter

        # One structured line per (sampled) request to stderr; every
        # request still lands in the telemetry registry's http.* series.
        app = AccessLog(
            app,
            metrics=service.metrics,
            emit=stderr_emitter,
            sample=max(1, args.access_log_sample),
        )

    def ready(host: str, port: int) -> None:
        if agent is not None:
            # Registration completes fleet membership: the supervisor only
            # learns the bound ephemeral port from this POST.
            agent.start(f"http://{host}:{port}")
        print(f"serving FlorDB projects under {service.root} at http://{host}:{port}")
        print("routes: POST /projects/<name>/logs | POST /projects/<name>/commit")
        print("        GET  /projects/<name>/dataframe?names=... | GET /projects/<name>/sql?q=...")
        print("        POST /projects/<name>/jobs/backfill | GET /jobs/<id> | POST /jobs/<id>/cancel")
        if args.backend != "sqlite":
            print(f"storage backend: {args.backend} (rows and blobs never touch disk)")
        if args.replicas > 0:
            print(f"read replicas: {args.replicas} per shard (bounded staleness; ?primary=1 bypasses)")
        if service.admission is not None:
            print("admission control: per-tenant rate/quota limits (429 + Retry-After; policy at /service/policy)")
        if runner is not None:
            print(f"job workers: {args.job_workers} (durable queue at {service.root}/.flor-jobs.db)")
        sys.stdout.flush()

    try:
        serve(
            app,
            host=args.host,
            port=args.port,
            quiet=args.quiet,
            ready=ready,
            shutdown_event=shutdown_event,
        )
    finally:
        # Drain order matters: stop claiming and release in-flight jobs
        # first, then flush and close the shards the workers were using.
        if agent is not None:
            agent.stop()
        if runner is not None:
            runner.stop(wait=True)
        service.close()
    return 0


def _format_rule(rule: dict) -> str:
    limits = []
    if rule.get("rate") is not None:
        burst = rule.get("burst")
        limits.append(f"rate={rule['rate']:g}/s" + (f" burst={burst:g}" if burst is not None else ""))
    if rule.get("byte_quota") is not None:
        limits.append(f"bytes={rule['byte_quota']}/{rule['window_seconds']:g}s")
    if not limits:
        limits.append("unlimited")
    return f"{rule['selector']:<20} {' '.join(limits)}  priority={rule['priority']}"


def _cmd_policy_show(args: argparse.Namespace) -> int:
    from .qos import PolicyStore

    with PolicyStore.open(Path(args.project).resolve()) as policies:
        if args.tenant:
            resolution = policies.resolve(args.tenant)
            print(f"{args.tenant}: governed by {resolution.source} "
                  f"({resolution.rule.selector!r})")
            print("  " + _format_rule(resolution.rule.as_dict()))
            return 0
        rules = policies.rules()
        default = policies.default()
        print(f"policy table (generation {policies.generation()}):")
        for rule in rules:
            print("  " + _format_rule(rule.as_dict()))
        if default is not None:
            print("  " + _format_rule(default.as_dict()))
        if not rules and default is None:
            print("  (empty: every tenant admitted unlimited at normal priority)")
    return 0


def _cmd_policy_set(args: argparse.Namespace) -> int:
    from .errors import PolicyConflictError
    from .qos import PolicyStore, rule_from_payload

    payload = {
        "rate": args.rate,
        "burst": args.burst,
        "byte_quota": args.byte_quota,
        "window_seconds": args.window,
        "priority": args.priority,
        "position": args.position,
    }
    with PolicyStore.open(Path(args.project).resolve()) as policies:
        try:
            stored = policies.put(rule_from_payload(args.selector, payload))
        except PolicyConflictError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(f"  conflict: {exc.as_dict()}", file=sys.stderr)
            return 2
        print(_format_rule(stored.as_dict()))
    return 0


def _cmd_policy_delete(args: argparse.Namespace) -> int:
    from .qos import PolicyStore

    with PolicyStore.open(Path(args.project).resolve()) as policies:
        if policies.delete(args.selector):
            print(f"deleted policy rule {args.selector!r}")
            return 0
    print(f"error: no policy rule for selector {args.selector!r}", file=sys.stderr)
    return 1


def _open_job_store(args: argparse.Namespace):
    from .jobs import JobStore

    return JobStore.open(Path(args.project).resolve())


def _print_job(job, *, verbose: bool = False) -> None:
    line = (
        f"job {job.id}  [{job.state}]  project={job.project}  kind={job.kind}"
        f"  attempts={job.attempts}/{job.max_attempts}"
    )
    if job.error:
        line += f"  error={job.error!r}"
    print(line)
    if verbose:
        result = job.result or {}
        for key in sorted(result):
            print(f"    {key}: {result[key]}")


def _cmd_jobs_submit(args: argparse.Namespace) -> int:
    from .config import FLOR_DIR_NAME

    home = Path(args.project).resolve() / args.name / FLOR_DIR_NAME
    if not home.is_dir():
        # Fail at submit time, not execution time: a typo'd tenant name
        # should not become a durable job that workers fail on later.
        raise ReproError(f"unknown project {args.name!r}: no {home} on disk")
    payload: dict = {"filename": args.filename}
    if args.source:
        payload["new_source"] = Path(args.source).read_text()
    if args.epoch is not None:
        payload["plan"] = {args.loop: list(args.epoch)}
    if args.versions:
        payload["versions"] = args.versions
    with _open_job_store(args) as store:
        job = store.submit(
            args.name,
            args.kind,
            payload,
            priority=args.priority,
            max_attempts=args.max_attempts,
        )
        _print_job(job)
    return 0


def _cmd_jobs_status(args: argparse.Namespace) -> int:
    with _open_job_store(args) as store:
        job = store.require(args.job_id)
        _print_job(job, verbose=True)
        if args.events:
            for event in store.events(job.id):
                print(f"    #{event.seq:<4} {event.kind:<18} {event.payload}")
    return 0


def _cmd_jobs_list(args: argparse.Namespace) -> int:
    with _open_job_store(args) as store:
        jobs = store.list_jobs(project=args.name, state=args.state, limit=args.limit)
        if not jobs:
            print("(no jobs)", file=sys.stderr)
        for job in jobs:
            _print_job(job)
    return 0


def _watch_job_over_http(args: argparse.Namespace) -> int:
    """``jobs watch --url``: ride the live SSE event feed instead of polling.

    Subscribes to ``GET /jobs/<id>/tail`` (directly or through the fleet
    router) and prints events as they commit.  A dropped stream — the
    serving worker crashed, the router failed over — is *resumed*, not
    restarted: the last event seq goes back as ``Last-Event-ID`` and the
    relational backfill replays exactly what was missed.
    """
    import json as _json
    import time as _time

    from .errors import TransportError
    from .fleet.transport import HttpClient

    deadline = None if args.timeout <= 0 else _time.monotonic() + args.timeout
    last_seq = 0

    def _remaining() -> float | None:
        if deadline is None:
            return None
        return max(0.0, deadline - _time.monotonic())

    def _timed_out() -> bool:
        return deadline is not None and _time.monotonic() >= deadline

    with HttpClient(args.url, timeout=max(args.timeout, 30.0)) as client:
        while True:
            headers = {"Last-Event-ID": str(last_seq)} if last_seq else {}
            try:
                stream = client.stream(
                    f"/jobs/{args.job_id}/tail?keepalive=1.0", headers=headers
                )
            except TransportError as exc:
                if _timed_out():
                    print(f"timed out after {args.timeout}s: {exc}", file=sys.stderr)
                    return 1
                _time.sleep(0.5)
                continue
            if not stream.ok:
                body = stream.read().decode("utf-8", "replace")
                print(f"error: HTTP {stream.status}: {body[:200]}", file=sys.stderr)
                return 1
            for event in stream.sse().events(timeout=_remaining()):
                if event.id is not None:
                    last_seq = int(event.id)
                payload = _json.loads(event.data) if event.data else {}
                if event.event == "done":
                    state = payload.get("state", "?")
                    print(f"job {args.job_id} finished: {state}")
                    return 0 if state == "succeeded" else 1
                if event.event == "evicted":
                    break  # shed under load; reconnect from the cursor
                print(
                    f"  #{payload.get('seq', last_seq):<4}"
                    f" {event.event or 'event':<18} {payload.get('payload')}"
                )
                sys.stdout.flush()
            # Stream ended without a done event (worker died, eviction,
            # or the timeout guard tripped): resume unless out of time.
            if _timed_out():
                print(
                    f"timed out after {args.timeout}s waiting on job {args.job_id}",
                    file=sys.stderr,
                )
                return 1


def _cmd_jobs_watch(args: argparse.Namespace) -> int:
    """Poll a job until it reaches a terminal state, streaming its events."""
    import time as _time

    if args.url:
        return _watch_job_over_http(args)
    with _open_job_store(args) as store:
        deadline = None if args.timeout <= 0 else _time.monotonic() + args.timeout
        last_seq = 0
        while True:
            job = store.require(args.job_id)
            for event in store.events(job.id, after=last_seq):
                last_seq = event.seq
                print(f"  #{event.seq:<4} {event.kind:<18} {event.payload}")
            if job.terminal:
                _print_job(job, verbose=True)
                return 0 if job.state == "succeeded" else 1
            if deadline is not None and _time.monotonic() >= deadline:
                print(f"timed out after {args.timeout}s; job {job.id} is {job.state}", file=sys.stderr)
                return 1
            _time.sleep(args.interval)


def _cmd_jobs_cancel(args: argparse.Namespace) -> int:
    with _open_job_store(args) as store:
        job = store.cancel(args.job_id)
        _print_job(job)
        return 0


def _cmd_jobs_retry(args: argparse.Namespace) -> int:
    with _open_job_store(args) as store:
        job = store.retry(args.job_id)
        _print_job(job)
        return 0


def _cmd_jobs_run(args: argparse.Namespace) -> int:
    """Drain the queue in-process (no HTTP server): the CLI-side worker."""
    from .jobs import JobRunner, directory_session_provider

    root = Path(args.project).resolve()
    with _open_job_store(args) as store:
        runner = JobRunner(
            store,
            directory_session_provider(root),
            workers=args.workers,
            name="cli-jobs",
        )
        idle = runner.run_until_idle(timeout=args.timeout)
        stats = runner.stats.as_dict()
        print("  ".join(f"{key}={value}" for key, value in stats.items()))
        if not idle:
            print(f"queue not idle after {args.timeout}s", file=sys.stderr)
            return 1
        return 0 if stats["failed"] == 0 else 1


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Live terminal dashboard over ``GET /service/telemetry``.

    ``--once`` prints a single snapshot and exits (scriptable); otherwise
    the command subscribes to the SSE feed and renders a frame per
    snapshot, differencing successive counters into rates.  Works
    identically against a single ``repro serve`` and a fleet router
    (whose payload is the fan-in aggregate plus per-worker blocks).
    """
    import json as _json
    import time as _time

    from .errors import TransportError
    from .fleet.transport import HttpClient
    from .obs.monitor import render_frame

    try:
        with HttpClient(args.url, timeout=max(args.interval * 4, 30.0)) as client:
            if args.once:
                snapshot = client.get_json("/service/telemetry")
                print(render_frame(snapshot))
                return 0
            stream = client.stream(
                f"/service/telemetry?stream=1&interval={args.interval:g}"
            )
            if not stream.ok:
                body = stream.read().decode("utf-8", "replace")
                print(f"error: HTTP {stream.status}: {body[:200]}", file=sys.stderr)
                return 1
            previous: dict | None = None
            previous_at: float | None = None
            frames = 0
            for event in stream.sse().events():
                if event.event != "telemetry":
                    continue
                snapshot = _json.loads(event.data)
                now = _time.monotonic()
                elapsed = None if previous_at is None else now - previous_at
                print(render_frame(snapshot, previous=previous, elapsed=elapsed))
                print()
                sys.stdout.flush()
                previous, previous_at = snapshot, now
                frames += 1
                if args.count and frames >= args.count:
                    return 0
    except TransportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    # The feed ended server-side (shutdown): not an error for a dashboard.
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flordb",
        description="Query and maintain the FlorDB context of a project directory.",
    )
    parser.add_argument("--project", default=".", help="project root (directory containing .flor)")
    parser.add_argument("--projid", default=None, help="override the project id")
    parser.add_argument(
        "--sync-flush",
        action="store_true",
        help="write records inline instead of on the background flusher thread",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("names", help="list recorded log names")
    sub.set_defaults(func=_cmd_names)

    sub = subparsers.add_parser("versions", help="list version epochs")
    sub.set_defaults(func=_cmd_versions)

    sub = subparsers.add_parser("dataframe", help="print the pivoted view of log names")
    sub.add_argument("names", nargs="+", help="log names to pivot into columns")
    sub.add_argument("--latest", action="store_true", help="only rows of the newest run")
    sub.add_argument("--since", default=None, help="only runs with tstamp >= SINCE (pushed into SQLite)")
    sub.add_argument("--until", default=None, help="only runs with tstamp <= UNTIL (pushed into SQLite)")
    sub.add_argument("--max-rows", type=int, default=50)
    sub.set_defaults(func=_cmd_dataframe)

    sub = subparsers.add_parser("sql", help="run a read-only SQL statement")
    sub.add_argument("query")
    sub.add_argument("--names", nargs="*", default=None, help="pivot these names into a temp 'pivot' table first")
    sub.add_argument("--max-rows", type=int, default=50)
    sub.set_defaults(func=_cmd_sql)

    sub = subparsers.add_parser("stats", help="table row counts and storage summary")
    sub.set_defaults(func=_cmd_stats)

    sub = subparsers.add_parser("backfill", help="multiversion hindsight logging for a script")
    sub.add_argument("filename", help="script path relative to the project root (as recorded)")
    sub.add_argument("--source", default=None, help="file holding the new source (default: working copy)")
    sub.add_argument("--parallelism", choices=["serial", "thread", "process"], default="serial")
    sub.add_argument("--workers", type=int, default=4)
    sub.add_argument("--loop", default="epoch", help="loop name restricted by --epoch")
    sub.add_argument("--epoch", type=int, nargs="*", default=None, help="only replay these iterations")
    sub.add_argument(
        "--dry-run",
        action="store_true",
        help="print the propagation patch plan per version (statements injected,"
        " anchors, statements dropped as unparseable) without executing any replay",
    )
    sub.set_defaults(func=_cmd_backfill)

    sub = subparsers.add_parser("build", help="incrementally build a Makefile target")
    sub.add_argument("target", nargs="?", default=None, help="target to build (default: first in the Makefile)")
    sub.add_argument("--makefile", "-f", default="Makefile", help="Makefile path, relative to the project root")
    sub.add_argument("--jobs", "-j", type=int, default=1, help="run up to N independent targets in parallel")
    sub.add_argument("--force", action="store_true", help="rebuild every target regardless of staleness")
    sub.add_argument("--no-record", action="store_true", help="do not commit or record build_deps for this build")
    sub.set_defaults(func=_cmd_build)

    sub = subparsers.add_parser(
        "serve",
        help="serve the projects under --project (one subdirectory per tenant) over HTTP",
    )
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument("--port", type=int, default=8230, help="TCP port (0 picks a free one)")
    sub.add_argument("--pool-capacity", type=int, default=8, help="max simultaneously open project shards")
    sub.add_argument("--flush-size", type=int, default=64, help="records coalesced per ingestion transaction")
    sub.add_argument("--flush-interval", type=float, default=0.5, help="seconds between interval-triggered flushes (<=0 disables)")
    sub.add_argument("--quiet", action="store_true", help="suppress per-request access logging")
    sub.add_argument(
        "--job-workers",
        type=int,
        default=0,
        help="embed N durable job workers draining the root's job queue (0 disables)",
    )
    sub.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="route dataframe/sql reads to N snapshot read replicas per shard (0 disables)",
    )
    sub.add_argument(
        "--backend",
        choices=("sqlite", "memory"),
        default="sqlite",
        help="storage backend per shard (memory keeps rows and blobs off disk entirely)",
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run a multi-process worker fleet: N worker processes routed by "
        "consistent project hash behind this supervisor (0 = single process)",
    )
    sub.add_argument(
        "--qos",
        action="store_true",
        help="enforce per-tenant admission control (rate/quota limits from the policy table)",
    )
    sub.add_argument(
        "--qos-policy",
        default=None,
        metavar="FILE",
        help="load a JSON policy document into the policy table at startup (implies --qos)",
    )
    sub.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured line per request to stderr "
        "(method path status latency_ms tenant) and count requests/latency "
        "in the telemetry registry",
    )
    sub.add_argument(
        "--access-log-sample",
        type=int,
        default=1,
        metavar="N",
        help="emit every Nth access-log line (metrics still see every request)",
    )
    # Internal fleet plumbing: the supervisor spawns each worker with these.
    sub.add_argument("--fleet-worker", default=None, help=argparse.SUPPRESS)
    sub.add_argument("--fleet-register", default=None, help=argparse.SUPPRESS)
    sub.add_argument("--fleet-heartbeat", type=float, default=1.0, help=argparse.SUPPRESS)
    sub.set_defaults(func=_cmd_serve)

    policy = subparsers.add_parser(
        "policy",
        help="inspect and edit the per-tenant QoS policy table under --project",
    )
    policy_sub = policy.add_subparsers(dest="policy_command", required=True)

    sub = policy_sub.add_parser("show", help="print the policy table (or one tenant's resolved policy)")
    sub.add_argument("tenant", nargs="?", default=None, help="resolve this tenant instead of listing rules")
    sub.set_defaults(func=_cmd_policy_show)

    sub = policy_sub.add_parser("set", help="insert or update one policy rule (conflicts are rejected)")
    sub.add_argument("selector", help="exact tenant name, 'prefix*' pattern, or '*' (default fallback)")
    sub.add_argument("--rate", type=float, default=None, help="sustained requests/second (omit = unlimited)")
    sub.add_argument("--burst", type=float, default=None, help="token-bucket capacity (default: max(rate, 1))")
    sub.add_argument("--byte-quota", type=int, default=None, help="bytes admitted per window (omit = unlimited)")
    sub.add_argument("--window", type=float, default=None, help="byte-quota window in seconds (default 60)")
    sub.add_argument("--priority", default="normal", choices=("high", "normal", "low"), help="job priority class")
    sub.add_argument("--position", type=int, default=0, help="scan position (0 = keep existing / append)")
    sub.set_defaults(func=_cmd_policy_set)

    sub = policy_sub.add_parser("delete", help="remove one policy rule")
    sub.add_argument("selector")
    sub.set_defaults(func=_cmd_policy_delete)

    sub = subparsers.add_parser(
        "gc",
        help="storage maintenance: tier cold version blobs into archive packs",
    )
    sub.add_argument(
        "--tier-cold",
        action="store_true",
        help="pack blobs only referenced by commits older than --keep-epochs into the archive",
    )
    sub.add_argument(
        "--keep-epochs",
        type=int,
        default=8,
        help="newest commits whose blobs stay on the hot path (default 8)",
    )
    sub.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be archived without moving anything",
    )
    sub.set_defaults(func=_cmd_gc)

    jobs = subparsers.add_parser(
        "jobs",
        help="durable background jobs for the projects under --project (see 'serve')",
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    sub = jobs_sub.add_parser("submit", help="enqueue a backfill/replay job for one project")
    sub.add_argument("name", help="project (tenant) name under the root")
    sub.add_argument("filename", help="script path relative to the project root (as recorded)")
    sub.add_argument("--kind", choices=["backfill", "replay"], default="backfill")
    sub.add_argument("--source", default=None, help="file holding the new source (default: project working copy)")
    sub.add_argument("--versions", nargs="*", default=None, help="restrict to these version ids")
    sub.add_argument("--loop", default="epoch", help="loop name restricted by --epoch")
    sub.add_argument("--epoch", type=int, nargs="*", default=None, help="only replay these iterations")
    sub.add_argument("--priority", type=int, default=0, help="higher claims first")
    sub.add_argument("--max-attempts", type=int, default=3, help="retry budget before the job fails")
    sub.set_defaults(func=_cmd_jobs_submit)

    sub = jobs_sub.add_parser("status", help="print one job's state (and optionally its event trail)")
    sub.add_argument("job_id", type=int)
    sub.add_argument("--events", action="store_true", help="also print the job_events trail")
    sub.set_defaults(func=_cmd_jobs_status)

    sub = jobs_sub.add_parser("list", help="list recent jobs")
    sub.add_argument("--name", default=None, help="only jobs of this project")
    sub.add_argument("--state", default=None, help="only jobs in this state")
    sub.add_argument("--limit", type=int, default=20)
    sub.set_defaults(func=_cmd_jobs_list)

    sub = jobs_sub.add_parser("watch", help="stream a job's events until it reaches a terminal state")
    sub.add_argument("job_id", type=int)
    sub.add_argument("--interval", type=float, default=0.2, help="poll interval in seconds (store mode)")
    sub.add_argument("--timeout", type=float, default=120.0, help="give up after this many seconds (<=0 waits forever)")
    sub.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="watch over HTTP instead of the local store: subscribe to "
        "URL/jobs/<id>/tail (a serve instance or fleet router) and resume "
        "across stream drops via Last-Event-ID",
    )
    sub.set_defaults(func=_cmd_jobs_watch)

    sub = jobs_sub.add_parser("cancel", help="cancel a queued job (or flag a running one)")
    sub.add_argument("job_id", type=int)
    sub.set_defaults(func=_cmd_jobs_cancel)

    sub = jobs_sub.add_parser("retry", help="re-queue a failed/cancelled job with a fresh budget")
    sub.add_argument("job_id", type=int)
    sub.set_defaults(func=_cmd_jobs_retry)

    sub = jobs_sub.add_parser("run", help="drain the job queue in-process (no HTTP server)")
    sub.add_argument("--workers", type=int, default=1)
    sub.add_argument("--timeout", type=float, default=300.0, help="stop draining after this many seconds")
    sub.set_defaults(func=_cmd_jobs_run)

    sub = subparsers.add_parser(
        "monitor",
        help="live terminal dashboard over a running service or fleet router",
    )
    sub.add_argument(
        "--url",
        default="http://127.0.0.1:8230",
        help="base url of the serve instance or fleet router (default %(default)s)",
    )
    sub.add_argument("--interval", type=float, default=2.0, help="seconds between frames")
    sub.add_argument("--count", type=int, default=0, help="exit after N frames (0 = run until interrupted)")
    sub.add_argument("--once", action="store_true", help="print one snapshot and exit")
    sub.set_defaults(func=_cmd_monitor)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
