"""Command-line interface to a FlorDB project.

The paper positions FlorDB as open, low-friction tooling that fits the
developer's existing workflow; the CLI is the shell-side of that story.  It
operates on the ``.flor`` home of a project directory and never requires the
original training scripts to be importable.

Subcommands
-----------
``names``      list every log name recorded for the project
``versions``   list version epochs (ts2vid joined with commit metadata)
``dataframe``  print the pivoted view of one or more log names
               (``--since``/``--until`` push a timestamp range into SQLite)
``sql``        run a read-only SQL statement (optionally over a pivoted view)

Both query subcommands route through the session's
:class:`~repro.query.QueryEngine` — the same pushdown + pivot-cache path
the Python API and the HTTP service use.
``stats``      table row counts and storage summary
``backfill``   multiversion hindsight logging for a script in the project
``build``      incremental (optionally parallel) build of a Makefile target
``serve``      multi-tenant HTTP service over the projects under a root
               directory (sharded pool + batched ingestion; see
               :mod:`repro.service`)

Example::

    python -m repro.cli --project ./myproj dataframe acc recall
    python -m repro.cli --project ./myproj sql "SELECT COUNT(*) FROM logs"
    python -m repro.cli --project ./myproj backfill train.py
    python -m repro.cli --project ./myproj build run --jobs 4
    python -m repro.cli --project ./projects serve --port 8230

Note that ``serve`` interprets ``--project`` differently from the other
subcommands: it is the *root holding one project subdirectory per tenant*
(``<root>/<name>/.flor``), because the service is multi-tenant by design.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .config import ProjectConfig
from .core.hindsight import HindsightEngine
from .core.replay import ReplayPlan
from .core.session import Session
from .errors import ReproError
from .relational.schema import TABLES


def _open_session(args: argparse.Namespace) -> Session:
    config = ProjectConfig(Path(args.project), args.projid or "")
    flush_mode = "sync" if getattr(args, "sync_flush", False) else None
    return Session(config, flush_mode=flush_mode)


def _cmd_names(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        names = session.logs.distinct_names(session.projid)
        for name in names:
            print(name)
        if not names:
            print("(no log names recorded)", file=sys.stderr)
    return 0


def _cmd_versions(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        epochs = session.ts2vid.all(session.projid)
        if not epochs:
            print("(no versions recorded)", file=sys.stderr)
            return 0
        commits = {c.vid: c for c in session.repository.log()}
        print(f"{'ts_start':<28} {'vid':<18} {'files':>5}  message")
        for epoch in epochs:
            commit = commits.get(epoch.vid)
            files = len(commit.files) if commit else 0
            message = commit.message if commit else ""
            print(f"{epoch.ts_start:<28} {epoch.vid:<18} {files:>5}  {message}")
    return 0


def _cmd_dataframe(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        tstamp_range = None
        if args.since or args.until:
            tstamp_range = (args.since, args.until)
        frame = session.dataframe(
            *args.names, latest=args.latest, tstamp_range=tstamp_range
        )
        print(frame.to_string(max_rows=args.max_rows))
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        frame = session.sql(args.query, names=args.names or ())
        print(frame.to_string(max_rows=args.max_rows))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        print(f"project:  {session.projid}")
        print(f"database: {session.config.db_path}")
        for table in TABLES:
            if table == "meta":
                continue
            print(f"{table:>12}: {session.db.count(table)} rows")
        print(f"{'commits':>12}: {len(session.repository)}")
        print(f"{'log names':>12}: {len(session.logs.distinct_names(session.projid))}")
    return 0


def _cmd_backfill(args: argparse.Namespace) -> int:
    with _open_session(args) as session:
        engine = HindsightEngine(session)
        plan = ReplayPlan.all()
        if args.epoch is not None:
            plan = ReplayPlan.only(**{args.loop: list(args.epoch)})
        new_source = Path(args.source).read_text() if args.source else None
        report = engine.backfill(
            args.filename,
            new_source=new_source,
            plan=plan,
            parallelism=args.parallelism,
            max_workers=args.workers,
        )
        summary = report.summary()
        for key, value in summary.items():
            print(f"{key:>22}: {value}")
        for version in report.versions:
            status = "ok" if version.ok else f"error: {version.error or version.replay.error}"
            print(f"  {version.vid}  injected={version.injected_statements}  {status}")
        return 0 if all(v.ok for v in report.versions) else 1


def _cmd_build(args: argparse.Namespace) -> int:
    from .build.executor import BuildExecutor
    from .build.makefile import load_makefile

    with _open_session(args) as session:
        makefile_path = Path(args.makefile)
        if not makefile_path.is_absolute():
            makefile_path = session.config.root / makefile_path
        makefile = load_makefile(makefile_path)
        executor = BuildExecutor(
            makefile,
            workdir=session.config.root,
            session=None if args.no_record else session,
            jobs=args.jobs,
            materialize_missing=False,
        )
        report = executor.build(args.target, force=args.force)
        for result in report.results:
            status = "RUN   " if result.executed else "cached"
            print(f"[{status}] {result.target:<20} {result.reason}")
        print(
            f"built {report.goal!r}: {len(report.executed)} executed, "
            f"{len(report.cached)} cached, jobs={report.jobs}, {report.seconds:.3f}s"
        )
        if report.vid:
            print(f"version: {report.vid}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import FlorService
    from .service.server import serve

    service = FlorService(
        Path(args.project).resolve(),
        pool_capacity=args.pool_capacity,
        flush_size=args.flush_size,
        flush_interval=None if args.flush_interval <= 0 else args.flush_interval,
        flush_mode="sync" if args.sync_flush else None,
    )

    def ready(host: str, port: int) -> None:
        print(f"serving FlorDB projects under {service.root} at http://{host}:{port}")
        print("routes: POST /projects/<name>/logs | POST /projects/<name>/commit")
        print("        GET  /projects/<name>/dataframe?names=... | GET /projects/<name>/sql?q=...")

    try:
        serve(service.app(), host=args.host, port=args.port, quiet=args.quiet, ready=ready)
    finally:
        service.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flordb",
        description="Query and maintain the FlorDB context of a project directory.",
    )
    parser.add_argument("--project", default=".", help="project root (directory containing .flor)")
    parser.add_argument("--projid", default=None, help="override the project id")
    parser.add_argument(
        "--sync-flush",
        action="store_true",
        help="write records inline instead of on the background flusher thread",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("names", help="list recorded log names")
    sub.set_defaults(func=_cmd_names)

    sub = subparsers.add_parser("versions", help="list version epochs")
    sub.set_defaults(func=_cmd_versions)

    sub = subparsers.add_parser("dataframe", help="print the pivoted view of log names")
    sub.add_argument("names", nargs="+", help="log names to pivot into columns")
    sub.add_argument("--latest", action="store_true", help="only rows of the newest run")
    sub.add_argument("--since", default=None, help="only runs with tstamp >= SINCE (pushed into SQLite)")
    sub.add_argument("--until", default=None, help="only runs with tstamp <= UNTIL (pushed into SQLite)")
    sub.add_argument("--max-rows", type=int, default=50)
    sub.set_defaults(func=_cmd_dataframe)

    sub = subparsers.add_parser("sql", help="run a read-only SQL statement")
    sub.add_argument("query")
    sub.add_argument("--names", nargs="*", default=None, help="pivot these names into a temp 'pivot' table first")
    sub.add_argument("--max-rows", type=int, default=50)
    sub.set_defaults(func=_cmd_sql)

    sub = subparsers.add_parser("stats", help="table row counts and storage summary")
    sub.set_defaults(func=_cmd_stats)

    sub = subparsers.add_parser("backfill", help="multiversion hindsight logging for a script")
    sub.add_argument("filename", help="script path relative to the project root (as recorded)")
    sub.add_argument("--source", default=None, help="file holding the new source (default: working copy)")
    sub.add_argument("--parallelism", choices=["serial", "thread", "process"], default="serial")
    sub.add_argument("--workers", type=int, default=4)
    sub.add_argument("--loop", default="epoch", help="loop name restricted by --epoch")
    sub.add_argument("--epoch", type=int, nargs="*", default=None, help="only replay these iterations")
    sub.set_defaults(func=_cmd_backfill)

    sub = subparsers.add_parser("build", help="incrementally build a Makefile target")
    sub.add_argument("target", nargs="?", default=None, help="target to build (default: first in the Makefile)")
    sub.add_argument("--makefile", "-f", default="Makefile", help="Makefile path, relative to the project root")
    sub.add_argument("--jobs", "-j", type=int, default=1, help="run up to N independent targets in parallel")
    sub.add_argument("--force", action="store_true", help="rebuild every target regardless of staleness")
    sub.add_argument("--no-record", action="store_true", help="do not commit or record build_deps for this build")
    sub.set_defaults(func=_cmd_build)

    sub = subparsers.add_parser(
        "serve",
        help="serve the projects under --project (one subdirectory per tenant) over HTTP",
    )
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument("--port", type=int, default=8230, help="TCP port (0 picks a free one)")
    sub.add_argument("--pool-capacity", type=int, default=8, help="max simultaneously open project shards")
    sub.add_argument("--flush-size", type=int, default=64, help="records coalesced per ingestion transaction")
    sub.add_argument("--flush-interval", type=float, default=0.5, help="seconds between interval-triggered flushes (<=0 disables)")
    sub.add_argument("--quiet", action="store_true", help="suppress per-request access logging")
    sub.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
