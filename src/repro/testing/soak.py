"""The chaos soak: mixed service traffic under continuous injected faults.

:class:`ChaosSoak` is the engine behind ``benchmarks/bench_t13_chaos_soak.py``
and the tier-1 mini-soak.  One run is ``cycles`` rounds of:

1. **Storm** — ingest threads POST scenario-zoo batches (agent-session
   traces plus multi-project fan-out) through a :class:`FlorService` whose
   shards are built over fault-wrapped stores (``database is locked``
   contention, slow I/O), while reader threads issue barrier reads
   (``?primary=1`` — each success *seals* the batches acked before it) and
   ad-hoc SQL, and an embedded :class:`~repro.jobs.JobRunner` drains
   hindsight-backfill jobs on a lease clock skewed by the same plan.
   Failed requests are retried at-least-once, exactly as a real client
   treats an ambiguous ack.
2. **Recover** — the service closes and a fresh one reopens over the same
   root; the wall-clock cost of that transition is the measured recovery
   time.
3. **Verify** — every invariant checker runs against the recovered state:
   zero lost sealed rows, monotone ``logs.seq`` watermarks, zero
   double-replayed job versions, recovery within the scenario bound.

Everything nondeterministic flows from one :class:`FaultPlan`, so a red
soak is replayed by exporting the seed its failure printed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..jobs import JOBS_DB_FILENAME, JobRunner, JobStore, pool_session_provider
from ..relational.database import Database
from ..service import FlorService
from ..webapp.framework import TestClient
from ..workloads import BackfillJobWorkload
from ..workloads.scenarios import AgentSessionWorkload, MultiProjectFanoutWorkload
from .chaos import FaultPlan, SkewedClock
from .invariants import (
    AckLedger,
    check_monotone_watermark,
    check_no_lost_rows,
    check_recovery_time,
    check_single_replay,
    logs_watermark,
)

#: Names an agent-session tenant logs (the dataframe barrier reads these).
AGENT_NAMES = "tokens_in,tokens_out,tool,tool_latency,tool_status,eval_score"

#: ``_probe`` result for a tenant no acked POST has created yet.  GETs
#: deliberately never create projects, so early in a storm the sealer can
#: race the first ingest batch and draw a 404 — with nothing acked there
#: is nothing to seal, and the barrier is skipped rather than failed.
_UNBORN = -1


def chaos_shard_factory(
    root: Path | str,
    plan: FaultPlan,
    *,
    flush_size: int = 32,
    flush_interval: float | None = 0.05,
    flush_mode: str | None = None,
):
    """A ``DatabasePool.shard_factory`` building fault-wrapped shards.

    Mirrors the pool's default construction but threads ``plan`` through
    both storage seams: the relational store may stall or raise ``database
    is locked`` (absorbed by the background flusher's retry loop or
    surfaced to the client as a failed request), and the blob store may
    stall.  Each tenant gets its own fault sites, so per-tenant schedules
    are independent of pool churn.
    """
    from ..config import ProjectConfig
    from ..core.session import Session
    from ..service.ingest import IngestionQueue
    from ..service.pool import SERVICE_FILENAME, ProjectShard
    from ..storage.faults import FaultyBlobStore, FaultyRelationalStore
    from ..storage.tiering import TieredBlobStore
    from ..versioning.objects import ObjectStore
    from ..versioning.repository import Repository

    root = Path(root)

    def factory(name: str) -> ProjectShard:
        config = ProjectConfig(root / name, name).ensure_layout()
        db = FaultyRelationalStore(
            Database(config.db_path), plan, site=f"shard.{name}.db"
        )
        blob_store = FaultyBlobStore(
            TieredBlobStore(
                ObjectStore(config.objects_dir), Path(config.objects_dir) / "archive"
            ),
            plan,
            site=f"shard.{name}.blob",
        )
        repository = Repository(config.objects_dir, config.root, store=blob_store)
        session = Session(
            config,
            db=db,
            repository=repository,
            default_filename=SERVICE_FILENAME,
            flush_mode=flush_mode,
        )
        engine = session.query
        queue = IngestionQueue(
            session.db,
            flush_size=flush_size,
            flush_interval=flush_interval,
            on_flush=lambda _count: engine.note_write(),
            flusher=session.flusher,
        )
        return ProjectShard(name, session, queue)

    return factory


@dataclass
class SoakReport:
    """What one chaos soak did, and whether the invariants held."""

    seed: int
    cycles: int = 0
    requests: int = 0
    request_errors: int = 0
    retried_batches: int = 0
    dropped_batches: int = 0
    resubmitted_batches: int = 0
    sealed_rows: int = 0
    backfills_succeeded: int = 0
    recovery_seconds: list[float] = field(default_factory=list)
    fault_stats: dict[str, Any] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    #: First few request failures, with context — so a red soak names the
    #: error instead of just counting it.
    error_samples: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def max_recovery_seconds(self) -> float:
        return max(self.recovery_seconds, default=0.0)

    def as_rows(self) -> list[dict[str, Any]]:
        """Benchmark-table rows (one line per cycle plus a summary)."""
        fired = self.fault_stats.get("fired", {})
        return [
            {
                "seed": self.seed,
                "cycles": self.cycles,
                "requests": self.requests,
                "errors": self.request_errors,
                "retried": self.retried_batches,
                "resubmitted": self.resubmitted_batches,
                "sealed_rows": self.sealed_rows,
                "locked": fired.get("locked", 0),
                "slow": fired.get("slow", 0),
                "skew": fired.get("skew", 0),
                "max_recovery_s": self.max_recovery_seconds,
                "violations": len(self.violations),
            }
        ]


class ChaosSoak:
    """Drive mixed scenario-zoo traffic under one fault plan; see module doc."""

    def __init__(
        self,
        root: Path | str,
        plan: FaultPlan,
        *,
        cycles: int = 2,
        cycle_seconds: float = 1.0,
        agent_tenants: int = 2,
        fanout_tenants: int = 3,
        ingest_threads: int = 2,
        query_threads: int = 1,
        backfill: bool = True,
        pool_capacity: int = 4,
        flush_size: int = 32,
        flush_interval: float | None = 0.05,
        recovery_bound_seconds: float = 20.0,
        max_batch_retries: int = 5,
    ):
        self.root = Path(root)
        self.plan = plan
        self.cycles = cycles
        self.cycle_seconds = cycle_seconds
        self.agent_projects = [f"agent_{i:02d}" for i in range(agent_tenants)]
        self.fanout = MultiProjectFanoutWorkload(
            tenants=fanout_tenants, batches_per_tenant=10**9, records_per_batch=6
        )
        self.ingest_threads = ingest_threads
        self.query_threads = query_threads
        self.backfill = backfill
        self.pool_capacity = pool_capacity
        self.flush_size = flush_size
        self.flush_interval = flush_interval
        self.recovery_bound_seconds = recovery_bound_seconds
        self.max_batch_retries = max_batch_retries
        self.ledger = AckLedger()
        self.report = SoakReport(seed=plan.seed)
        self._watermarks: dict[str, int] = {}
        #: Per-project ``dropped_rows_total`` at the last seal (or repair
        #: anchor); a probe that does not match breaks seal continuity
        #: (see ``_seal_barrier``).
        self._seal_state: dict[str, int] = {}
        self._probe_error: str = ""
        self._lock = threading.Lock()

    # ------------------------------------------------------------- plumbing
    def _note_error(self, context: str) -> None:
        """Count a failed request, keeping the first few with context."""
        with self._lock:
            self.report.request_errors += 1
            if len(self.report.error_samples) < 10:
                self.report.error_samples.append(context)

    def _all_projects(self) -> list[str]:
        return self.agent_projects + self.fanout.project_names()

    def _barrier_names(self, project: str) -> str:
        return AGENT_NAMES if project in self.agent_projects else self.fanout.value_name

    def _open_service(self) -> tuple[FlorService, JobStore]:
        store = JobStore.open(
            self.root, clock=SkewedClock(self.plan, site="jobs.clock")
        )
        service = FlorService(
            self.root,
            pool_capacity=self.pool_capacity,
            flush_size=self.flush_size,
            flush_interval=self.flush_interval,
            shard_factory=chaos_shard_factory(
                self.root,
                self.plan,
                flush_size=self.flush_size,
                flush_interval=self.flush_interval,
            ),
            job_store=store,
        )
        return service, store

    def _post_batch(self, client: TestClient, project: str, payload: dict) -> bool:
        """At-least-once delivery of one batch; ledger on first ack."""
        for attempt in range(self.max_batch_retries + 1):
            with self._lock:
                self.report.requests += 1
            try:
                response = client.post(f"/projects/{project}/logs", json_body=payload)
                ok = response.ok
                detail = "" if ok else f"status {response.status}: {response.body[:200]}"
            except Exception as exc:
                ok = False
                detail = repr(exc)
            if ok:
                by_name: dict[str, list[str]] = {}
                for record in payload["records"]:
                    by_name.setdefault(record["name"], []).append(str(record["value"]))
                for name, values in by_name.items():
                    self.ledger.record(project, name, values)
                if attempt:
                    with self._lock:
                        self.report.retried_batches += 1
                return True
            self._note_error(f"post {project} attempt {attempt}: {detail}")
        with self._lock:
            self.report.dropped_batches += 1
        return False

    def _probe(self, client: TestClient, project: str) -> int | None:
        """Read the tenant's monotone ``dropped_rows_total`` from ``/stats``."""
        try:
            response = client.get(f"/projects/{project}/stats")
            if response.status == 404:
                return _UNBORN
            if not response.ok:
                self._probe_error = f"status {response.status}: {response.body[:200]}"
                return None
            return int(response.json().get("dropped_rows_total", 0))
        except Exception as exc:
            self._probe_error = repr(exc)
            return None

    def _repair(self, client: TestClient, project: str) -> None:
        """Resubmit the project's unsealed batches (the at-least-once leg).

        Invoked when the drop-counter probe shows the shard may have shed
        acked rows — or was reopened, resetting its counters so continuity
        cannot be proven.  The originals are forgotten; the resubmissions
        are fresh acks that the next clean barrier can seal.
        """
        batches = self.ledger.forget_unsealed(project)
        with self._lock:
            self.report.resubmitted_batches += len(batches)
        for name, values in batches:
            payload = {
                "filename": "resubmit.py",
                "records": [
                    {"name": name, "value": value, "ctx_id": 0} for value in values
                ],
            }
            self._post_batch(client, project, payload)

    def _seal_barrier(self, client: TestClient, project: str) -> bool:
        """One durability barrier: a read-your-writes primary read.

        A 200 from ``?primary=1`` alone is not proof the batches acked
        before it survived: the flusher drops a batch after exhausting its
        write retries and defers the error, which *any* flushing request
        (a stats call, an eviction, another tenant's barrier) may consume
        first — leaving this read to succeed over a store that silently
        shed rows.  So sealing additionally requires the tenant's monotone
        ``dropped_rows_total`` to be unchanged across the read *and* equal
        to its value at the last successful seal.  Any break in that chain
        downgrades the barrier to a repair: unsealed batches are
        resubmitted rather than sealed.  (Across a service restart the
        counter resets; a clean shutdown flushed everything, so continuity
        from 0 is sound — a SIGKILL'd server gets no such credit, and its
        client must force a repair, as the T13 bench does.)
        """
        mark = self.ledger.mark(project)
        before = self._probe(client, project)
        if before == _UNBORN:
            # No acked POST has created this tenant yet, so the ledger
            # holds nothing for it; skip the barrier without charging an
            # error.  (An ack implies the POST path built the shard, so an
            # unborn probe can never hide acked rows.)
            return False
        if before is None:
            self._note_error(f"probe {project}: {self._probe_error}")
            return False
        state = self._seal_state.get(project)
        continuous = before == state if state is not None else before == 0
        if not continuous:
            # Anchor the new baseline to the probe taken *before*
            # resubmitting: a drop that hits the resubmissions themselves
            # then shows up as a fresh discontinuity at the next barrier
            # (probing after the repair would fold such a drop into the
            # baseline and let the next barrier seal lost rows).
            self._seal_state[project] = before
            self._repair(client, project)
            return False
        try:
            response = client.get(
                f"/projects/{project}/dataframe"
                f"?names={self._barrier_names(project)}&primary=1"
            )
            ok = response.ok
            detail = "" if ok else f"status {response.status}: {response.body[:200]}"
        except Exception as exc:
            ok = False
            detail = repr(exc)
        if not ok:
            self._note_error(f"barrier read {project}: {detail}")
            return False
        after = self._probe(client, project)
        if after != before:
            return False
        self.ledger.seal_through(mark, project)
        self._seal_state[project] = after
        return True

    # -------------------------------------------------------------- traffic
    def _storm(self, service: FlorService, store: JobStore, cycle: int) -> None:
        client = TestClient(service.app())
        stop = threading.Event()
        threads: list[threading.Thread] = []

        def agent_ingest(worker: int) -> None:
            workload = AgentSessionWorkload(
                sessions=10**6,
                turns_per_session=4,
                seed=self.plan.seed + cycle * 101 + worker,
                tag=f"c{cycle}.w{worker}",
            )
            payloads = workload.request_payloads()
            turn = 0
            while not stop.is_set():
                project = self.agent_projects[turn % len(self.agent_projects)]
                self._post_batch(client, project, next(payloads))
                turn += 1

        def fanout_ingest() -> None:
            fanout = MultiProjectFanoutWorkload(
                tenants=len(self.fanout.project_names()),
                batches_per_tenant=10**9,
                records_per_batch=self.fanout.records_per_batch,
                tag=f"{self.fanout.tag}.c{cycle}",
            )
            # Same tenant directories every cycle; per-cycle tag keeps
            # values globally unique for the ledger's set membership.
            fanout_names = self.fanout.project_names()
            for (_, payload), project in zip(
                fanout.request_payloads(),
                (fanout_names[i % len(fanout_names)] for i in range(10**9)),
            ):
                if stop.is_set():
                    return
                self._post_batch(client, project, payload)

        def sealer() -> None:
            index = 0
            projects = self._all_projects()
            while not stop.is_set():
                self._seal_barrier(client, projects[index % len(projects)])
                index += 1
                time.sleep(0.01)

        def querier() -> None:
            projects = self._all_projects()
            index = 0
            while not stop.is_set():
                project = projects[index % len(projects)]
                try:
                    client.get(
                        f"/projects/{project}/sql?q=SELECT COUNT(*) FROM logs"
                    )
                    client.get(f"/projects/{project}/stats")
                except Exception as exc:
                    self._note_error(f"query {project}: {exc!r}")
                index += 1
                time.sleep(0.005)

        for worker in range(self.ingest_threads):
            threads.append(threading.Thread(target=agent_ingest, args=(worker,)))
        threads.append(threading.Thread(target=fanout_ingest))
        threads.append(threading.Thread(target=sealer))
        for _ in range(self.query_threads):
            threads.append(threading.Thread(target=querier))

        runner = None
        backfill_job_id = None
        if self.backfill:
            runner = JobRunner(
                store,
                pool_session_provider(service.pool),
                workers=1,
                poll_interval=0.01,
                name=f"soak-c{cycle}",
            ).start()
            workload = self._backfill_workload()
            try:
                body = client.post(
                    f"/projects/{workload.project_names()[0]}/jobs/backfill",
                    json_body={
                        "filename": workload.filename,
                        "new_source": workload.hindsight_source(),
                    },
                ).json()
                backfill_job_id = body["job"]["id"]
            except Exception as exc:
                self._note_error(f"backfill submit: {exc!r}")

        for thread in threads:
            thread.start()
        time.sleep(self.cycle_seconds)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)

        # Quiesce under suspended faults: finish the backfill (operator
        # retries are fair game for fault-failed attempts), then run one
        # final sealing barrier per tenant so the cycle ends with a known
        # sealed frontier.
        with self.plan.suspended():
            if runner is not None:
                for _ in range(3):
                    runner.run_until_idle(timeout=60.0)
                    failed = [
                        job.id
                        for job in store.list_jobs(state="failed")
                        if job.id == backfill_job_id
                    ]
                    if not failed:
                        break
                    for job_id in failed:
                        store.retry(job_id)
                runner.stop()
                if backfill_job_id is not None:
                    job = store.get(backfill_job_id)
                    if job is not None and job.state == "succeeded":
                        self.report.backfills_succeeded += 1
            for project in self._all_projects():
                # A flusher error recorded during the storm surfaces on the
                # first post-storm drain and clears; retry so the cycle ends
                # with every tenant's sealed frontier actually sealed.
                for _ in range(3):
                    if self._seal_barrier(client, project):
                        break
            for project in self._all_projects():
                shard = service.pool.get(project)
                self._watermarks[project] = logs_watermark(shard.session.db)

    def _backfill_workload(self) -> BackfillJobWorkload:
        return BackfillJobWorkload(projects=1, versions=2, epochs=2, steps=1)

    @staticmethod
    def _close_service(service: FlorService) -> None:
        """Close, absorbing one round of residual flusher errors.

        A write fault injected near the end of a storm can leave a recorded
        error that surfaces (and clears) on the close-time drain; the rows
        it covered were never sealed, so retrying the close loses nothing.
        """
        for attempt in range(3):
            try:
                service.close()
                return
            except Exception:
                if attempt == 2:
                    raise

    # ------------------------------------------------------------------ run
    def run(self) -> SoakReport:
        if self.backfill:
            with self.plan.suspended():
                self._backfill_workload().populate(self.root)

        service, store = self._open_service()
        try:
            for cycle in range(self.cycles):
                self._storm(service, store, cycle)
                # Recovery: close the whole service and reopen over the
                # same root.  Faults stay suspended so the measured cost is
                # the system's, not the schedule's.
                with self.plan.suspended():
                    started = time.perf_counter()
                    self._close_service(service)
                    store.close()
                    service, store = self._open_service()
                    client = TestClient(service.app())
                    for project in self._all_projects():
                        self._seal_barrier(client, project)
                    elapsed = time.perf_counter() - started
                    self.report.recovery_seconds.append(elapsed)
                    self.report.cycles += 1
                    self._verify(service, label=f"cycle{cycle}", recovery=elapsed)
        finally:
            self._close_service(service)
            store.close()
        self.report.sealed_rows = self.ledger.counts()["sealed_rows"]
        self.report.fault_stats = self.plan.stats()
        return self.report

    def _verify(self, service: FlorService, *, label: str, recovery: float) -> None:
        violations: list[str] = []
        for project in self._all_projects():
            shard = service.pool.get(project)
            shard.flush()
            db = shard.session.db
            violations += check_no_lost_rows(db, self.ledger, project)
            after = logs_watermark(db)
            violations += check_monotone_watermark(
                f"{label}/{project}", self._watermarks.get(project, 0), after
            )
        jobs_path = self.root / JOBS_DB_FILENAME
        if jobs_path.exists():
            jobs_db = Database(jobs_path)
            try:
                violations += check_single_replay(jobs_db)
            finally:
                jobs_db.close()
        violations += check_recovery_time(
            label, recovery, self.recovery_bound_seconds
        )
        self.report.violations.extend(violations)
