"""Invariant checkers: acknowledged writes versus post-recovery state.

The harness's correctness claims are phrased against the service's *actual*
acknowledgement semantics, not an idealized one.  ``POST /logs`` answering
``202`` means the batch was handed to the shard's writer — not that it is
durable; durability comes from the next successful commit or
read-your-writes read (both flush first).  The :class:`AckLedger` therefore
tracks two levels:

* **acked** — the service accepted the batch (a 202 came back);
* **sealed** — a durability barrier (a ``?primary=1`` read or a commit)
  *started after the batch was acked* later succeeded.

The headline invariant — *zero lost acked rows* — is asserted over sealed
batches: every value sealed before a fault, an eviction, or a SIGKILL must
be present after recovery.  Unsealed batches are the client's at-least-once
retry obligation, mirroring what a real client does with an ambiguous ack.

The remaining checkers cover the job layer (*zero double-replayed
versions*: no ``(job, vid)`` pair ever earns two ``version`` progress
events) and the log watermark (``MAX(logs.seq)`` is monotone across
recoveries — a recovered store never serves an older prefix).

Every checker returns a list of violation strings; :func:`assert_invariants`
raises :class:`InvariantViolation` with the fault plan's replay seed
attached, so a failure is reproducible from its own message.
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .chaos import FaultPlan


class InvariantViolation(AssertionError):
    """A durability invariant did not hold; the message carries the seed."""


def assert_invariants(violations: Sequence[str], plan: FaultPlan | None = None) -> None:
    """Raise :class:`InvariantViolation` listing ``violations`` (if any)."""
    if not violations:
        return
    lines = "\n  - ".join(violations)
    suffix = f"\n{plan.describe()}" if plan is not None else ""
    raise InvariantViolation(
        f"{len(violations)} durability invariant violation(s):\n  - {lines}{suffix}"
    )


# ----------------------------------------------------------------- ledger
@dataclass
class _Batch:
    batch_id: int
    project: str
    name: str
    values: tuple[str, ...]
    sealed: bool = False


class AckLedger:
    """Thread-safe record of acknowledged batches and durability barriers.

    Writers call :meth:`record` *after* the service acknowledged a batch.
    To seal, a reader takes :meth:`mark` *before* issuing its barrier
    request and, on success, calls :meth:`seal_through` with that mark —
    only batches acked before the barrier began are sealed, so a batch
    racing the barrier is never credited with durability it wasn't given.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._batches: list[_Batch] = []

    def record(self, project: str, name: str, values: Iterable[Any]) -> int:
        """Note one acknowledged batch; returns its ledger id."""
        with self._lock:
            batch = _Batch(
                next(self._ids), project, name, tuple(str(v) for v in values)
            )
            self._batches.append(batch)
            return batch.batch_id

    def mark(self, project: str | None = None) -> int:
        """Snapshot token: the highest batch id acked so far."""
        with self._lock:
            relevant = (
                b for b in self._batches if project is None or b.project == project
            )
            return max((b.batch_id for b in relevant), default=0)

    def seal_through(self, mark: int, project: str | None = None) -> int:
        """Seal every batch acked at or before ``mark``; returns how many."""
        sealed = 0
        with self._lock:
            for batch in self._batches:
                if batch.batch_id > mark or batch.sealed:
                    continue
                if project is not None and batch.project != project:
                    continue
                batch.sealed = True
                sealed += 1
        return sealed

    def sealed_values(self, project: str, name: str) -> set[str]:
        with self._lock:
            return {
                value
                for batch in self._batches
                if batch.sealed and batch.project == project and batch.name == name
                for value in batch.values
            }

    def sealed_names(self, project: str) -> set[str]:
        with self._lock:
            return {
                b.name for b in self._batches if b.sealed and b.project == project
            }

    def projects(self) -> set[str]:
        with self._lock:
            return {b.project for b in self._batches}

    def unsealed(self, project: str) -> list[tuple[str, tuple[str, ...]]]:
        """The at-least-once retry obligation: acked-but-unsealed batches."""
        with self._lock:
            return [
                (b.name, b.values)
                for b in self._batches
                if not b.sealed and b.project == project
            ]

    def forget_unsealed(self, project: str) -> list[tuple[str, tuple[str, ...]]]:
        """Drop and return the project's unsealed batches for resubmission.

        Called when a client learns its acks may not have survived (the
        flusher's dropped-row counter moved, or the shard was reopened with
        history unknown).  The forgotten batches' values are resubmitted as
        *new* batches — dropping the originals keeps a repeatedly-poisoned
        tenant from re-resubmitting the same rows every repair.
        """
        with self._lock:
            forgotten = [
                (b.name, b.values)
                for b in self._batches
                if not b.sealed and b.project == project
            ]
            self._batches = [
                b for b in self._batches if b.sealed or b.project != project
            ]
            return forgotten

    def counts(self) -> dict[str, int]:
        with self._lock:
            sealed = sum(1 for b in self._batches if b.sealed)
            rows = sum(len(b.values) for b in self._batches if b.sealed)
            return {
                "batches": len(self._batches),
                "sealed_batches": sealed,
                "sealed_rows": rows,
            }


# --------------------------------------------------------------- checkers
def check_no_lost_rows(db, ledger: AckLedger, project: str) -> list[str]:
    """Every sealed value must be readable from the recovered store."""
    violations: list[str] = []
    for name in sorted(ledger.sealed_names(project)):
        expected = ledger.sealed_values(project, name)
        stored = {
            str(row[0])
            for row in db.query(
                "SELECT value FROM logs WHERE value_name = ?", (name,)
            )
        }
        missing = expected - stored
        if missing:
            sample = ", ".join(sorted(missing)[:5])
            violations.append(
                f"{project}/{name}: {len(missing)} sealed row(s) lost "
                f"(e.g. {sample})"
            )
    return violations


def logs_watermark(db) -> int:
    """The store's append watermark: ``MAX(logs.seq)`` (0 when empty)."""
    row = db.query_one("SELECT COALESCE(MAX(seq), 0) FROM logs")
    return int(row[0]) if row else 0


def check_monotone_watermark(label: str, before: int, after: int) -> list[str]:
    """A recovered store must never serve an older log prefix."""
    if after < before:
        return [
            f"{label}: logs.seq watermark regressed across recovery "
            f"({before} -> {after})"
        ]
    return []


def check_single_replay(jobs_db) -> list[str]:
    """No job version may carry two ``version`` progress checkpoints.

    A resumed backfill reads its own ``version`` events to skip completed
    versions, so a double event means a version was replayed twice — the
    exactly-once claim of the job layer's checkpoint protocol.
    """
    seen: dict[tuple[int, str], int] = {}
    for job_id, payload in jobs_db.query(
        "SELECT job_id, payload FROM job_events WHERE kind = 'version'"
    ):
        try:
            vid = str(json.loads(payload).get("vid", ""))
        except (TypeError, ValueError):
            vid = ""
        if vid:
            key = (int(job_id), vid)
            seen[key] = seen.get(key, 0) + 1
    return [
        f"job {job_id}: version {vid} replayed {count} times"
        for (job_id, vid), count in sorted(seen.items())
        if count > 1
    ]


def check_recovery_time(label: str, seconds: float, bound: float) -> list[str]:
    """Recovery must complete within the scenario's time budget."""
    if seconds > bound:
        return [f"{label}: recovery took {seconds:.2f}s (bound: {bound:.2f}s)"]
    return []


@dataclass
class InvariantReport:
    """Accumulates checker output across one chaos run."""

    violations: list[str] = field(default_factory=list)
    checks: int = 0

    def extend(self, found: Sequence[str]) -> None:
        self.checks += 1
        self.violations.extend(found)

    @property
    def ok(self) -> bool:
        return not self.violations
