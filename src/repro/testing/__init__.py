"""repro.testing — the seeded chaos harness (ROADMAP: durability under fire).

Everything needed to stress the durability story deterministically:

* :mod:`~repro.testing.chaos` — :class:`FaultPlan` (seeded, replayable
  fault schedules), :class:`ManualClock` (sleep-free lease tests) and
  :class:`SkewedClock` (seeded clock drift for lease logic);
* :mod:`~repro.testing.invariants` — the :class:`AckLedger` and the
  checkers comparing acknowledged writes against post-recovery state;
* :mod:`~repro.testing.procs` — :class:`ServerProcess`, which SIGKILLs a
  real ``repro serve --job-workers`` subprocess at named barriers, and
  :class:`FleetProcess`, the same management for ``repro serve
  --workers N`` plus per-worker kill/recovery introspection;
* :mod:`~repro.testing.soak` — :class:`ChaosSoak`, the mixed-traffic
  engine behind the T13 benchmark;
* the storage fault wrappers (:class:`FaultyRelationalStore`,
  :class:`FaultyBlobStore`), re-exported from :mod:`repro.storage.faults`
  where the seam lint allows their ``sqlite3`` import.

See ``docs/testing.md`` for invariant definitions and seed replay.
"""

from .chaos import (
    SEED_ENV_VAR,
    FaultPlan,
    ManualClock,
    SkewedClock,
    recent_mark,
    seeds_since,
)
from .invariants import (
    AckLedger,
    InvariantReport,
    InvariantViolation,
    assert_invariants,
    check_monotone_watermark,
    check_no_lost_rows,
    check_recovery_time,
    check_single_replay,
    logs_watermark,
)
from .procs import FleetProcess, ServerProcess, ServerProcessError
from .soak import ChaosSoak, SoakReport, chaos_shard_factory

__all__ = [
    "AckLedger",
    "ChaosSoak",
    "FaultPlan",
    "FaultyBlobStore",
    "FaultyRelationalStore",
    "FleetProcess",
    "InvariantReport",
    "InvariantViolation",
    "ManualClock",
    "SEED_ENV_VAR",
    "ServerProcess",
    "ServerProcessError",
    "SkewedClock",
    "SoakReport",
    "assert_invariants",
    "chaos_shard_factory",
    "check_monotone_watermark",
    "check_no_lost_rows",
    "check_recovery_time",
    "check_single_replay",
    "logs_watermark",
    "recent_mark",
    "seeds_since",
]


def __getattr__(name: str):
    # The wrappers live under repro.storage (the seam lint confines sqlite3
    # there); importing them lazily keeps repro.storage.faults importable
    # while this package is still initializing.
    if name in ("FaultyRelationalStore", "FaultyBlobStore"):
        from ..storage import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
