"""Seeded fault planning: the deterministic core of the chaos harness.

A :class:`FaultPlan` is the single source of nondeterminism for one chaos
run.  Every injection site (a wrapped store method, a skewed clock, a kill
barrier) asks the plan whether to fire, and the plan answers from a
dedicated pseudo-random stream derived from ``(seed, kind, site)``.  Two
properties follow:

* **Replayability** — the whole fault schedule is a pure function of the
  seed.  A failing run prints its seed (see :func:`seeds_since`); re-running
  with ``REPRO_CHAOS_SEED=<seed>`` reproduces every per-site decision.
* **Interleaving tolerance** — each site draws from its *own* stream, so
  thread scheduling changes which faults interleave but never which faults
  each site sees.  The schedule stays meaningful under the very concurrency
  it is stressing.

The plan does not know how a fault manifests; the wrappers in
:mod:`repro.storage.faults` translate ``locked`` decisions into
``sqlite3.OperationalError("database is locked")`` and ``slow`` decisions
into sleeps, :class:`SkewedClock` translates ``skew`` decisions into clock
drift, and :class:`repro.testing.procs.ServerProcess` handles ``kill``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

#: Environment variable consulted when a FaultPlan is built without an
#: explicit seed — export it to replay the schedule a failing test printed.
SEED_ENV_VAR = "REPRO_CHAOS_SEED"

#: Fault kinds a plan can schedule.
KINDS = ("locked", "slow", "skew", "kill")

# Recent plan descriptions, appended at construction time.  The pytest
# hook in tests/chaos/conftest.py snapshots this list before each test and
# prints everything added since when the test fails, so a red chaos test
# always carries the seed needed to replay it.
_RECENT: list[str] = []
_RECENT_LOCK = threading.Lock()
_RECENT_CAP = 64
_RECENT_TOTAL = 0  # plans ever remembered; marks index this, not the list


def recent_mark() -> int:
    """Opaque token for :func:`seeds_since` (call before the test body)."""
    with _RECENT_LOCK:
        return _RECENT_TOTAL


def seeds_since(mark: int) -> list[str]:
    """Descriptions of every plan created since ``mark``.

    Marks count plans ever created, so they stay valid when the registry's
    cap trims old entries — at most the oldest descriptions are missing.
    """
    with _RECENT_LOCK:
        trimmed = _RECENT_TOTAL - len(_RECENT)
        return list(_RECENT[max(mark - trimmed, 0):])


def _remember(description: str) -> None:
    global _RECENT_TOTAL
    with _RECENT_LOCK:
        _RECENT.append(description)
        _RECENT_TOTAL += 1
        if len(_RECENT) > _RECENT_CAP:
            del _RECENT[: len(_RECENT) - _RECENT_CAP]


class FaultPlan:
    """A seeded, replayable schedule of fault decisions.

    Parameters
    ----------
    seed:
        Integer seed; when omitted, ``$REPRO_CHAOS_SEED`` is honoured (the
        replay path) before falling back to a fresh random seed.  The seed
        is always exposed as :attr:`seed` and in :meth:`describe`.
    locked_rate / slow_rate / skew_rate / kill_rate:
        Per-decision probabilities in ``[0, 1]`` for each fault kind.
    slow_seconds:
        Upper bound of one injected I/O stall (each stall draws uniformly
        from ``[slow_seconds/2, slow_seconds]``).
    max_skew_seconds:
        Magnitude bound of injected clock drift; each skewed reading drifts
        uniformly in ``[-max_skew_seconds, +max_skew_seconds]``.
    sleep:
        The sleep callable used for stalls (injectable for tests).
    """

    def __init__(
        self,
        seed: int | None = None,
        *,
        locked_rate: float = 0.0,
        slow_rate: float = 0.0,
        skew_rate: float = 0.0,
        kill_rate: float = 0.0,
        slow_seconds: float = 0.002,
        max_skew_seconds: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if seed is None:
            env = os.environ.get(SEED_ENV_VAR)
            seed = int(env) if env else random.Random().randrange(1, 2**32)
        self.seed = int(seed)
        self.rates = {
            "locked": float(locked_rate),
            "slow": float(slow_rate),
            "skew": float(skew_rate),
            "kill": float(kill_rate),
        }
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        self.slow_seconds = float(slow_seconds)
        self.max_skew_seconds = float(max_skew_seconds)
        self._sleep = sleep
        self._streams: dict[tuple[str, str], random.Random] = {}
        self._forced: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()
        self._enabled = True
        self.checked: dict[str, int] = {kind: 0 for kind in KINDS}
        self.fired: dict[str, int] = {kind: 0 for kind in KINDS}
        _remember(self.describe())

    # ------------------------------------------------------------- decisions
    def _stream(self, kind: str, site: str) -> random.Random:
        key = (kind, site)
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(f"{self.seed}/{kind}/{site}")
            self._streams[key] = stream
        return stream

    def decide(self, kind: str, site: str) -> bool:
        """Whether fault ``kind`` fires at ``site`` this time.

        Each call consumes one draw from the ``(kind, site)`` stream, so
        the n-th decision at a site is a pure function of the seed even
        when other sites race it from other threads.
        """
        if kind not in self.rates:
            raise ValueError(f"unknown fault kind: {kind!r}")
        with self._lock:
            self.checked[kind] += 1
            forced = self._forced.get((kind, site), 0)
            if forced > 0:
                self._forced[(kind, site)] = forced - 1
                self.fired[kind] += 1
                return True
            draw = self._stream(kind, site).random()
            hit = self._enabled and draw < self.rates[kind]
            if hit:
                self.fired[kind] += 1
            return hit

    def force(self, kind: str, site: str, times: int = 1) -> None:
        """Queue ``times`` guaranteed hits at ``site`` (unit-test scripting).

        Forced hits fire even while :meth:`suspended`, and are consumed
        before the seeded stream is consulted.
        """
        if kind not in self.rates:
            raise ValueError(f"unknown fault kind: {kind!r}")
        with self._lock:
            self._forced[(kind, site)] = self._forced.get((kind, site), 0) + times

    def maybe_sleep(self, site: str) -> bool:
        """Inject one slow-I/O stall at ``site`` if the plan says so."""
        if not self.decide("slow", site):
            return False
        with self._lock:
            fraction = self._stream("slow.duration", site).random()
        self._sleep(self.slow_seconds * (0.5 + 0.5 * fraction))
        return True

    def skew_amount(self, site: str) -> float:
        """Signed clock drift for one skewed reading at ``site``."""
        with self._lock:
            fraction = self._stream("skew.amount", site).random()
        return (2.0 * fraction - 1.0) * self.max_skew_seconds

    # ------------------------------------------------------------- lifecycle
    @contextmanager
    def suspended(self) -> Iterator["FaultPlan"]:
        """Disable seeded faults for a block (setup / verification phases).

        Decisions still consume their stream draws, so the schedule after
        the block is identical whether or not the block injected anything —
        suspension changes *outcomes*, not *position*.
        """
        with self._lock:
            previous = self._enabled
            self._enabled = False
        try:
            yield self
        finally:
            with self._lock:
                self._enabled = previous

    @property
    def enabled(self) -> bool:
        return self._enabled

    def stats(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {"checked": dict(self.checked), "fired": dict(self.fired)}

    def describe(self) -> str:
        """One line identifying this plan; always includes the replay seed."""
        rates = ", ".join(
            f"{kind}={self.rates[kind]:g}" for kind in KINDS if self.rates[kind] > 0
        )
        return (
            f"FaultPlan(seed={self.seed}{', ' + rates if rates else ''})"
            f" — replay with {SEED_ENV_VAR}={self.seed}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return self.describe()


class ManualClock:
    """A unix-time source that only moves when told to.

    Drop-in for the ``clock`` parameter of :class:`repro.jobs.JobStore` so
    lease-expiry tests advance time explicitly instead of sleeping past a
    real deadline (the satellite de-flake of the jobs suite).
    """

    def __init__(self, start: float = 1000.0):
        self.now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self.now

    def advance(self, seconds: float) -> None:
        with self._lock:
            self.now += seconds


class SkewedClock:
    """A real-time clock with seeded drift injected by a :class:`FaultPlan`.

    Models the drifting wall clock a lease-based scheduler actually runs
    on: most readings are honest, but a ``skew`` decision shifts one
    reading by up to ``plan.max_skew_seconds`` in either direction.  Lease
    logic must stay correct (CAS-protected, at-least-once) under it.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        site: str = "clock",
        base: Callable[[], float] = time.time,
    ):
        self.plan = plan
        self.site = site
        self.base = base

    def __call__(self) -> float:
        now = self.base()
        if self.plan.decide("skew", self.site):
            return now + self.plan.skew_amount(self.site)
        return now
