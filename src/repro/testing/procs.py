"""Real-process chaos: run ``repro serve`` and SIGKILL it at named barriers.

In-process fault wrappers can model contention and latency, but the only
honest crash is a dead process: no ``finally`` blocks, no flusher drain, no
atexit — exactly what SIGKILL delivers.  :class:`ServerProcess` spawns the
real CLI (``repro serve --job-workers N``) on an ephemeral port, parses the
ready banner for the bound address, speaks JSON over urllib, and offers
:meth:`kill_at`: poll an observable predicate (a job's first progress
event, a sealed read) and SIGKILL the instant it holds.  Barriers are
*named* so a soak report reads "killed at backfill_started", not "killed
at iteration 7 of something".

Restarting is just constructing a new :class:`ServerProcess` on the same
root — recovery time is measured from ``start()`` to the first successful
health check plus per-tenant read.

:class:`FleetProcess` extends the same management to a worker fleet
(``repro serve --workers N``): the managed process is the supervisor, and
the class adds per-worker introspection over the router's control routes —
resolve a project to its owning worker, SIGKILL one worker by pid (the
supervisor's children are not ours to ``Popen.wait`` on, so the kill is a
bare ``os.kill``), and poll ``/fleet/workers`` until the supervisor has
respawned and re-registered it.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Callable

#: Matches the serve banner: ``... at http://127.0.0.1:PORT``.
_BANNER = re.compile(r"at (http://[\d.]+:\d+)")


class ServerProcessError(RuntimeError):
    """The managed server misbehaved (never came up, vanished early, ...)."""


class ServerProcess:
    """One managed ``repro serve`` subprocess over a project root."""

    def __init__(
        self,
        root: Path | str,
        *,
        job_workers: int = 1,
        startup_timeout: float = 30.0,
        request_timeout: float = 10.0,
        extra_args: tuple[str, ...] = (),
    ):
        self.root = Path(root)
        self.job_workers = job_workers
        self.startup_timeout = startup_timeout
        self.request_timeout = request_timeout
        self.extra_args = tuple(extra_args)
        self.base_url: str | None = None
        self.process: subprocess.Popen | None = None
        self.killed_at: str | None = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "ServerProcess":
        """Spawn the server and block until its ready banner prints."""
        src_dir = Path(__file__).resolve().parents[2]
        env = {**os.environ}
        env["PYTHONPATH"] = str(src_dir) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "--project",
                str(self.root),
                "serve",
                "--port",
                "0",
                "--job-workers",
                str(self.job_workers),
                "--quiet",
                *self.extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + self.startup_timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise ServerProcessError(
                    f"server exited {self.process.returncode} before becoming ready"
                )
            line = self.process.stdout.readline()
            if not line:
                time.sleep(0.02)
                continue
            match = _BANNER.search(line)
            if match:
                self.base_url = match.group(1)
                return self
        raise ServerProcessError(
            f"server did not print its address within {self.startup_timeout}s"
        )

    @property
    def pid(self) -> int:
        if self.process is None:
            raise ServerProcessError("server not started")
        return self.process.pid

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def kill9(self, barrier: str = "now") -> None:
        """SIGKILL the server — the honest crash (no drain, no cleanup)."""
        if self.process is None:
            raise ServerProcessError("server not started")
        self.killed_at = barrier
        os.kill(self.process.pid, signal.SIGKILL)
        self.process.wait(timeout=10)

    def kill_at(
        self,
        barrier: str,
        predicate: Callable[[], bool],
        *,
        timeout: float = 30.0,
        interval: float = 0.02,
    ) -> None:
        """Poll ``predicate`` and SIGKILL the moment it holds.

        The barrier name lands in :attr:`killed_at` (and any raised error)
        so a failing run states *where* in the protocol the crash landed.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive():
                raise ServerProcessError(
                    f"server died on its own before barrier {barrier!r}"
                )
            try:
                if predicate():
                    self.kill9(barrier)
                    return
            except (urllib.error.URLError, OSError, ServerProcessError):
                pass  # transient while the predicate polls over HTTP
            time.sleep(interval)
        raise ServerProcessError(f"barrier {barrier!r} not reached within {timeout}s")

    def terminate(self, timeout: float = 20.0) -> int:
        """Graceful SIGTERM shutdown; returns the exit code."""
        if self.process is None:
            return 0
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)
        return self.process.returncode

    def __enter__(self) -> "ServerProcess":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)

    # ----------------------------------------------------------------- http
    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict[str, Any]:
        """One JSON request against the live server."""
        if self.base_url is None:
            raise ServerProcessError("server not started")
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=self.request_timeout) as response:
            return json.load(response)

    def get(self, path: str) -> dict[str, Any]:
        return self.request("GET", path)

    def post(self, path: str, payload: dict | None = None) -> dict[str, Any]:
        return self.request("POST", path, payload or {})

    def wait_healthy(self, projects: tuple[str, ...] = (), timeout: float = 30.0) -> float:
        """Seconds until ``/healthz`` plus one primary read per project succeed."""
        start = time.monotonic()
        deadline = start + timeout
        pending = ["/healthz"] + [
            f"/projects/{name}/stats" for name in projects
        ]
        while pending and time.monotonic() < deadline:
            try:
                self.get(pending[0])
                pending.pop(0)
            except (urllib.error.URLError, OSError):
                time.sleep(0.05)
        if pending:
            raise ServerProcessError(
                f"server not healthy within {timeout}s (stuck on {pending[0]})"
            )
        return time.monotonic() - start


class FleetProcess(ServerProcess):
    """One managed ``repro serve --workers N`` supervisor over a root.

    The inherited HTTP helpers speak to the *router*; data-plane calls are
    transparently proxied to the owning worker, so ingest/seal/read code
    written against :class:`ServerProcess` drives a fleet unchanged.
    """

    def __init__(
        self,
        root: Path | str,
        *,
        workers: int = 2,
        job_workers: int = 0,
        startup_timeout: float = 90.0,
        request_timeout: float = 30.0,
        extra_args: tuple[str, ...] = (),
    ):
        super().__init__(
            root,
            job_workers=job_workers,
            startup_timeout=startup_timeout,
            request_timeout=request_timeout,
            extra_args=("--workers", str(workers), *extra_args),
        )
        self.workers = workers

    # ------------------------------------------------------------ inspection
    def worker_views(self) -> list[dict[str, Any]]:
        """The supervisor's registry, one view per worker id."""
        return self.get("/fleet/workers")["workers"]

    def worker_view(self, worker_id: str) -> dict[str, Any]:
        for view in self.worker_views():
            if view["id"] == worker_id:
                return view
        raise ServerProcessError(f"no worker {worker_id!r} in the fleet registry")

    def resolve(self, project: str) -> str:
        """The worker id the ring assigns ``project`` to."""
        return self.get(f"/fleet/resolve?project={project}")["worker"]

    def projects_on_distinct_workers(
        self, count: int = 2, *, prefix: str = "tenant", probes: int = 64
    ) -> dict[str, str]:
        """``{project: worker_id}`` for ``count`` differently-placed projects.

        Probes candidate names until the ring has spread them over ``count``
        distinct workers — the setup every routing/chaos test needs ("two
        projects landing on different workers").
        """
        placed: dict[str, str] = {}
        seen: set[str] = set()
        for i in range(probes):
            name = f"{prefix}_{i:02d}"
            owner = self.resolve(name)
            if owner not in seen:
                seen.add(owner)
                placed[name] = owner
                if len(placed) == count:
                    return placed
        raise ServerProcessError(
            f"could not find {count} projects on distinct workers in {probes} probes"
        )

    # -------------------------------------------------------------- killing
    def kill_worker9(self, worker_id: str) -> int:
        """SIGKILL one *worker* process (not the supervisor); returns its pid."""
        view = self.worker_view(worker_id)
        pid = view.get("pid")
        if not pid:
            raise ServerProcessError(f"worker {worker_id!r} has no registered pid")
        os.kill(int(pid), signal.SIGKILL)
        return int(pid)

    def wait_worker_recovered(
        self, worker_id: str, old_pid: int, *, timeout: float = 60.0
    ) -> float:
        """Seconds until the supervisor respawned + re-registered the worker."""
        start = time.monotonic()
        deadline = start + timeout
        while time.monotonic() < deadline:
            try:
                view = self.worker_view(worker_id)
                if (
                    view["registered"]
                    and view["alive"]
                    and view.get("pid") not in (None, old_pid)
                ):
                    return time.monotonic() - start
            except (urllib.error.URLError, OSError, ServerProcessError):
                pass
            time.sleep(0.05)
        raise ServerProcessError(
            f"worker {worker_id!r} (old pid {old_pid}) not recovered within {timeout}s"
        )
