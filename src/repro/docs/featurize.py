"""Page featurization (Figure 3) and feature vectors for the classifier.

``analyze_text`` in the paper extracts headings and page numbers; this
module implements that extraction plus a numeric feature vector used by the
training pipeline to predict whether a page is the first page of a document
(the label the demo's human-feedback loop corrects via "page colors").
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..core.api import flor
from .corpus import Document, DocumentCorpus
from .ocr import TextExtraction, read_page

_PAGE_NUMBER_RE = re.compile(r"^Page\s+(\d+)\s*$", re.IGNORECASE | re.MULTILINE)
_HEADING_RE = re.compile(r"^(Section\s+\d+:.*|[A-Z][A-Za-z ]{3,60}Report.*)$", re.MULTILINE)


@dataclass
class PageFeatures:
    """Features extracted from one page's text."""

    document: str
    page_index: int
    text_src: str
    headings: list[str]
    page_numbers: list[int]
    word_count: int
    uppercase_ratio: float
    digit_ratio: float
    first_line_length: int

    def label_first_page(self) -> int:
        """Ground-truth-free heuristic label (corrected later by experts)."""
        return 1 if self.page_numbers and min(self.page_numbers) == 1 else 0


def analyze_text(page_text: str) -> tuple[list[str], list[int]]:
    """Extract headings and printed page numbers, as in Figure 3."""
    headings = [match.strip() for match in _HEADING_RE.findall(page_text)]
    page_numbers = [int(match) for match in _PAGE_NUMBER_RE.findall(page_text)]
    return headings, page_numbers


def extract_features(document: Document, page_index: int, extraction: TextExtraction) -> PageFeatures:
    """Full feature record for one page given its extracted text."""
    text = extraction.text
    headings, page_numbers = analyze_text(text)
    letters = [c for c in text if c.isalpha()]
    uppercase_ratio = sum(1 for c in letters if c.isupper()) / max(1, len(letters))
    digit_ratio = sum(1 for c in text if c.isdigit()) / max(1, len(text))
    first_line = text.splitlines()[0] if text.splitlines() else ""
    return PageFeatures(
        document=document.name,
        page_index=page_index,
        text_src=extraction.text_src,
        headings=headings,
        page_numbers=page_numbers,
        word_count=len(text.split()),
        uppercase_ratio=uppercase_ratio,
        digit_ratio=digit_ratio,
        first_line_length=len(first_line),
    )


def feature_vector(features: PageFeatures) -> np.ndarray:
    """Fixed-width numeric vector for the classifier (8 features)."""
    return np.array(
        [
            float(len(features.headings)),
            float(len(features.page_numbers)),
            float(min(features.page_numbers)) if features.page_numbers else 0.0,
            float(features.word_count),
            features.uppercase_ratio,
            features.digit_ratio,
            float(features.first_line_length),
            1.0 if features.text_src == "OCR" else 0.0,
        ],
        dtype=np.float64,
    )


def featurize_corpus(
    corpus: DocumentCorpus,
    *,
    use_flor: bool = True,
    ocr_error_rate: float = 0.02,
    documents: Iterable[str] | None = None,
) -> Iterator[PageFeatures]:
    """The featurization loop of Figure 3, yielding features per page.

    With ``use_flor`` (the default) the loop is instrumented exactly as in
    the paper: nested ``flor.loop`` over documents and pages, logging
    ``text_src``, ``page_text``, ``headings``, ``page_numbers`` and the
    derived ``first_page`` flag.
    """
    wanted = set(documents) if documents is not None else None
    names = [d.name for d in corpus if wanted is None or d.name in wanted]

    def document_iter(values):
        return flor.loop("document", values) if use_flor else values

    def page_iter(values):
        return flor.loop("page", values) if use_flor else values

    for doc_name in document_iter(names):
        document = corpus.get(doc_name)
        for page_index in page_iter(range(len(document))):
            extraction = read_page(document, page_index, ocr_error_rate=ocr_error_rate, seed=corpus.seed)
            text_src, page_text = extraction.as_tuple()
            if use_flor:
                flor.log("text_src", text_src)
                flor.log("page_text", page_text)
            features = extract_features(document, page_index, extraction)
            if use_flor:
                flor.log("headings", features.headings)
                flor.log("page_numbers", features.page_numbers)
                flor.log("first_page", features.label_first_page())
            yield features
