"""Synthetic document corpus and featurization (the PDF-parser data path).

The paper's demo ingests real PDFs, splits them into pages, runs OCR or text
extraction and featurizes each page (Figure 3).  Real PDFs and OCR engines
are unavailable offline, so this package generates an equivalent synthetic
corpus — multi-page documents with headings, page numbers, body text and a
configurable "scanned" fraction whose text passes through a noisy OCR
simulator — and implements the page featurization from Figure 3 on top.
The substitution keeps the code path identical: the featurization loop, the
flor logging, and the downstream classifier all consume the same shapes the
real pipeline would produce.
"""

from .corpus import Document, DocumentCorpus, Page, generate_corpus
from .featurize import PageFeatures, extract_features, featurize_corpus, feature_vector
from .ocr import TextExtraction, read_page, simulate_ocr

__all__ = [
    "Document",
    "Page",
    "DocumentCorpus",
    "generate_corpus",
    "TextExtraction",
    "read_page",
    "simulate_ocr",
    "PageFeatures",
    "extract_features",
    "feature_vector",
    "featurize_corpus",
]
