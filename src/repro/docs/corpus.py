"""Synthetic multi-page document corpus.

Each generated document mimics the structure the PDF-parser demo cares
about: a first page (title, authors, abstract-like text), body pages with
section headings and printed page numbers, and an optional "scanned" flag
that routes the page through the OCR simulator instead of clean text
extraction.  Documents can be written to disk (one ``.txt`` per page plus a
``manifest.json``) so the Make-driven pipeline has real files to depend on.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

_TOPICS = (
    "criminal defense discovery",
    "public health surveillance",
    "municipal budget oversight",
    "housing court filings",
    "environmental impact review",
    "police misconduct records",
    "immigration case backlog",
    "school district performance",
)

_WORDS = (
    "record evidence motion exhibit finding statute analysis review data table "
    "summary appendix witness report metric figure policy outcome hearing docket "
    "count petition order filing response disclosure audit sample population"
).split()


@dataclass
class Page:
    """One page of a synthetic document."""

    number: int               # 1-based printed page number
    heading: str | None       # section heading, if the page starts a section
    text: str                 # body text (pre-OCR ground truth)
    is_first_page: bool = False
    is_scanned: bool = False  # scanned pages go through the OCR simulator

    @property
    def word_count(self) -> int:
        return len(self.text.split())


@dataclass
class Document:
    """A synthetic multi-page document."""

    name: str
    title: str
    topic: str
    pages: list[Page] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self) -> Iterator[Page]:
        return iter(self.pages)


@dataclass
class DocumentCorpus:
    """A collection of documents plus the seed that generated them."""

    documents: list[Document] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def document_names(self) -> list[str]:
        return [d.name for d in self.documents]

    def get(self, name: str) -> Document:
        for document in self.documents:
            if document.name == name:
                return document
        raise KeyError(name)

    @property
    def total_pages(self) -> int:
        return sum(len(d) for d in self.documents)

    # ------------------------------------------------------------------- I/O
    def write_to(self, directory: Path | str) -> Path:
        """Write one text file per page plus a corpus manifest.

        Layout: ``<dir>/<doc_name>/page_<k>.txt`` and ``<dir>/manifest.json``.
        Returns the directory path.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest: dict[str, list[dict]] = {}
        for document in self.documents:
            doc_dir = directory / document.name
            doc_dir.mkdir(parents=True, exist_ok=True)
            manifest[document.name] = []
            for page in document.pages:
                page_path = doc_dir / f"page_{page.number:03d}.txt"
                page_path.write_text(page.text)
                manifest[document.name].append(
                    {
                        "number": page.number,
                        "heading": page.heading,
                        "is_first_page": page.is_first_page,
                        "is_scanned": page.is_scanned,
                    }
                )
        (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
        return directory


def _sentence(rng: random.Random, words: int) -> str:
    chosen = [rng.choice(_WORDS) for _ in range(words)]
    chosen[0] = chosen[0].capitalize()
    return " ".join(chosen) + "."


def _page_text(rng: random.Random, heading: str | None, page_number: int, paragraphs: int) -> str:
    parts: list[str] = []
    if heading:
        parts.append(heading)
    for _ in range(paragraphs):
        sentences = [_sentence(rng, rng.randint(6, 14)) for _ in range(rng.randint(2, 5))]
        parts.append(" ".join(sentences))
    parts.append(f"Page {page_number}")
    return "\n\n".join(parts)


def generate_corpus(
    num_documents: int = 6,
    min_pages: int = 3,
    max_pages: int = 10,
    scanned_fraction: float = 0.3,
    seed: int = 0,
) -> DocumentCorpus:
    """Generate a deterministic synthetic corpus.

    ``scanned_fraction`` of pages are marked as scanned so that the OCR code
    path (and its "text_src" logging in Figure 3) is exercised.
    """
    rng = random.Random(seed)
    documents: list[Document] = []
    for d in range(num_documents):
        topic = rng.choice(_TOPICS)
        title = f"{topic.title()} Report {d + 1}"
        name = f"doc_{d:03d}.pdf"
        pages: list[Page] = []
        num_pages = rng.randint(min_pages, max_pages)
        section = 0
        for p in range(num_pages):
            first = p == 0
            heading = None
            if first:
                heading = title
            elif rng.random() < 0.4:
                section += 1
                heading = f"Section {section}: {rng.choice(_TOPICS).title()}"
            text = _page_text(rng, heading, p + 1, paragraphs=rng.randint(1, 3))
            if first:
                text = f"{title}\nPrepared by the {topic.title()} Team\n\n" + text
            pages.append(
                Page(
                    number=p + 1,
                    heading=heading,
                    text=text,
                    is_first_page=first,
                    is_scanned=rng.random() < scanned_fraction,
                )
            )
        documents.append(Document(name=name, title=title, topic=topic, pages=pages))
    return DocumentCorpus(documents=documents, seed=seed)
