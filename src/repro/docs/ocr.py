"""Simulated text extraction: clean TXT extraction vs. noisy OCR.

In Figure 3 the featurization loop calls ``read_page`` and logs whether the
text came from OCR or direct extraction (``text_src``).  Real OCR engines are
unavailable offline; :func:`simulate_ocr` introduces deterministic,
seed-controlled character-level noise (substitutions, drops, ligature
confusions) so that downstream code sees realistically imperfect text for
scanned pages while born-digital pages pass through untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .corpus import Document, Page

#: Classic OCR confusions applied during simulation.
_CONFUSIONS = {
    "l": "1",
    "1": "l",
    "O": "0",
    "0": "O",
    "m": "rn",
    "e": "c",
    "S": "5",
}

#: Source tags matching the paper's example ("OCR" or "TXT").
SOURCE_OCR = "OCR"
SOURCE_TXT = "TXT"


@dataclass(frozen=True)
class TextExtraction:
    """Result of reading one page: the text and which channel produced it."""

    text_src: str
    text: str
    char_error_estimate: float = 0.0

    def as_tuple(self) -> tuple[str, str]:
        """``(text_src, page_text)`` exactly as destructured in Figure 3."""
        return self.text_src, self.text


def simulate_ocr(text: str, error_rate: float = 0.02, seed: int = 0) -> tuple[str, float]:
    """Corrupt ``text`` with OCR-style noise; returns ``(noisy_text, applied_rate)``.

    The corruption is deterministic for a given ``(text, error_rate, seed)``
    so featurization tests remain reproducible.
    """
    if not 0.0 <= error_rate < 1.0:
        raise ValueError(f"error_rate must be in [0, 1), got {error_rate}")
    rng = random.Random((hash(text) & 0xFFFFFFFF) ^ seed)
    out: list[str] = []
    corrupted = 0
    for char in text:
        if char.isalnum() and rng.random() < error_rate:
            corrupted += 1
            choice = rng.random()
            if choice < 0.5 and char in _CONFUSIONS:
                out.append(_CONFUSIONS[char])
            elif choice < 0.8:
                out.append(char)
                out.append(char)  # duplicated glyph
            else:
                continue  # dropped glyph
        else:
            out.append(char)
    applied = corrupted / max(1, len(text))
    return "".join(out), applied


def read_page(document: Document, page_index: int, ocr_error_rate: float = 0.02, seed: int = 0) -> TextExtraction:
    """Extract the text of one page, choosing the OCR or TXT channel.

    This is the ``read_page(doc_name, page)`` call of Figure 3: scanned pages
    go through the OCR simulator, born-digital pages return their text as-is.
    """
    page: Page = document.pages[page_index]
    if page.is_scanned:
        noisy, applied = simulate_ocr(page.text, error_rate=ocr_error_rate, seed=seed)
        return TextExtraction(text_src=SOURCE_OCR, text=noisy, char_error_estimate=applied)
    return TextExtraction(text_src=SOURCE_TXT, text=page.text, char_error_estimate=0.0)
