"""Admission control and multi-tenant quality of service.

The request boundary of a shared FlorDB service (one process or a whole
fleet) decides — per tenant, per request — *admit now, retry later, or
never*, driven by a declarative policy table with write-time conflict
detection.  Three layers:

* :mod:`repro.qos.bucket` — the accounting primitives: a skew-safe
  :class:`TokenBucket` (rate + burst) and fixed-window :class:`QuotaWindow`
  (bytes per window), both over injectable clocks;
* :mod:`repro.qos.policy` — the persisted per-tenant policy table:
  ordered first-match rules with exact/prefix/default selectors, priority
  classes mapped onto ``jobs.priority``, and writes that reject shadowed or
  contradictory rules with a structured
  :class:`~repro.errors.PolicyConflictError`;
* :mod:`repro.qos.admission` — the :class:`AdmissionController` gluing the
  two together at the HTTP layer: one check-and-charge per request, ``429``
  + ``Retry-After`` semantics, and monotone per-tenant counters surfaced in
  the stats routes.
"""

from .admission import AdmissionController, AdmissionDecision
from .bucket import QuotaWindow, TokenBucket
from .policy import (
    BUILTIN_DEFAULT,
    PRIORITY_CLASSES,
    QOS_DB_FILENAME,
    PolicyRule,
    PolicyStore,
    Resolution,
    rule_from_payload,
    selector_covers,
    selector_matches,
    validate_rule,
    validate_selector,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BUILTIN_DEFAULT",
    "PRIORITY_CLASSES",
    "PolicyRule",
    "PolicyStore",
    "QOS_DB_FILENAME",
    "QuotaWindow",
    "Resolution",
    "TokenBucket",
    "rule_from_payload",
    "selector_covers",
    "selector_matches",
    "validate_rule",
    "validate_selector",
]
