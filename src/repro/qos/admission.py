"""The admission controller: policy table → per-tenant buckets → decisions.

One :class:`AdmissionController` sits at a request boundary (the single
service's HTTP layer, or the fleet router's proxy — never both at once) and
answers one question: *may this tenant's request proceed right now?*  The
answer is an :class:`AdmissionDecision` — allowed, **throttled** (denied now,
``retry_after`` says when capacity returns), or **rejected** (can never be
admitted under the current policy, e.g. a single append larger than the
whole byte quota).  Nothing is ever queued: deferred work is the tenant's
client's job, signalled with ``429`` + ``Retry-After``.

Bucket state is per tenant and per process.  Policy comes from the shared
:class:`~repro.qos.policy.PolicyStore`; rules are cached and re-resolved
when the store's generation counter moves — immediately in-process (the
store's ``on_change`` hook) and within ``refresh_interval`` seconds across
processes.  A policy change rebuilds the affected tenants' buckets; the
admitted/throttled/rejected counters are monotone for the life of the
process regardless (the chaos suite kills workers under load and asserts
exactly that on the surviving router).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from .bucket import QuotaWindow, TokenBucket
from .policy import PolicyStore, Resolution


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``allowed`` is the only field a fast-path caller needs; denied
    decisions carry the (positive) ``retry_after`` hint, the limiting
    dimension in ``reason`` (``"rate"``, ``"quota"`` or ``"too_large"``)
    and whether the denial is a retryable throttle or a hard reject.
    """

    allowed: bool
    retry_after: float = 0.0
    reason: str = ""
    rejected: bool = False  #: True when retrying can never help

    @property
    def throttled(self) -> bool:
        return not self.allowed and not self.rejected


ALLOWED = AdmissionDecision(allowed=True)


class _TenantState:
    """One tenant's buckets, counters, and the rule they were built from."""

    __slots__ = (
        "resolution",
        "bucket",
        "quota",
        "admitted",
        "throttled",
        "rejected",
    )

    def __init__(self, resolution: Resolution, clock: Callable[[], float]):
        self.resolution = resolution
        rule = resolution.rule
        self.bucket = (
            None
            if rule.rate is None
            else TokenBucket(rule.rate, rule.effective_burst, clock=clock)
        )
        self.quota = (
            None
            if rule.byte_quota is None
            else QuotaWindow(rule.byte_quota, rule.window_seconds, clock=clock)
        )
        self.admitted = 0
        self.throttled = 0
        self.rejected = 0


class AdmissionController:
    """Per-tenant admission decisions over a shared policy table.

    Parameters
    ----------
    policies:
        The policy store to resolve tenants against.  The controller
        registers itself on the store's ``on_change`` hook for same-process
        invalidation.
    refresh_interval:
        How often (seconds) to poll the store's generation counter for
        *cross-process* policy changes.  ``0`` polls on every check (tests).
    clock:
        Injectable time source used for buckets, windows, and the refresh
        schedule.
    """

    def __init__(
        self,
        policies: PolicyStore,
        *,
        refresh_interval: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policies = policies
        self.refresh_interval = float(refresh_interval)
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}
        self._generation = policies.generation()
        self._next_refresh = clock() + self.refresh_interval
        self._dirty = False
        # Optional repro.obs.MetricsRegistry (duck-typed), assigned by the
        # service so admission verdicts show up in /service/telemetry.
        self.metrics = None
        policies.on_change = self._mark_dirty

    def _mark_dirty(self) -> None:
        self._dirty = True

    # ------------------------------------------------------------- checks
    def admit(self, tenant: str, nbytes: int = 0) -> AdmissionDecision:
        """Check (and, when allowed, charge) one request for ``tenant``.

        A single check-and-charge under one lock: a granted decision has
        already consumed one rate token and ``nbytes`` of quota, so callers
        must only call this once per request, after cheap validation but
        before any real work.  Denials charge nothing — a throttled tenant's
        bucket is not further drained by its own retries.
        """
        with self._lock:
            self._maybe_refresh()
            state = self._tenant(tenant)
            rule = state.resolution.rule
            if rule.byte_quota is not None and nbytes > rule.byte_quota:
                state.rejected += 1
                if self.metrics is not None:
                    self.metrics.inc("qos.rejected")
                return AdmissionDecision(
                    allowed=False,
                    retry_after=rule.window_seconds,
                    reason="too_large",
                    rejected=True,
                )
            # Probe the bucket before charging quota: both limits must pass
            # before either is charged, so a rate-throttled request does not
            # silently eat byte quota (and vice versa).
            if state.bucket is not None and state.bucket.level < 1.0:
                state.throttled += 1
                if self.metrics is not None:
                    self.metrics.inc("qos.throttled")
                wait = max((1.0 - state.bucket.level) / state.bucket.rate, 1e-9)
                return AdmissionDecision(False, retry_after=wait, reason="rate")
            if state.quota is not None and nbytes > 0:
                wait = state.quota.try_consume(nbytes)
                if wait > 0.0:
                    state.throttled += 1
                    if self.metrics is not None:
                        self.metrics.inc("qos.throttled")
                    return AdmissionDecision(False, retry_after=wait, reason="quota")
            if state.bucket is not None:
                state.bucket.try_take(1.0)
            state.admitted += 1
            if self.metrics is not None:
                self.metrics.inc("qos.admitted")
            return ALLOWED

    def resolve(self, tenant: str) -> Resolution:
        """The rule currently governing ``tenant`` (building state lazily)."""
        with self._lock:
            self._maybe_refresh()
            return self._tenant(tenant).resolution

    def job_priority(self, tenant: str) -> int:
        """The ``jobs.priority`` integer for the tenant's priority class."""
        return self.resolve(tenant).rule.job_priority

    # -------------------------------------------------------------- stats
    def snapshot(self, tenant: str | None = None) -> dict[str, Any]:
        """Counters and live bucket levels, for the stats routes.

        With ``tenant`` given, that tenant's block (creating its state so
        the levels reflect its policy even before its first request);
        otherwise every tenant seen so far plus fleet-wide totals.
        """
        with self._lock:
            self._maybe_refresh()
            if tenant is not None:
                return self._tenant_stats(self._tenant(tenant))
            tenants = {
                name: self._tenant_stats(state)
                for name, state in sorted(self._tenants.items())
            }
            return {
                "generation": self._generation,
                "admitted": sum(s["admitted"] for s in tenants.values()),
                "throttled": sum(s["throttled"] for s in tenants.values()),
                "rejected": sum(s["rejected"] for s in tenants.values()),
                "tenants": tenants,
            }

    @staticmethod
    def _tenant_stats(state: _TenantState) -> dict[str, Any]:
        stats: dict[str, Any] = {
            "admitted": state.admitted,
            "throttled": state.throttled,
            "rejected": state.rejected,
            "policy": state.resolution.as_dict(),
        }
        if state.bucket is not None:
            stats["bucket_level"] = round(state.bucket.level, 6)
        if state.quota is not None:
            stats["quota_remaining"] = state.quota.remaining
        return stats

    # ----------------------------------------------------------- internal
    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(self.policies.resolve(tenant), self._clock)
            self._tenants[tenant] = state
        return state

    def _maybe_refresh(self) -> None:
        """Re-resolve tenants whose rule changed; counters survive."""
        now = self._clock()
        if not self._dirty and now < self._next_refresh:
            return
        self._next_refresh = now + self.refresh_interval
        self._dirty = False
        generation = self.policies.generation()
        if generation == self._generation:
            return
        self._generation = generation
        for name, state in self._tenants.items():
            resolution = self.policies.resolve(name)
            if resolution == state.resolution:
                continue
            fresh = _TenantState(resolution, self._clock)
            fresh.admitted = state.admitted
            fresh.throttled = state.throttled
            fresh.rejected = state.rejected
            self._tenants[name] = fresh
