"""The declarative per-tenant policy table, with write-time conflict detection.

A policy is an ordered list of **rules** persisted in the ``qos_policies``
table of a host-level database (``<root>/.flor-qos.db``).  Each rule binds a
*selector* to admission limits and a priority class:

* an **exact selector** (``tenant_03``) matches one tenant;
* a **prefix selector** (``team_a_*``) matches every tenant whose name
  starts with the prefix;
* the ``*`` selector is the **default fallback** — it sits outside the
  ordered scan and answers only when no other rule matched (so writing it
  can never shadow anything).

Resolution is **first-match-wins** over the non-``*`` rules in ``position``
order, then the ``*`` default, then the built-in unlimited policy.  That
ordering is what makes conflicts *decidable at write time* — the shape the
conflict-aware ACL-configuration work argues for: reject a bad rule when the
operator writes it, not when a tenant discovers it in production.

Two conflict families are rejected by :meth:`PolicyStore.put`:

* **Shadowing** (structural): a rule placed after another rule whose
  selector *covers* it (matches a superset of its names) can never fire —
  and dually, a broad rule inserted early makes existing later rules
  unreachable.  Both directions raise
  :class:`~repro.errors.PolicyConflictError` with ``code="shadowed"`` /
  ``code="shadows"`` naming both selectors.
* **Contradiction** (semantic): limits that can never admit a request —
  a burst below one token, a zero byte quota, a non-positive rate or
  window, an unknown priority class.  ``code="contradiction"`` names the
  offending field.

``NULL``/``None`` limits mean "unlimited" for that dimension, so "no rate
limit but a byte quota" and vice versa are both expressible.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..errors import PolicyConflictError, QosError
from ..storage.protocols import RelationalStore

#: Filename of the host-level QoS policy database under a service root
#: (same dot-prefix convention as the jobs database: never a tenant name).
QOS_DB_FILENAME = ".flor-qos.db"

#: Priority classes and their mapping onto the ``jobs.priority`` integer
#: column (higher claims first).  The spread leaves room for explicit
#: per-job overrides between classes.
PRIORITY_CLASSES: dict[str, int] = {"high": 100, "normal": 0, "low": -100}

#: ``meta`` key bumped on every policy write; cross-process admission
#: controllers poll it to invalidate their cached rules.
GENERATION_KEY = "qos_policy_generation"

_EXACT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_PREFIX_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*\*$")

_RULE_COLUMNS = (
    "selector",
    "position",
    "rate",
    "burst",
    "byte_quota",
    "window_seconds",
    "priority",
    "updated_at",
)
_RULE_COLUMNS_SQL = ", ".join(_RULE_COLUMNS)


def validate_selector(selector: str) -> str:
    """A selector is ``*``, an exact tenant name, or ``prefix*``."""
    if selector == "*":
        return selector
    if _EXACT_RE.match(selector) or _PREFIX_RE.match(selector):
        return selector
    raise QosError(
        f"invalid policy selector {selector!r}: expected '*', a tenant name, "
        "or a 'prefix*' pattern"
    )


def selector_matches(selector: str, tenant: str) -> bool:
    if selector == "*":
        return True
    if selector.endswith("*"):
        return tenant.startswith(selector[:-1])
    return tenant == selector


def selector_covers(a: str, b: str) -> bool:
    """Whether every tenant matching ``b`` also matches ``a`` (``a`` ≠ ``b``).

    The shadow test: with first-match-wins, an earlier covering rule makes
    the later one unreachable.  ``*`` is excluded from the ordered scan and
    never participates.
    """
    if a == b or a == "*" or b == "*":
        return False
    if a.endswith("*"):
        prefix = a[:-1]
        if b.endswith("*"):
            return b[:-1].startswith(prefix)
        return b.startswith(prefix)
    return False  # an exact selector covers only itself


@dataclass(frozen=True)
class PolicyRule:
    """One admission rule.  ``None`` limits mean unlimited on that axis."""

    selector: str
    rate: float | None = None  #: sustained requests/second
    burst: float | None = None  #: bucket capacity; defaults to max(rate, 1)
    byte_quota: int | None = None  #: bytes admitted per window
    window_seconds: float = 60.0  #: byte-quota window length
    priority: str = "normal"  #: job priority class (see PRIORITY_CLASSES)
    position: int = 0  #: scan order among non-``*`` rules (lower first)
    updated_at: float = 0.0

    @property
    def effective_burst(self) -> float | None:
        if self.rate is None:
            return None
        return self.burst if self.burst is not None else max(self.rate, 1.0)

    @property
    def job_priority(self) -> int:
        return PRIORITY_CLASSES[self.priority]

    @property
    def unlimited(self) -> bool:
        return self.rate is None and self.byte_quota is None

    def as_dict(self) -> dict[str, Any]:
        return {
            "selector": self.selector,
            "rate": self.rate,
            "burst": self.burst,
            "byte_quota": self.byte_quota,
            "window_seconds": self.window_seconds,
            "priority": self.priority,
            "position": self.position,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_row(cls, row: tuple) -> "PolicyRule":
        return cls(
            selector=str(row[0]),
            position=int(row[1]),
            rate=None if row[2] is None else float(row[2]),
            burst=None if row[3] is None else float(row[3]),
            byte_quota=None if row[4] is None else int(row[4]),
            window_seconds=float(row[5]),
            priority=str(row[6]),
            updated_at=float(row[7]),
        )


#: The built-in fallback when neither a rule nor a ``*`` default matches:
#: unlimited, normal priority.  QoS-enabled services stay permissive for
#: tenants the operator never mentioned.
BUILTIN_DEFAULT = PolicyRule(selector="*")


def validate_rule(rule: PolicyRule) -> None:
    """Reject intra-rule contradictions (limits that can never admit)."""

    def contradiction(field_name: str, message: str) -> PolicyConflictError:
        return PolicyConflictError(
            f"contradictory policy for {rule.selector!r}: {message}",
            code="contradiction",
            selector=rule.selector,
            field=field_name,
        )

    validate_selector(rule.selector)
    if rule.rate is not None and rule.rate <= 0:
        raise contradiction("rate", f"rate {rule.rate} can never admit a request (must be > 0 or null)")
    if rule.burst is not None:
        if rule.rate is None:
            raise contradiction("burst", "burst without a rate is meaningless (set rate or drop burst)")
        if rule.burst < 1:
            raise contradiction("burst", f"burst {rule.burst} holds less than one token — every request denied")
    if rule.byte_quota is not None and rule.byte_quota <= 0:
        raise contradiction(
            "byte_quota",
            f"byte quota {rule.byte_quota} admits zero bytes — every append denied",
        )
    if rule.window_seconds <= 0:
        raise contradiction("window_seconds", f"window of {rule.window_seconds}s never accrues quota")
    if rule.priority not in PRIORITY_CLASSES:
        raise contradiction(
            "priority",
            f"unknown priority class {rule.priority!r}; expected one of {sorted(PRIORITY_CLASSES)}",
        )


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one tenant: the rule plus where it came from."""

    rule: PolicyRule
    source: str  #: "rule" | "default" | "builtin"

    def as_dict(self) -> dict[str, Any]:
        return {"source": self.source, **self.rule.as_dict()}


class PolicyStore:
    """CRUD + conflict detection over one ``qos_policies`` table.

    Thread-safe to the extent the underlying store's transactions are (the
    service opens one per process).  Every successful write bumps the
    ``meta.qos_policy_generation`` counter so cached admission state — in
    this process (via :attr:`on_change`) or another (via polling
    :meth:`generation`) — knows to reload.
    """

    def __init__(self, db: RelationalStore, *, clock: Callable[[], float] = time.time):
        self.db = db
        self._clock = clock
        self._owns_db = False
        #: Called (with no arguments) after every successful write; the
        #: in-process admission controller hooks its cache invalidation here.
        self.on_change: Callable[[], None] | None = None

    @classmethod
    def open(cls, root: Path | str, **kwargs: Any) -> "PolicyStore":
        """Open (creating if needed) the host-level policy store under ``root``."""
        from ..relational.database import Database

        store = cls(Database(Path(root) / QOS_DB_FILENAME), **kwargs)
        store._owns_db = True
        return store

    def close(self) -> None:
        if self._owns_db:
            self.db.close()

    def __enter__(self) -> "PolicyStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # --------------------------------------------------------------- reads
    def rules(self) -> list[PolicyRule]:
        """Non-``*`` rules in scan order (position, then selector)."""
        rows = self.db.query(
            f"SELECT {_RULE_COLUMNS_SQL} FROM qos_policies WHERE selector != '*'"
            " ORDER BY position ASC, selector ASC"
        )
        return [PolicyRule.from_row(row) for row in rows]

    def default(self) -> PolicyRule | None:
        """The stored ``*`` fallback, if the operator wrote one."""
        row = self.db.query_one(
            f"SELECT {_RULE_COLUMNS_SQL} FROM qos_policies WHERE selector = '*'"
        )
        return None if row is None else PolicyRule.from_row(row)

    def get(self, selector: str) -> PolicyRule | None:
        row = self.db.query_one(
            f"SELECT {_RULE_COLUMNS_SQL} FROM qos_policies WHERE selector = ?",
            (selector,),
        )
        return None if row is None else PolicyRule.from_row(row)

    def resolve(self, tenant: str) -> Resolution:
        """First matching rule, else the ``*`` default, else the built-in."""
        for rule in self.rules():
            if selector_matches(rule.selector, tenant):
                return Resolution(rule, "rule")
        default = self.default()
        if default is not None:
            return Resolution(default, "default")
        return Resolution(BUILTIN_DEFAULT, "builtin")

    def generation(self) -> int:
        """Monotone write counter (0 before the first write); cheap to poll."""
        row = self.db.query_one("SELECT value FROM meta WHERE key = ?", (GENERATION_KEY,))
        return 0 if row is None else int(row[0])

    # -------------------------------------------------------------- writes
    def put(self, rule: PolicyRule) -> PolicyRule:
        """Insert or replace the rule for ``rule.selector``; returns it durably.

        Raises :class:`~repro.errors.PolicyConflictError` on any shadow or
        contradiction — rejected writes leave the table untouched.  A new
        non-``*`` rule with ``position=0`` (the default) is appended after
        the current last rule; an explicit position is honored as given.
        An update keeps the rule's existing position unless one is passed.
        """
        validate_rule(rule)
        now = self._clock()
        with self.db.transaction() as conn:
            existing = {
                r.selector: r
                for r in (
                    PolicyRule.from_row(row)
                    for row in conn.execute(
                        f"SELECT {_RULE_COLUMNS_SQL} FROM qos_policies WHERE selector != '*'"
                        " ORDER BY position ASC, selector ASC"
                    ).fetchall()
                )
            }
            position = rule.position
            if rule.selector != "*":
                if position == 0:
                    prior = existing.get(rule.selector)
                    if prior is not None:
                        position = prior.position
                    else:
                        tail = max((r.position for r in existing.values()), default=0)
                        position = tail + 1
                self._check_shadowing(rule.selector, position, existing)
            conn.execute(
                "INSERT INTO qos_policies"
                " (selector, position, rate, burst, byte_quota, window_seconds, priority, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(selector) DO UPDATE SET"
                " position = excluded.position, rate = excluded.rate,"
                " burst = excluded.burst, byte_quota = excluded.byte_quota,"
                " window_seconds = excluded.window_seconds,"
                " priority = excluded.priority, updated_at = excluded.updated_at",
                (
                    rule.selector,
                    position,
                    rule.rate,
                    rule.burst,
                    rule.byte_quota,
                    rule.window_seconds,
                    rule.priority,
                    now,
                ),
            )
            self._bump_generation(conn)
        if self.on_change is not None:
            self.on_change()
        stored = self.get(rule.selector)
        assert stored is not None
        return stored

    def delete(self, selector: str) -> bool:
        """Remove a rule; returns whether it existed.  Never conflicts —
        removing a rule only ever *uncovers* later rules."""
        validate_selector(selector)
        with self.db.transaction() as conn:
            cursor = conn.execute("DELETE FROM qos_policies WHERE selector = ?", (selector,))
            removed = cursor.rowcount > 0
            if removed:
                self._bump_generation(conn)
        if removed and self.on_change is not None:
            self.on_change()
        return removed

    def load(self, config: dict[str, Any]) -> int:
        """Load a policy document (the ``--qos-policy`` file format).

        ``{"default": {...}, "rules": [{"selector": ..., ...}, ...]}`` —
        rules are applied in list order (so positions follow the document),
        and each write runs the full conflict check.  Returns the number of
        rules written.
        """
        if not isinstance(config, dict):
            raise QosError("policy document must be a JSON object")
        count = 0
        default = config.get("default")
        if default is not None:
            if not isinstance(default, dict):
                raise QosError("'default' must be an object of limits")
            self.put(rule_from_payload("*", default))
            count += 1
        rules = config.get("rules", [])
        if not isinstance(rules, list):
            raise QosError("'rules' must be a list of rule objects")
        for item in rules:
            if not isinstance(item, dict) or not item.get("selector"):
                raise QosError("every rule needs a 'selector'")
            payload = dict(item)
            selector = str(payload.pop("selector"))
            self.put(rule_from_payload(selector, payload))
            count += 1
        return count

    @classmethod
    def load_file(cls, root: Path | str, path: Path | str) -> "PolicyStore":
        """Open the root's store and load the JSON policy document at ``path``."""
        text = Path(path).read_text()
        try:
            config = json.loads(text)
        except json.JSONDecodeError as exc:
            raise QosError(f"policy file {path} is not valid JSON: {exc}") from exc
        store = cls.open(root)
        try:
            store.load(config)
        except Exception:
            store.close()
            raise
        return store

    # ------------------------------------------------------------ conflicts
    @staticmethod
    def _check_shadowing(
        selector: str, position: int, existing: dict[str, PolicyRule]
    ) -> None:
        for other in existing.values():
            if other.selector == selector:
                continue
            # Scan order among distinct selectors: position, then selector
            # (the rules() ordering) — stable even when positions collide.
            before = (other.position, other.selector) < (position, selector)
            if before and selector_covers(other.selector, selector):
                raise PolicyConflictError(
                    f"rule {selector!r} is shadowed by earlier rule "
                    f"{other.selector!r} and can never match",
                    code="shadowed",
                    selector=selector,
                    by=other.selector,
                )
            if not before and selector_covers(selector, other.selector):
                raise PolicyConflictError(
                    f"rule {selector!r} would shadow existing rule "
                    f"{other.selector!r}, making it unreachable",
                    code="shadows",
                    selector=selector,
                    by=other.selector,
                )

    def _bump_generation(self, conn) -> None:
        conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, '1')"
            " ON CONFLICT(key) DO UPDATE SET value = CAST(value AS INTEGER) + 1",
            (GENERATION_KEY,),
        )


_PAYLOAD_FIELDS = frozenset(
    {"rate", "burst", "byte_quota", "window_seconds", "priority", "position"}
)


def rule_from_payload(selector: str, payload: dict[str, Any]) -> PolicyRule:
    """Build a rule from an HTTP/CLI/file payload, rejecting unknown keys."""
    unknown = set(payload) - _PAYLOAD_FIELDS
    if unknown:
        raise QosError(
            f"unknown policy field(s) {sorted(unknown)}; expected {sorted(_PAYLOAD_FIELDS)}"
        )

    def number(key: str) -> float | None:
        value = payload.get(key)
        if value is None:
            return None
        try:
            return float(value)
        except (TypeError, ValueError) as exc:
            raise QosError(f"policy field {key!r} must be a number, got {value!r}") from exc

    byte_quota = payload.get("byte_quota")
    if byte_quota is not None:
        try:
            byte_quota = int(byte_quota)
        except (TypeError, ValueError) as exc:
            raise QosError(f"policy field 'byte_quota' must be an integer, got {byte_quota!r}") from exc
    return PolicyRule(
        selector=validate_selector(selector),
        rate=number("rate"),
        burst=number("burst"),
        byte_quota=byte_quota,
        window_seconds=number("window_seconds") or 60.0,
        priority=str(payload.get("priority", "normal")),
        position=int(payload.get("position", 0) or 0),
    )
