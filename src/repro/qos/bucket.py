"""Rate-limiting primitives: token bucket and fixed-window byte quota.

Both primitives are pure accounting over an injectable clock — no threads,
no sleeps — so the admission controller can compose them under one lock and
the tests can drive them with :class:`repro.testing.ManualClock` (and the
seeded :class:`~repro.testing.SkewedClock`, which makes readings jump
*backwards*; see the clamping notes below).

Design points the multi-tenant service relies on:

* **Deny, never queue.**  ``try_take``/``try_consume`` either grant now or
  return a positive ``retry_after`` hint; nothing ever blocks.  The HTTP
  layer turns the hint into ``429`` + ``Retry-After``.
* **Skew-safe refill.**  A wall clock that steps backwards (NTP slew, the
  chaos harness's skewed clock) must not mint negative elapsed time into
  negative tokens or negative retry hints — elapsed time is clamped to
  ``>= 0`` and the last-refill watermark only moves forward.
* **Burst is a cap, not a debt.**  The bucket starts full (``burst``
  tokens) and refills at ``rate`` tokens/second up to ``burst``; an idle
  tenant earns at most one burst, never an unbounded backlog of credit.
"""

from __future__ import annotations

import time
from typing import Callable


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    Not thread-safe on its own; the admission controller serializes access.

    Parameters
    ----------
    rate:
        Sustained refill in tokens per second (> 0).
    burst:
        Bucket capacity (>= 1).  The bucket starts full.
    clock:
        Seconds-valued time source.  Only *differences* are used, so either
        a monotonic or a unix clock works; a reading older than the last
        one contributes zero refill (never negative).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        # Clamp: a skewed/stepped-back clock reading must not subtract
        # tokens (negative elapsed) — and the watermark stays put so the
        # missing time is credited once the clock catches back up.
        elapsed = now - self._last
        if elapsed <= 0:
            return
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def level(self) -> float:
        """Current token count (after refill); never negative."""
        self._refill()
        return self._tokens

    def try_take(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available.

        Returns ``0.0`` when granted, else the (positive) seconds until
        ``n`` tokens will have accrued — the ``Retry-After`` hint.  A
        request for more than ``burst`` tokens can never be granted; the
        hint then covers the shortfall at the sustained rate, and callers
        should treat it as a hard reject.
        """
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return max((n - self._tokens) / self.rate, 1e-9)


class QuotaWindow:
    """Fixed-window byte quota: ``quota`` bytes per ``window_seconds``.

    The window resets ``window_seconds`` after its first consumption (or
    probe), not on a global epoch grid — each tenant's window is its own.
    Clock steps backwards are absorbed: the window never resets early and
    the retry hint is clamped into ``[0, window_seconds]``.
    """

    def __init__(
        self,
        quota: int,
        window_seconds: float,
        *,
        clock: Callable[[], float] = time.time,
    ):
        if quota <= 0:
            raise ValueError(f"quota must be > 0 bytes, got {quota}")
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        self.quota = int(quota)
        self.window_seconds = float(window_seconds)
        self._clock = clock
        self._used = 0
        self._window_start = clock()

    def _roll(self) -> None:
        now = self._clock()
        if now - self._window_start >= self.window_seconds:
            self._window_start = now
            self._used = 0

    @property
    def used(self) -> int:
        """Bytes consumed in the current window."""
        self._roll()
        return self._used

    @property
    def remaining(self) -> int:
        self._roll()
        return max(self.quota - self._used, 0)

    def try_consume(self, nbytes: int) -> float:
        """Consume ``nbytes`` if the window has room.

        Returns ``0.0`` when granted, else the seconds until the window
        resets (clamped to ``[~0, window_seconds]`` so a backwards clock
        never produces a hint longer than one window or a negative one).
        ``nbytes > quota`` can never fit in any window; callers should
        reject such requests outright (see
        :meth:`~repro.qos.admission.AdmissionController.admit`).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self._roll()
        if self._used + nbytes <= self.quota:
            self._used += nbytes
            return 0.0
        until_reset = self._window_start + self.window_seconds - self._clock()
        return min(max(until_reset, 1e-9), self.window_seconds)
