"""Synthetic workload generators used by the benchmark harness.

Every benchmark in ``benchmarks/`` drives the library through one of these
generators, so workload parameters (number of versions, epochs, documents,
log volume, client concurrency) live in one place and the benches stay
declarative.
"""

from .generator import (
    BackfillJobWorkload,
    LoggingWorkload,
    PipelineWorkload,
    ServiceLoadReport,
    ServiceWorkload,
    TrainingWorkload,
    VersionedScriptWorkload,
    WideDagWorkload,
    populate_logs,
)
from .scenarios import AgentSessionWorkload, MultiProjectFanoutWorkload

__all__ = [
    "AgentSessionWorkload",
    "LoggingWorkload",
    "MultiProjectFanoutWorkload",
    "TrainingWorkload",
    "VersionedScriptWorkload",
    "PipelineWorkload",
    "WideDagWorkload",
    "ServiceWorkload",
    "ServiceLoadReport",
    "BackfillJobWorkload",
    "populate_logs",
]
