"""Scenario zoo: workloads beyond ML training loops.

The generators in :mod:`repro.workloads.generator` model the paper's
evaluation surface — training loops, versioned scripts, build DAGs.  The
durability story, though, must hold for whatever users actually log, so the
chaos harness drives two additional shapes through the same dataclass API:

* :class:`AgentSessionWorkload` — agent-session traces: conversation turns
  carrying tool-call records (name, latency, status), token counts and
  per-turn eval scores.  Structurally this is deep, ragged nesting with
  string-heavy values — the opposite of a rectangular metrics loop.
* :class:`MultiProjectFanoutWorkload` — one driver fanning a batch stream
  across many tenant projects round-robin, stressing the pool's LRU churn
  and per-shard writers rather than any single database.

Both expose two drive modes matching the rest of the suite: ``populate``
writes through an in-process :class:`~repro.core.session.Session`, and
``request_payloads`` yields ``POST /projects/<name>/logs`` bodies for the
service layer.  Every logged value embeds the workload ``tag`` and its
coordinates, so a chaos ledger can check set-membership of acknowledged
rows after recovery without coordinating with the generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator

from ..core.session import Session
from ..relational.records import LogRecord, LoopRecord

#: Tool names sampled for agent tool-call records.
AGENT_TOOLS = ("search", "read_file", "edit", "run_tests", "browse", "shell")


@dataclass
class AgentSessionWorkload:
    """Agent-session traces: turns, tool calls, evals — not a training loop.

    One *session* is a ``turn`` loop; each turn logs its prompt/completion
    token counts, ``tool_calls_per_turn`` tool-call records (tool name,
    latency, ok/error status) and an ``eval_score``.  ``tag`` namespaces
    every value so concurrent workload instances stay distinguishable in
    one ``logs`` table.
    """

    sessions: int = 3
    turns_per_session: int = 4
    tool_calls_per_turn: int = 2
    seed: int = 7
    tag: str = "agent"
    filename: str = "agent.py"

    #: Log rows emitted per turn: tokens_in, tokens_out, eval_score, plus
    #: (tool, tool_latency, tool_status) per tool call.
    @property
    def records_per_turn(self) -> int:
        return 3 + 3 * self.tool_calls_per_turn

    @property
    def total_records(self) -> int:
        return self.sessions * self.turns_per_session * self.records_per_turn

    def _turn_values(self, rng: random.Random, s: int, t: int) -> list[tuple[str, Any]]:
        coord = f"{self.tag}.s{s}.t{t}"
        values: list[tuple[str, Any]] = [
            ("tokens_in", f"{coord}:in:{rng.randrange(200, 4000)}"),
            ("tokens_out", f"{coord}:out:{rng.randrange(50, 1500)}"),
        ]
        for call in range(self.tool_calls_per_turn):
            tool = rng.choice(AGENT_TOOLS)
            values.append(("tool", f"{coord}.c{call}:{tool}"))
            values.append(
                ("tool_latency", f"{coord}.c{call}:{rng.uniform(0.01, 2.0):.4f}")
            )
            values.append(
                ("tool_status", f"{coord}.c{call}:{'ok' if rng.random() > 0.1 else 'error'}")
            )
        values.append(("eval_score", f"{coord}:score:{rng.uniform(0.0, 1.0):.3f}"))
        return values

    def populate(self, session: Session) -> int:
        """Write every session trace through an in-process Session."""
        rng = random.Random(self.seed)
        written = 0
        for s in range(self.sessions):
            tstamp = f"2026-02-{s + 1:02d}T00:00:00.{s:06d}"
            loops: list[LoopRecord] = []
            logs: list[LogRecord] = []
            for t in range(self.turns_per_session):
                ctx_id = t + 1
                loops.append(
                    LoopRecord(
                        projid=session.projid,
                        tstamp=tstamp,
                        filename=self.filename,
                        ctx_id=ctx_id,
                        parent_ctx_id=0,
                        loop_name="turn",
                        loop_iteration=t,
                        iteration_value=str(t),
                    )
                )
                for name, value in self._turn_values(rng, s, t):
                    logs.append(
                        LogRecord.create(
                            projid=session.projid,
                            tstamp=tstamp,
                            filename=self.filename,
                            ctx_id=ctx_id,
                            value_name=name,
                            value=value,
                        )
                    )
                    written += 1
            session.loops.add_many(loops)
            session.logs.add_many(logs)
        return written

    def request_payloads(self) -> Iterator[dict[str, Any]]:
        """``POST /projects/<name>/logs`` bodies, one per session turn."""
        rng = random.Random(self.seed)
        for s in range(self.sessions):
            for t in range(self.turns_per_session):
                yield {
                    "filename": self.filename,
                    "records": [
                        {"name": name, "value": value, "ctx_id": t + 1}
                        for name, value in self._turn_values(rng, s, t)
                    ],
                }


@dataclass
class MultiProjectFanoutWorkload:
    """One driver spraying batches across ``tenants`` projects round-robin.

    Each batch carries ``records_per_batch`` values of one metric name; the
    value embeds ``(tag, tenant, batch, record)`` so per-tenant recovery
    checks need no shared state.  ``populate`` writes each tenant through
    its own Session; ``request_payloads`` yields ``(project, payload)``
    pairs for the HTTP surface.
    """

    tenants: int = 4
    batches_per_tenant: int = 5
    records_per_batch: int = 8
    tag: str = "fanout"
    value_name: str = "metric"
    filename: str = "driver.py"

    def project_names(self) -> list[str]:
        return [f"{self.tag}_{i:02d}" for i in range(self.tenants)]

    @property
    def total_records(self) -> int:
        return self.tenants * self.batches_per_tenant * self.records_per_batch

    def _batch_values(self, tenant: int, batch: int) -> list[str]:
        return [
            f"{self.tag}.p{tenant}.b{batch}.r{r}"
            for r in range(self.records_per_batch)
        ]

    def populate(self, make_session) -> int:
        """Write every tenant via ``make_session(project_name) -> Session``."""
        written = 0
        for tenant, name in enumerate(self.project_names()):
            session = make_session(name)
            tstamp = f"2026-03-01T00:00:00.{tenant:06d}"
            logs = [
                LogRecord.create(
                    projid=session.projid,
                    tstamp=tstamp,
                    filename=self.filename,
                    ctx_id=batch + 1,
                    value_name=self.value_name,
                    value=value,
                )
                for batch in range(self.batches_per_tenant)
                for value in self._batch_values(tenant, batch)
            ]
            session.logs.add_many(logs)
            written += len(logs)
        return written

    def request_payloads(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """``(project, body)`` pairs, interleaved round-robin over tenants."""
        names = self.project_names()
        for batch in range(self.batches_per_tenant):
            for tenant, project in enumerate(names):
                yield project, {
                    "filename": self.filename,
                    "records": [
                        {"name": self.value_name, "value": value, "ctx_id": batch + 1}
                        for value in self._batch_values(tenant, batch)
                    ],
                }
