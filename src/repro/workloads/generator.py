"""Workload generators for benchmarks and stress tests.

Four workload shapes cover the paper's evaluation surface:

* :class:`LoggingWorkload` — raw log-record volume (dataframe query latency, T5),
* :class:`TrainingWorkload` — the Figure 5 training loop at configurable scale
  (record overhead T1, replay speedup T2, checkpoint ablation A1),
* :class:`VersionedScriptWorkload` — a script evolved over many committed
  versions with refactorings (propagation T3/A2, parallel replay T4),
* :class:`PipelineWorkload` — the Make-driven multi-stage pipeline
  (figures F2/F4, incremental build T6),
* :class:`WideDagWorkload` — a synthetic fan-out/fan-in build DAG whose
  stages are pure compute, isolating the parallel scheduler (T7),
* :class:`ServiceWorkload` — many concurrent clients appending through the
  multi-tenant HTTP service layer (service throughput T8),
* :class:`BackfillJobWorkload` — a multi-tenant root whose projects each
  need a hindsight backfill, driven either inline or through the durable
  job queue (job orchestration T11).
"""

from __future__ import annotations

import textwrap
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..config import ProjectConfig
from ..core.session import Session
from ..relational.records import LogRecord, LoopRecord


def populate_logs(
    session: Session,
    *,
    runs: int = 3,
    loops_per_run: int = 10,
    values_per_loop: int = 5,
    filename: str = "train.py",
) -> int:
    """Bulk-insert synthetic log records directly (no script execution).

    Returns the number of log rows written.  Used where benchmarks need a
    large ``logs`` table quickly without paying training costs.
    """
    total = 0
    for run in range(runs):
        tstamp = f"2025-01-{run + 1:02d}T00:00:00.{run:06d}"
        loops = []
        logs = []
        for i in range(loops_per_run):
            ctx_id = i + 1
            loops.append(
                LoopRecord(
                    projid=session.projid,
                    tstamp=tstamp,
                    filename=filename,
                    ctx_id=ctx_id,
                    parent_ctx_id=0,
                    loop_name="epoch",
                    loop_iteration=i,
                    iteration_value=str(i),
                )
            )
            for v in range(values_per_loop):
                logs.append(
                    LogRecord.create(
                        projid=session.projid,
                        tstamp=tstamp,
                        filename=filename,
                        ctx_id=ctx_id,
                        value_name=f"metric_{v}",
                        value=run * 0.1 + i + v * 0.01,
                    )
                )
                total += 1
        session.loops.add_many(loops)
        session.logs.add_many(logs)
    return total


@dataclass
class LoggingWorkload:
    """Pure logging volume: ``runs × loops × values`` log records."""

    runs: int = 3
    loops_per_run: int = 50
    values_per_loop: int = 4

    def populate(self, session: Session) -> int:
        return populate_logs(
            session,
            runs=self.runs,
            loops_per_run=self.loops_per_run,
            values_per_loop=self.values_per_loop,
        )

    @property
    def record_count(self) -> int:
        return self.runs * self.loops_per_run * self.values_per_loop


@dataclass
class TrainingWorkload:
    """The Figure 5 training loop at a configurable scale."""

    samples: int = 240
    features: int = 12
    classes: int = 3
    epochs: int = 4
    batch_size: int = 32
    hidden: int = 32
    seed: int = 0

    def datasets(self):
        from ..ml.dataset import train_test_split
        from ..ml.train import make_synthetic_classification

        data = make_synthetic_classification(
            samples=self.samples, features=self.features, classes=self.classes, seed=self.seed
        )
        return train_test_split(data, test_fraction=0.25, seed=self.seed)

    def run(self, session: Session, use_flor: bool = True):
        """Run one instrumented (or baseline) training pass under ``session``."""
        from ..core.session import active_session
        from ..ml.train import TrainingConfig, train_classifier

        train_data, test_data = self.datasets()
        config = TrainingConfig(
            hidden=self.hidden,
            epochs=self.epochs,
            batch_size=self.batch_size,
            seed=self.seed,
        )
        with active_session(session):
            result = train_classifier(train_data, test_data, config, use_flor_args=use_flor)
            if use_flor:
                session.commit("training run")
        return result


#: Template for the versioned training script; ``{extra_log}`` is the line the
#: developer adds in the latest version (and wishes they had added earlier).
_SCRIPT_TEMPLATE = textwrap.dedent(
    '''
    """Synthetic training script, version {version}."""
    {padding}
    lr = flor.arg("lr", {lr})
    state = {{"w": 0.0, "steps": 0}}
    with flor.checkpointing(state=state):
        for epoch in flor.loop("epoch", range({epochs})):
            for step in flor.loop("step", range({steps})):
                state["w"] += lr / (1 + epoch + step)
                state["steps"] += 1
                flor.log("loss", 1.0 / (1.0 + state["w"]))
    {extra_log}

    def summarize(final_state):
        # Post-training reporting kept across every revision of the script;
        # its lines sit below the loop so absolute line numbers in newer
        # (longer) versions point past the loop body in older versions.
        return {{"w": final_state["w"], "steps": final_state["steps"]}}


    summary = summarize(state)
    flor.log("final_w", summary["w"])
    flor.log("total_steps", summary["steps"])
    '''
).strip()


@dataclass
class VersionedScriptWorkload:
    """A script evolved across ``versions`` committed runs.

    Each version shifts hyperparameters and (optionally) refactors the file
    by adding comment padding, which exercises the propagation engine's
    anchor matching.  ``hindsight_source`` returns the latest source with a
    new per-epoch log statement to backfill.
    """

    versions: int = 4
    epochs: int = 5
    steps: int = 4
    refactor: bool = True
    filename: str = "train.py"

    def source_for_version(self, version: int) -> str:
        padding = ""
        if self.refactor and version > 0:
            padding = "\n".join(
                f"# revision note {i}: tuned hyperparameters after review" for i in range(version * 2)
            ) + "\n"
        return _SCRIPT_TEMPLATE.format(
            version=version,
            padding=padding,
            lr=0.01 * (version + 1),
            epochs=self.epochs,
            steps=self.steps,
            extra_log="",
        )

    def hindsight_source(self) -> str:
        padding = ""
        if self.refactor and self.versions > 1:
            padding = "\n".join(
                f"# revision note {i}: tuned hyperparameters after review"
                for i in range((self.versions - 1) * 2)
            ) + "\n"
        source = _SCRIPT_TEMPLATE.format(
            version=self.versions - 1,
            padding=padding,
            lr=0.01 * self.versions,
            epochs=self.epochs,
            steps=self.steps,
            extra_log="",
        )
        # The statement the developer adds after the fact: per-epoch weight.
        return source.replace(
            'flor.log("loss", 1.0 / (1.0 + state["w"]))',
            'flor.log("loss", 1.0 / (1.0 + state["w"]))\n'
            '            flor.log("weight", state["w"])',
        )

    def record_all_versions(self, session: Session) -> list[str]:
        """Execute and commit every version; returns the version ids."""
        from ..core.api import flor as flor_facade
        from ..core.session import active_session

        vids = []
        root = session.config.root
        session.track(self.filename)
        for version in range(self.versions):
            source = self.source_for_version(version)
            (Path(root) / self.filename).write_text(source)
            namespace = {"__name__": "__main__", "__file__": self.filename, "flor": flor_facade}
            with active_session(session):
                exec(compile(source, self.filename, "exec"), namespace)  # noqa: S102
                vid = session.commit(f"version {version}")
            vids.append(vid)
        return vids


_PIPELINE_MAKEFILE = textwrap.dedent(
    """
    process_pdfs: pdf_demux.py
    \t@python pdf_demux.py
    \t@touch process_pdfs

    featurize: process_pdfs featurize.py
    \t@python featurize.py
    \t@touch featurize

    train: featurize train.py
    \t@python train.py
    \t@touch train

    infer: train infer.py
    \t@python infer.py
    \t@touch infer

    run: featurize infer
    \t@echo "Starting app..."
    """
).strip()


@dataclass
class PipelineWorkload:
    """The demo pipeline as a Makefile plus Python callables per stage."""

    documents: int = 4
    max_pages: int = 6
    epochs: int = 2
    seed: int = 0

    def makefile_text(self) -> str:
        return _PIPELINE_MAKEFILE

    def build_executor(self, session: Session, workdir: Path | str):
        """An executor whose targets are bound to in-process pipeline stages."""
        from ..build.executor import BuildExecutor, CallableRunner
        from ..build.makefile import parse_makefile
        from ..pipeline import PdfPipeline

        pipeline = PdfPipeline(
            session,
            documents=self.documents,
            max_pages=self.max_pages,
            epochs=self.epochs,
            seed=self.seed,
        )
        runner = CallableRunner(
            {
                "process_pdfs": pipeline.process_pdfs,
                "featurize": pipeline.featurize,
                "train": pipeline.train,
                "infer": pipeline.infer,
                "run": pipeline.serve,
            }
        )
        executor = BuildExecutor(
            parse_makefile(self.makefile_text()),
            workdir=workdir,
            runner=runner,
            session=session,
        )
        return executor, pipeline


@dataclass
class WideDagWorkload:
    """A fan-out/fan-in build DAG: ``width`` independent stages, one goal.

    Every ``stage_NN`` target depends on a shared ``gen.py`` source and the
    ``all`` goal fans them back in.  Stages burn ``stage_seconds`` of wall
    clock in a callable that sleeps (I/O-shaped work, releasing the GIL), so
    the workload isolates scheduler behaviour: a perfect ``jobs=N`` executor
    finishes in ``width / N`` stage-times.  Used by the T7 benchmark to
    demonstrate parallel speedup.
    """

    width: int = 12
    stage_seconds: float = 0.02

    def stage_names(self) -> list[str]:
        return [f"stage_{i:02d}" for i in range(self.width)]

    def makefile_text(self) -> str:
        lines = [f"all: {' '.join(self.stage_names())}", "\t@echo all stages built", ""]
        for name in self.stage_names():
            lines.append(f"{name}: gen.py")
            lines.append(f"\t@touch {name}")
            lines.append("")
        return "\n".join(lines)

    def build_executor(self, workdir: Path | str, *, session: Session | None = None, jobs: int = 1):
        """An executor whose stages sleep for ``stage_seconds`` in-process."""
        import time as _time

        from ..build.executor import BuildExecutor, CallableRunner
        from ..build.makefile import parse_makefile

        def make_stage(name: str):
            def stage() -> str:
                _time.sleep(self.stage_seconds)
                return name

            return stage

        callables = {name: make_stage(name) for name in self.stage_names()}
        callables["all"] = lambda: None
        return BuildExecutor(
            parse_makefile(self.makefile_text()),
            workdir=workdir,
            runner=CallableRunner(callables),
            session=session,
            jobs=jobs,
        )


@dataclass
class ServiceLoadReport:
    """Outcome of one :class:`ServiceWorkload` run."""

    requests: int
    records: int
    seconds: float
    latencies: list[float] = field(default_factory=list, repr=False)
    errors: int = 0
    #: ``429`` responses honored with backoff — deliberate admission-control
    #: throttling, reported separately from failures.
    throttles: int = 0

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.seconds if self.seconds else float("inf")

    @property
    def records_per_second(self) -> float:
        return self.records / self.seconds if self.seconds else float("inf")

    def percentile(self, p: float) -> float:
        """Latency percentile ``p`` in [0, 100] (nearest-rank) in seconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]


@dataclass
class ServiceWorkload:
    """Concurrent append traffic against the multi-tenant service layer.

    ``clients`` threads each issue ``requests_per_client`` bulk-append
    requests of ``records_per_request`` log records, spread round-robin
    over ``projects`` tenants.  Drive it with any client exposing the
    :class:`~repro.webapp.framework.TestClient` ``post`` signature — the
    in-process test client for hermetic benchmarks, or :meth:`run_http`
    against a live ``repro serve`` for end-to-end runs.  Per-request
    latencies are collected so the T8/T14 benchmarks can report p50/p99
    alongside throughput.
    """

    clients: int = 8
    requests_per_client: int = 25
    records_per_request: int = 1
    projects: int = 1
    value_name: str = "metric"
    filename: str = "load.py"
    #: ``429`` handling: retry up to ``max_retries`` times per request with
    #: capped exponential backoff, honoring the server's ``Retry-After``
    #: hint when it is longer than the schedule says.  A throttle is not a
    #: failure — it is the admission layer doing its job — so throttled
    #: attempts count in ``ServiceLoadReport.throttles``, and only a request
    #: that exhausts its retries still throttled (or fails outright) counts
    #: as an error.
    max_retries: int = 6
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def project_names(self) -> list[str]:
        return [f"tenant_{i:02d}" for i in range(self.projects)]

    @property
    def total_records(self) -> int:
        return self.clients * self.requests_per_client * self.records_per_request

    @staticmethod
    def _retry_after(headers) -> float:
        """The ``Retry-After`` hint in seconds (0 when absent/garbled)."""
        for key, value in (headers or {}).items():
            if key.lower() == "retry-after":
                try:
                    return max(float(value), 0.0)
                except (TypeError, ValueError):
                    return 0.0
        return 0.0

    def run(self, client) -> ServiceLoadReport:
        """Drive ``client`` from ``clients`` threads; returns the report."""
        names = self.project_names()
        latencies: list[list[float]] = [[] for _ in range(self.clients)]
        errors = [0] * self.clients
        throttles = [0] * self.clients
        barrier = threading.Barrier(self.clients + 1)

        def worker(worker_id: int) -> None:
            project = names[worker_id % len(names)]
            url = f"/projects/{project}/logs"
            barrier.wait()
            for i in range(self.requests_per_client):
                payload = {
                    "filename": self.filename,
                    "records": [
                        {
                            "name": self.value_name,
                            "value": worker_id + i * 0.001 + j * 0.000001,
                            "ctx_id": i,
                        }
                        for j in range(self.records_per_request)
                    ],
                }
                attempt = 0
                while True:
                    started = time.perf_counter()
                    try:
                        response = client.post(url, json_body=payload)
                    except Exception:  # noqa: BLE001 - a dead worker must not
                        # silently deflate the measured request count
                        latencies[worker_id].append(time.perf_counter() - started)
                        errors[worker_id] += 1
                        break
                    if response.status == 429 and attempt < self.max_retries:
                        # Throttled: honor the server's hint, floored by the
                        # exponential schedule and capped so one slow tenant
                        # never parks a thread for a whole quota window.
                        throttles[worker_id] += 1
                        delay = min(
                            self.backoff_cap,
                            max(
                                self._retry_after(response.headers),
                                self.backoff_base * (2**attempt),
                            ),
                        )
                        time.sleep(delay)
                        attempt += 1
                        continue
                    # Only the admitted (or terminally failed) attempt's
                    # latency is recorded — backoff sleeps are not service
                    # latency.
                    latencies[worker_id].append(time.perf_counter() - started)
                    if not response.ok:
                        errors[worker_id] += 1
                    break

        threads = [
            threading.Thread(target=worker, args=(worker_id,), daemon=True)
            for worker_id in range(self.clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - started
        return ServiceLoadReport(
            requests=self.clients * self.requests_per_client,
            records=self.total_records,
            seconds=seconds,
            latencies=[latency for bucket in latencies for latency in bucket],
            errors=sum(errors),
            throttles=sum(throttles),
        )

    def run_http(self, base_url: str, *, timeout: float = 60.0) -> ServiceLoadReport:
        """Drive a live server over keep-alive HTTP.

        :class:`~repro.fleet.transport.HttpClient` keeps one persistent
        connection per thread, so each of the ``clients`` workload threads
        reuses a single socket for all of its requests instead of paying
        connection setup per request.
        """
        from ..fleet.transport import HttpClient

        with HttpClient(base_url, timeout=timeout) as client:
            return self.run(client)


@dataclass
class BackfillJobWorkload:
    """A service root of ``projects`` tenants, each wanting a backfill.

    Every tenant gets its own committed version history (delegating to
    :class:`VersionedScriptWorkload`) that never logged ``weight``; the
    hindsight source adds the per-epoch statement.  The T11 benchmark
    drives the same work-list two ways — inline serial
    ``HindsightEngine.backfill`` calls versus one durable job per tenant
    drained by a :class:`~repro.jobs.JobRunner` pool — and the crash
    scenario interrupts a job mid-backfill to measure that resume replays
    only the versions without a progress checkpoint.
    """

    projects: int = 2
    versions: int = 3
    epochs: int = 4
    steps: int = 2
    refactor: bool = True
    filename: str = "train.py"

    def script_workload(self) -> VersionedScriptWorkload:
        return VersionedScriptWorkload(
            versions=self.versions,
            epochs=self.epochs,
            steps=self.steps,
            refactor=self.refactor,
            filename=self.filename,
        )

    def project_names(self) -> list[str]:
        return [f"tenant_{i:02d}" for i in range(self.projects)]

    @property
    def expected_new_records(self) -> int:
        """Backfilled ``weight`` rows per project (one per epoch × step × version)."""
        return self.versions * self.epochs * self.steps

    def hindsight_source(self) -> str:
        return self.script_workload().hindsight_source()

    def populate(self, root: Path | str) -> dict[str, list[str]]:
        """Create every tenant under ``root``; returns ``{project: [vids]}``."""
        root = Path(root)
        vids: dict[str, list[str]] = {}
        workload = self.script_workload()
        for name in self.project_names():
            with Session(ProjectConfig(root / name, name)) as session:
                vids[name] = workload.record_all_versions(session)
        return vids

    def job_payload(self) -> dict:
        return {"filename": self.filename, "new_source": self.hindsight_source()}

    def submit_all(self, store, **submit_kwargs) -> list[int]:
        """Enqueue one backfill job per tenant; returns the job ids."""
        payload = self.job_payload()
        return [
            store.submit(name, "backfill", payload, **submit_kwargs).id
            for name in self.project_names()
        ]

    def backfill_inline(self, root: Path | str) -> int:
        """The baseline: serial in-process backfill per tenant (no jobs).

        Returns the total number of newly materialized log records.
        """
        from ..core.hindsight import HindsightEngine

        root = Path(root)
        new_source = self.hindsight_source()
        total = 0
        for name in self.project_names():
            with Session(ProjectConfig(root / name, name)) as session:
                report = HindsightEngine(session).backfill(self.filename, new_source=new_source)
                total += report.new_records
        return total
