"""Sharded database pool: one SQLite database per project, LRU-capped.

Multi-tenant FlorDB keeps tenants physically separate — each project name
maps to ``<root>/<name>/.flor/flor.db`` — so one noisy tenant never
contends on another tenant's database file and a shard can be backed up or
dropped independently (the "one metadata home per project" layout of
:mod:`repro.config`, multiplied).

Open handles are cached in an :class:`~collections.OrderedDict` used as an
LRU: :meth:`DatabasePool.get` moves the shard to the hot end, and opening a
shard beyond ``capacity`` closes the coldest one.  Closing flushes the
shard's ingestion queue first, so eviction never loses acknowledged
records — a re-opened shard sees everything that was appended before
eviction (exercised by the pool tests).

Concurrency model: the pool dict is guarded by a pool-level lock; each
shard carries its own :class:`threading.RLock` that request handlers hold
for the duration of one operation.  Eviction also takes the shard lock, so
an in-flight request finishes before its shard closes.  A handler that
loses the race (its shard is closed between lookup and lock acquisition)
observes ``shard.closed`` and retries the lookup — see
:meth:`DatabasePool.checkout`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import count
from pathlib import Path
from typing import Callable, Iterator

from ..config import ProjectConfig
from ..core.session import Session
from ..query.engine import QueryEngine
from .ingest import IngestionQueue

#: Filename stamped on records that arrive without one; mirrors how the
#: feedback webapp stamps ``app.py`` on human-in-the-loop records.
SERVICE_FILENAME = "service"


@dataclass
class PoolStats:
    """Counters describing a pool's lifetime behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    reopens: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "reopens": self.reopens,
        }


class ShardReplicas:
    """Read replicas for one shard: snapshot handles plus warm query engines.

    Wraps a :class:`~repro.storage.replica.ReplicatedDatabase` over the
    shard session's primary handle and keeps one :class:`QueryEngine` (with
    its own pivot-view cache) per replica.  The replica layer's ``on_sync``
    callback bumps the matching engine's cache generation — SQLite's backup
    API rewrites pages underneath the replica connection without advancing
    its ``write_version``, so without this hook the per-replica materialized
    views would serve stale fast hits forever.

    Reads here deliberately do NOT flush the shard's ingestion queue: the
    whole point of replica routing is bounded staleness instead of
    read-your-writes, and every response carries the replica's ``logs.seq``
    watermark so clients can see exactly how fresh their read was.
    """

    def __init__(self, session: Session, *, count: int, max_staleness: float):
        from ..storage.replica import ReplicatedDatabase

        self._engines: list[QueryEngine] = []
        self.replicated = ReplicatedDatabase(
            session.db,
            replicas=count,
            max_staleness=max_staleness,
            on_sync=self._on_sync,
        )
        self._engines = [
            QueryEngine(replica.db, session.projid)
            for replica in self.replicated.replicas
        ]

    def _on_sync(self, index: int) -> None:
        if self._engines:
            self._engines[index].note_write()

    def dataframe(self, names, *, latest: bool = False):
        """Replica-routed pivot read; returns ``(DataFrame, watermark)``."""
        with self.replicated.checkout_replica() as replica:
            frame = self._engines[replica.index].dataframe(*names, latest=latest)
            return frame, replica.watermark

    def sql(self, query: str, names=(), params=()):
        """Replica-routed SQL read; returns ``(DataFrame, watermark)``."""
        with self.replicated.checkout_replica() as replica:
            frame = self._engines[replica.index].sql(query, names, params)
            return frame, replica.watermark

    def refresh(self) -> None:
        self.replicated.refresh()

    def close(self) -> None:
        self.replicated.close()


#: Process-wide shard incarnation numbers.  Flush statistics (including the
#: dropped-row counters durability clients watch) reset when a shard is
#: evicted and reopened; the incarnation lets an observer distinguish "no
#: drops" from "fresh handle, history unknown".
_incarnations = count(1)


class ProjectShard:
    """One open tenant: a session, its ingestion queue and a lock."""

    def __init__(
        self,
        name: str,
        session: Session,
        queue: IngestionQueue | None = None,
        replicas: ShardReplicas | None = None,
    ):
        self.name = name
        self.session = session
        self.queue = queue
        self.replicas = replicas
        self.incarnation = next(_incarnations)
        self.lock = threading.RLock()
        self.closed = False

    def flush(self) -> int:
        """Drain the ingestion queue (if any) and the session's buffers."""
        with self.lock:
            flushed = self.queue.flush() if self.queue is not None else 0
            self.session.flush()
            return flushed

    def close(self) -> None:
        """Flush pending records, then release the database handle."""
        with self.lock:
            if self.closed:
                return
            self.flush()
            if self.replicas is not None:
                self.replicas.close()
            self.session.close()
            self.closed = True


class DatabasePool:
    """An LRU-capped cache of :class:`ProjectShard` handles under one root.

    Parameters
    ----------
    root:
        Directory holding one project subdirectory per tenant.
    capacity:
        Maximum number of simultaneously open shards (SQLite handles).
    flush_size / flush_interval:
        Batching knobs for each shard's
        :class:`~repro.service.ingest.IngestionQueue`.
    flush_mode:
        ``"async"`` (default) or ``"sync"``, forwarded to each shard's
        :class:`~repro.core.session.Session`.  The shard's ingestion queue
        reuses the session's flusher, so with the default one background
        writer per shard serves both the batched ingest path and the
        session's own record path.
    backend:
        ``"sqlite"`` (default) stores each shard at
        ``<root>/<name>/.flor/flor.db``; ``"memory"`` builds shards on
        :mod:`repro.storage.memory` backends — zero disk I/O, with shard
        state retained across LRU evictions inside the pool (an evicted
        in-memory shard would otherwise lose its data on close).
    replicas:
        When > 0, each shard carries that many snapshot-shipped read
        replicas (:class:`ShardReplicas`); the service layer routes
        ``dataframe``/``sql`` reads to them with bounded staleness while
        writes stay on the single-owner primary.
    replica_staleness:
        Seconds a replica snapshot may lag before a read re-syncs it.
    shard_factory:
        ``(name) -> ProjectShard`` hook replacing the default construction
        entirely (mainly for tests).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  The pool records its
        own hit/miss/evict churn and hands the registry to each shard's
        flusher so flush latency aggregates across tenants.
    on_ingest:
        Optional ``(tenant, rows) -> None`` hook, invoked after a shard's
        ingestion batch *commits* (piggybacking on the flusher's
        ``on_written`` ordering).  The service layer points this at its
        :class:`~repro.obs.TailBroker` so tail subscribers wake only for
        rows a backfill query can already see.
    """

    BACKENDS = ("sqlite", "memory")

    def __init__(
        self,
        root: Path | str,
        *,
        capacity: int = 8,
        flush_size: int = 64,
        flush_interval: float | None = 0.5,
        flush_mode: str | None = None,
        backend: str = "sqlite",
        replicas: int = 0,
        replica_staleness: float = 0.25,
        shard_factory: Callable[[str], ProjectShard] | None = None,
        metrics=None,
        on_ingest: Callable[[str, int], None] | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown pool backend: {backend!r}")
        if replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        self.root = Path(root)
        self.capacity = capacity
        self.flush_size = flush_size
        self.flush_interval = flush_interval
        self.flush_mode = flush_mode
        self.backend = backend
        self.replicas = replicas
        self.replica_staleness = replica_staleness
        # backend="memory": shard stores survive LRU eviction here, keyed by
        # tenant name, so a reopened shard sees its full history exactly like
        # a reopened SQLite file would.
        self._retained: dict[str, tuple] = {}
        self._factory = shard_factory or self._default_factory
        self._shards: "OrderedDict[str, ProjectShard]" = OrderedDict()
        self._building: dict[str, threading.Event] = {}
        # Names whose evicted shard is still closing.  A lookup blocks on
        # this the same way it blocks on _building: were the name rebuilt
        # while the old incarnation's close was in flight, a failed close
        # could no longer reinstate the shard — orphaning its queued,
        # already-acknowledged records.
        self._closing: dict[str, threading.Event] = {}
        # Dropped-row counts banked from closed incarnations, per tenant.
        # A shard's flusher counters die with it; summing the bank with the
        # live counter gives each tenant a drop total that is monotone for
        # the pool's lifetime (served by the /stats endpoint).
        self._dropped_banked: dict[str, int] = {}
        self._lock = threading.RLock()
        self._ever_opened: set[str] = set()
        self.stats = PoolStats()
        self.metrics = metrics
        self.on_ingest = on_ingest
        # Resolve the hot-path counters once; get() runs per request and
        # should not pay a registry lookup per hit.
        self._m_hits = metrics.counter("pool.hits") if metrics is not None else None
        self._m_misses = metrics.counter("pool.misses") if metrics is not None else None
        self._m_evictions = metrics.counter("pool.evictions") if metrics is not None else None
        self._m_dropped = metrics.counter("pool.dropped_rows") if metrics is not None else None

    def _default_factory(self, name: str) -> ProjectShard:
        config = ProjectConfig(self.root / name, name)
        if self.backend == "memory":
            from ..storage.memory import MemoryBlobStore, MemoryRelationalStore
            from ..versioning.repository import Repository

            retained = self._retained.get(name)
            if retained is None:
                db = MemoryRelationalStore()
                repository = Repository(None, config.root, store=MemoryBlobStore())
                self._retained[name] = (db, repository)
            else:
                db, repository = retained
            session = Session(
                config,
                db=db,
                repository=repository,
                default_filename=SERVICE_FILENAME,
                flush_mode=self.flush_mode,
            )
        else:
            session = Session(
                config, default_filename=SERVICE_FILENAME, flush_mode=self.flush_mode
            )
        # The session's query engine carries the shard's materialized pivot
        # views (one cache per shard, warm across requests).  The ingestion
        # queue writes straight to the database, so each of its flushed
        # batches must bump the cache generation the same way Session.flush
        # does — after the batch's transaction commits, which the flusher's
        # on_written hook guarantees.  The engine is resolved here, once,
        # so the callback never races its lazy construction.
        engine = session.query
        if self.metrics is not None:
            session.flusher.metrics = self.metrics
            engine.cache.metrics = self.metrics

        def _on_flush(count: int, _name: str = name, _engine=engine) -> None:
            _engine.note_write()
            if self.on_ingest is not None:
                self.on_ingest(_name, count)

        queue = IngestionQueue(
            session.db,
            flush_size=self.flush_size,
            flush_interval=self.flush_interval,
            on_flush=_on_flush,
            flusher=session.flusher,
        )
        shard_replicas = None
        if self.replicas > 0:
            shard_replicas = ShardReplicas(
                session, count=self.replicas, max_staleness=self.replica_staleness
            )
        return ProjectShard(name, session, queue, replicas=shard_replicas)

    # ----------------------------------------------------------------- lookup
    def get(self, name: str) -> ProjectShard:
        """Return the shard for ``name``, opening (and maybe evicting) as needed."""
        while True:
            with self._lock:
                shard = self._shards.get(name)
                if shard is not None:
                    self._shards.move_to_end(name)
                    self.stats.hits += 1
                    if self._m_hits is not None:
                        self._m_hits.inc()
                    return shard
                pending = self._building.get(name) or self._closing.get(name)
                if pending is None:
                    opening = threading.Event()
                    self._building[name] = opening
                    self.stats.misses += 1
                    if self._m_misses is not None:
                        self._m_misses.inc()
                    if name in self._ever_opened:
                        self.stats.reopens += 1
                    self._ever_opened.add(name)
                    break
            # Another thread is opening (or closing) this shard; wait and
            # re-check rather than racing a duplicate handle on the same
            # database file.
            pending.wait()
        # Construct outside the pool lock: opening a shard touches the disk
        # (directory layout, SQLite schema) and must not block lookups of
        # unrelated hot shards.
        evicted: list[ProjectShard] = []
        try:
            shard = self._factory(name)
        except BaseException:
            with self._lock:
                self._building.pop(name, None)
            opening.set()
            raise
        with self._lock:
            self._shards[name] = shard
            self._building.pop(name, None)
            while len(self._shards) > self.capacity:
                cold_name, cold = self._shards.popitem(last=False)
                self.stats.evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
                self._closing[cold_name] = threading.Event()
                evicted.append(cold)
        opening.set()
        for cold in evicted:
            self._close_evicted(cold)
        return shard

    def _close_evicted(self, shard: ProjectShard) -> None:
        """Close a shard evicted from the cache without losing records.

        If the close fails (the flush raised), the shard still holds its
        queued records, so it is reinstated into the cache rather than
        orphaned — acknowledged appends stay reachable and the flush is
        retried on the next eviction or :meth:`close`.  The ``_closing``
        reservation taken when the shard was popped guarantees the name was
        not concurrently rebuilt, so reinstating always succeeds.  On a
        successful close the incarnation's dropped-row count is banked so
        the tenant's drop total stays monotone across reopens.
        """
        try:
            shard.close()
        except Exception:
            with self._lock:
                self._shards[shard.name] = shard
                self._shards.move_to_end(shard.name, last=False)
                self.stats.evictions -= 1
                event = self._closing.pop(shard.name, None)
            if event is not None:
                event.set()
            return
        with self._lock:
            self._bank_dropped_locked(shard)
            event = self._closing.pop(shard.name, None)
        if event is not None:
            event.set()

    def _bank_dropped_locked(self, shard: ProjectShard) -> None:
        flusher = getattr(shard.session, "flusher", None)
        if flusher is not None and flusher.stats.dropped_rows:
            self._dropped_banked[shard.name] = (
                self._dropped_banked.get(shard.name, 0) + flusher.stats.dropped_rows
            )
            if self._m_dropped is not None:
                self._m_dropped.inc(flusher.stats.dropped_rows)

    def dropped_rows_total(self, name: str) -> int:
        """Rows dropped by this tenant's writers over the pool's lifetime.

        Monotone while the pool lives: banked counts from closed
        incarnations plus the live shard's counter.  Durability clients
        compare this across a read barrier — unchanged means no
        acknowledged row was shed between the two looks (the chaos
        harness's seal protocol; see ``repro.testing``).
        """
        with self._lock:
            total = self._dropped_banked.get(name, 0)
            shard = self._shards.get(name)
        if shard is not None:
            flusher = getattr(shard.session, "flusher", None)
            if flusher is not None:
                total += flusher.stats.dropped_rows
        return total

    @contextmanager
    def checkout(self, name: str) -> Iterator[ProjectShard]:
        """Yield the shard for ``name`` with its lock held.

        Retries the lookup when the shard was evicted between :meth:`get`
        and lock acquisition, so callers never operate on a closed handle.
        """
        while True:
            shard = self.get(name)
            with shard.lock:
                if shard.closed:
                    continue
                yield shard
                return

    # ------------------------------------------------------------- lifecycle
    def open_shards(self) -> list[str]:
        """Names currently holding an open handle, coldest first."""
        with self._lock:
            return list(self._shards)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._shards

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def evict(self, name: str) -> bool:
        """Close one shard now (flushing first); True if it was open."""
        with self._lock:
            shard = self._shards.pop(name, None)
            if shard is not None:
                self.stats.evictions += 1
                self._closing[name] = threading.Event()
        if shard is None:
            return False
        try:
            shard.close()
        except BaseException:
            # Same contract as LRU eviction: a failed close reinstates the
            # shard (records stay reachable) — but here the failure also
            # propagates, since the caller asked for this specific close.
            with self._lock:
                self._shards[shard.name] = shard
                self._shards.move_to_end(shard.name, last=False)
                self.stats.evictions -= 1
                event = self._closing.pop(name, None)
            if event is not None:
                event.set()
            raise
        with self._lock:
            self._bank_dropped_locked(shard)
            event = self._closing.pop(name, None)
        if event is not None:
            event.set()
        return True

    def flush_all(self) -> int:
        """Flush every open shard; returns total records written."""
        with self._lock:
            shards = list(self._shards.values())
        return sum(shard.flush() for shard in shards)

    def close(self) -> None:
        """Flush and close every open shard."""
        with self._lock:
            shards = list(self._shards.values())
            self._shards.clear()
        for shard in shards:
            shard.close()
