"""HTTP surface of the multi-tenant FlorDB service.

Routes (all JSON; ``<name>`` is a tenant/project name):

* ``POST /projects/<name>/logs`` — bulk-append log and loop records.  The
  body is ``{"records": [...], "loops": [...], "filename": ...}``; records
  are acknowledged with ``202`` once enqueued — ``"flushed": true`` in the
  response means the batch was *handed to the shard's writer* (inline with
  ``flush_mode="sync"``, to the background flusher otherwise), not that it
  is already durable.  Durability comes from the next commit or read, both
  of which drain the writer first.
* ``POST /projects/<name>/commit`` — flush the shard's queue and run
  ``flor.commit`` (snapshot tracked files, record the ``ts2vid`` epoch).
* ``GET /projects/<name>/dataframe?names=a,b[&latest=1]`` — the pivoted
  view of the named log values, as ``{"columns": ..., "records": ...}``.
* ``GET /projects/<name>/sql?q=SELECT...[&names=a,b]`` — read-only SQL via
  :func:`repro.relational.sql.run_sql`; anything but SELECT/WITH is a 400.
* ``GET /projects/<name>/stats`` — per-shard row counts and queue stats.
* ``GET /projects/<name>/tail`` — the live observability plane's tenant
  stream: committed log rows as server-sent events, resumable via
  ``Last-Event-ID``/``?since_seq=`` (see :mod:`repro.service.streams` and
  docs/observability.md).
* ``GET /service/telemetry`` — the metrics registry as one JSON snapshot,
  or a periodic SSE feed with ``?stream=1``.
* ``GET /jobs/<id>/tail`` — a job's event trail as SSE, ending with a
  ``done`` event at a terminal state (``repro jobs watch`` consumes it).
* ``GET /service/stats`` and ``GET /healthz`` — pool-level introspection.
  When the process runs as a fleet worker (``repro serve --workers N``
  spawns it with a :class:`~repro.fleet.worker.WorkerAgent`), the stats
  carry a ``worker`` block: id, pid, owned-shard count, heartbeat age.
* ``POST /fleet/drain`` — flush and seal (close) every open shard; the
  fleet supervisor's scale-down hand-off (see :mod:`repro.fleet`).

Multi-tenant QoS (:mod:`repro.qos`) rides the tenant-facing routes: when
the service runs with admission control enabled (``repro serve --qos`` or
``--qos-policy FILE``), every append/commit/read/job-submit is checked
against the tenant's policy first — over-limit requests are answered
``429`` with a computed ``Retry-After`` header (never queued), appends
larger than the tenant's whole byte quota are ``413``, and the policy
table itself is administered over:

* ``GET /service/policy`` — the full rule table (ordered rules, default,
  generation, whether enforcement is on).
* ``GET/PUT/DELETE /service/policy/<selector>`` — one rule; PUT rejects
  shadowed or contradictory rules with ``409`` and a structured
  ``detail`` (see :class:`~repro.errors.PolicyConflictError`).

Durable background jobs (:mod:`repro.jobs`) ride the same surface — a
backfill that replays dozens of versions must not block an HTTP request or
die with a worker:

* ``POST /projects/<name>/jobs/backfill`` — persist a backfill (or, with
  ``"kind": "replay"``, a plain replay) job and return ``202`` immediately;
  the body carries ``filename`` plus optional ``new_source``, ``versions``,
  ``plan``, ``priority`` and ``max_attempts``.
* ``GET /jobs`` — recent jobs (``?project=``/``?state=``/``?limit=``).
* ``GET /jobs/<id>`` — the job's durable state-machine row.
* ``GET /jobs/<id>/events`` — its append-only trail (state transitions and
  per-version progress), incrementally via ``?after=<seq>``.
* ``POST /jobs/<id>/cancel`` and ``POST /jobs/<id>/retry``.

Submission is durable in the host-level jobs database; execution happens in
the :class:`~repro.jobs.JobRunner` workers embedded by ``repro serve
--job-workers N`` (or any external runner sharing the root).

Reads flush before querying, so a client always reads its own writes even
when its records are still queued.  Handlers run under the shard's lock
(see :mod:`repro.service.pool`), which makes the service safe to drive
from many threads — the shape the T8 benchmark measures.  Dataframe and
SQL reads are served by the shard's :class:`~repro.query.QueryEngine`:
the pivoted view stays materialized across requests, ingestion flushes
invalidate it via generation counters, and only the appended delta is
merged on the next read (benchmark T9 measures the effect).
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Any

from ..config import FLOR_DIR_NAME
from ..errors import (
    DatabaseError,
    JobError,
    JobNotFoundError,
    PolicyConflictError,
    QosError,
    ReproError,
)
from ..jobs import JOB_KINDS, JOBS_DB_FILENAME, KIND_BACKFILL, JobStore
from ..obs import MetricsRegistry, TailBroker
from ..qos import AdmissionController, PolicyStore, rule_from_payload
from ..relational.records import JOB_STATES, LogRecord, LoopRecord
from ..relational.schema import TABLES
from ..webapp.framework import HttpError, JsonResponse, Request, WebApp
from .pool import SERVICE_FILENAME, DatabasePool, ProjectShard
from .stats import service_stats_payload, shard_stats_payload, telemetry_payload
from .streams import (
    DEFAULT_KEEPALIVE,
    clamp_keepalive,
    job_tail_response,
    project_tail_response,
    telemetry_stream_response,
)

#: Tenant names must be plain path-safe tokens (no separators, no ``..``).
_PROJECT_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class FlorService:
    """Many concurrent clients, one FlorDB host directory.

    Parameters
    ----------
    root:
        Directory holding one project subdirectory per tenant.
    pool_capacity:
        Maximum simultaneously open shards (LRU beyond that).
    flush_size / flush_interval:
        Batched-ingestion knobs, passed to each shard's
        :class:`~repro.service.ingest.IngestionQueue`.  ``flush_size=1``
        disables batching (every append is its own transaction).
    flush_mode:
        ``"async"`` (default) or ``"sync"`` record path per shard; see
        :class:`~repro.service.pool.DatabasePool`.
    backend:
        ``"sqlite"`` (default) or ``"memory"``; see
        :class:`~repro.service.pool.DatabasePool`.
    replicas:
        When > 0, ``dataframe``/``sql`` reads are routed round-robin to
        that many snapshot read replicas per shard.  Replica reads do not
        flush the ingestion queue — they trade read-your-writes for
        bounded staleness, and every response carries the serving
        replica's ``logs.seq`` ``watermark`` so clients can reason about
        freshness.  A client that needs read-your-writes passes
        ``?primary=1`` to bypass the replicas for one request.
    replica_staleness:
        Seconds a replica may lag before a read re-ships a snapshot.
    shard_factory:
        ``(name) -> ProjectShard`` hook forwarded to the pool, replacing
        default shard construction entirely — the chaos harness uses it to
        build shards over fault-wrapped stores
        (:func:`repro.testing.soak.chaos_shard_factory`).
    """

    def __init__(
        self,
        root: Path | str,
        *,
        pool_capacity: int = 8,
        flush_size: int = 64,
        flush_interval: float | None = 0.5,
        flush_mode: str | None = None,
        backend: str = "sqlite",
        replicas: int = 0,
        replica_staleness: float = 0.25,
        shard_factory=None,
        job_store: JobStore | None = None,
        qos: bool = False,
        qos_policy_file: Path | str | None = None,
        admission_refresh: float = 2.0,
        tail_max_subscribers: int = 512,
        tail_max_lag: int = 100_000,
    ):
        self.root = Path(root)
        self.flush_size = flush_size
        self.flush_interval = flush_interval
        self.flush_mode = flush_mode
        self.replicas = replicas
        #: The observability plane: one metrics registry and one tail
        #: broker per service process.  Hot paths receive the registry
        #: (the pool hands it to each shard's flusher and pivot cache) and
        #: the pool's post-commit ``on_ingest`` hook feeds the broker, so
        #: a tail subscriber woken by a publish can already read the rows.
        self.metrics = MetricsRegistry()
        self.tail = TailBroker(
            max_subscribers=tail_max_subscribers, max_lag=tail_max_lag
        )
        self.pool = DatabasePool(
            self.root,
            capacity=pool_capacity,
            flush_size=flush_size,
            flush_interval=flush_interval,
            flush_mode=flush_mode,
            backend=backend,
            replicas=replicas,
            replica_staleness=replica_staleness,
            shard_factory=shard_factory,
            metrics=self.metrics,
            on_ingest=self._publish_ingest,
        )
        self._job_store = job_store
        self._owns_job_store = job_store is None
        self._jobs_lock = threading.Lock()
        self._policy_store: PolicyStore | None = None
        self._policy_lock = threading.Lock()
        #: Admission control (repro.qos) — ``None`` unless QoS is enabled,
        #: and the hot paths check exactly that one attribute, so a service
        #: without QoS pays nothing (the T15 benchmark asserts no T8-shape
        #: regression with QoS off).  Enabled by ``qos=True`` or by passing
        #: a policy file (``repro serve --qos-policy``), whose rules are
        #: loaded — with full conflict checking — before serving starts.
        self.admission: AdmissionController | None = None
        if qos_policy_file is not None:
            self._policy_store = PolicyStore.load_file(self.root, qos_policy_file)
            qos = True
        if qos:
            self.admission = AdmissionController(
                self.policies, refresh_interval=admission_refresh
            )
            self.admission.metrics = self.metrics
        self._app: WebApp | None = None
        #: Set by the CLI when this service runs as one worker of a fleet
        #: (:mod:`repro.fleet`); ``/service/stats`` then carries the worker
        #: identity block so the router's aggregated view is debuggable per
        #: process.  Duck-typed (``id``/``info()``) to keep the service
        #: layer import-free of the fleet package.
        self.worker_agent = None

    def _publish_ingest(self, name: str, count: int) -> None:
        """Pool post-commit hook → tail wakeups for the tenant's stream."""
        self.tail.publish(f"project:{name}", count)

    def _publish_job_event(self, job_id: int) -> None:
        """Job-store post-commit hook → wakeups for the job's tail stream."""
        self.tail.publish(f"job:{job_id}")

    def project_exists(self, name: str) -> bool:
        """Whether ``name`` is an open shard or has a ``.flor`` home on disk."""
        return name in self.pool or (self.root / name / FLOR_DIR_NAME).is_dir()

    @property
    def jobs(self) -> JobStore:
        """The host-level durable job store (``<root>/.flor-jobs.db``), lazily
        opened — a service that never touches jobs never creates the file.
        Handlers run on ThreadingHTTPServer threads, so the first-open is
        locked: exactly one store (and SQLite handle) per service."""
        with self._jobs_lock:
            if self._job_store is None:
                self._job_store = JobStore.open(self.root)
            if self._job_store.metrics is None:
                self._job_store.metrics = self.metrics
                self._job_store.on_event = self._publish_job_event
            return self._job_store

    @property
    def policies(self) -> PolicyStore:
        """The host-level QoS policy store (``<root>/.flor-qos.db``), lazily
        opened so the policy admin routes work — and ``repro policy set``
        prepared rules are visible — even on a service running with
        enforcement off."""
        with self._policy_lock:
            if self._policy_store is None:
                self._policy_store = PolicyStore.open(self.root)
            return self._policy_store

    def job_counts(self) -> dict[str, int]:
        """Per-state job counts without forcing the store into existence."""
        if self._job_store is None and not (self.root / JOBS_DB_FILENAME).exists():
            return {state: 0 for state in JOB_STATES}
        return self.jobs.counts()

    def close(self) -> None:
        """Flush and close every open shard (and the job store, if opened)."""
        self.tail.close()
        try:
            self.pool.close()
        finally:
            if self._job_store is not None and self._owns_job_store:
                self._job_store.close()
                self._job_store = None
            if self._policy_store is not None:
                self._policy_store.close()
                self._policy_store = None

    # ------------------------------------------------------------------- app
    def app(self) -> WebApp:
        """The (cached) :class:`~repro.webapp.framework.WebApp` for this host."""
        if self._app is None:
            self._app = create_app(self)
        return self._app


def validate_project_name(name: str) -> str:
    """Reject tenant names that could escape the root (shared with the
    fleet router, which must refuse them *before* hashing a placement)."""
    if ".." in name or not _PROJECT_NAME_RE.match(name):
        raise HttpError(400, f"invalid project name: {name!r}")
    return name


_validated_name = validate_project_name


def enforce_admission(
    admission: AdmissionController | None, tenant: str, nbytes: int = 0
) -> None:
    """Run one admission check and raise its HTTP mapping when denied.

    Shared by the single-process service and the fleet router (which
    enforces *instead of* its workers — exactly one charge per request).
    Throttles become ``429`` and hard rejects ``413``, both carrying a
    ``Retry-After`` header (decimal seconds) and a structured ``detail``
    body — never silent queuing.
    """
    if admission is None:
        return
    decision = admission.admit(tenant, nbytes)
    if decision.allowed:
        return
    retry_after = max(decision.retry_after, 0.001)
    headers = {"Retry-After": f"{retry_after:.3f}"}
    detail = {"reason": decision.reason, "retry_after": retry_after, "tenant": tenant}
    if decision.rejected:
        raise HttpError(
            413,
            f"request of {nbytes} bytes exceeds tenant {tenant!r}'s entire byte quota",
            detail=detail,
            headers=headers,
        )
    raise HttpError(
        429,
        f"tenant {tenant!r} is over its {decision.reason} limit",
        detail=detail,
        headers=headers,
    )


def _json_body(request: Request) -> dict[str, Any]:
    try:
        payload = request.get_json()
    except ReproError as exc:
        raise HttpError(400, str(exc)) from exc
    if not isinstance(payload, dict):
        raise HttpError(400, "request body must be a JSON object")
    return payload


def register_policy_routes(app: WebApp, get_policies, get_admission) -> None:
    """Mount the policy admin surface on ``app``.

    ``GET /service/policy`` (the whole table), ``GET/PUT/DELETE
    /service/policy/<selector>``.  Shared between the single-process
    service and the fleet router's control plane (which owns the one
    policy view for the whole fleet), so both speak the same protocol:
    conflicting writes are ``409`` with the structured
    :meth:`~repro.errors.PolicyConflictError.as_dict` detail, malformed
    rules are ``400``.  ``get_policies``/``get_admission`` are thunks so
    the stores stay lazily opened.
    """

    @app.route("/service/policy")
    def policy_table(_request: Request):
        policies = get_policies()
        default = policies.default()
        return JsonResponse(
            {
                "generation": policies.generation(),
                "enforcing": get_admission() is not None,
                "rules": [rule.as_dict() for rule in policies.rules()],
                "default": None if default is None else default.as_dict(),
            }
        )

    @app.route("/service/policy/<selector>")
    def policy_get(_request: Request, selector: str):
        policies = get_policies()
        try:
            rule = policies.get(selector)
        except QosError as exc:
            raise HttpError(400, str(exc)) from exc
        payload: dict[str, Any] = {
            "selector": selector,
            "rule": None if rule is None else rule.as_dict(),
        }
        if "*" not in selector:
            # A concrete tenant name: also say which rule actually governs
            # it (an exact rule, a prefix rule, the default, or the
            # built-in unlimited policy).
            payload["resolved"] = policies.resolve(selector).as_dict()
        elif rule is None:
            raise HttpError(404, f"no policy rule for selector {selector!r}")
        return JsonResponse(payload)

    @app.route("/service/policy/<selector>", methods=("PUT",))
    def policy_put(request: Request, selector: str):
        policies = get_policies()
        try:
            stored = policies.put(rule_from_payload(selector, _json_body(request)))
        except PolicyConflictError as exc:
            raise HttpError(409, str(exc), detail=exc.as_dict()) from exc
        except QosError as exc:
            raise HttpError(400, str(exc)) from exc
        return JsonResponse(
            {"rule": stored.as_dict(), "generation": policies.generation()}
        )

    @app.route("/service/policy/<selector>", methods=("DELETE",))
    def policy_delete(_request: Request, selector: str):
        policies = get_policies()
        try:
            removed = policies.delete(selector)
        except QosError as exc:
            raise HttpError(400, str(exc)) from exc
        if not removed:
            raise HttpError(404, f"no policy rule for selector {selector!r}")
        return JsonResponse({"deleted": selector, "generation": policies.generation()})


def _record_list(payload: dict[str, Any], key: str) -> list[dict[str, Any]]:
    items = payload.get(key, [])
    if not isinstance(items, list) or any(not isinstance(i, dict) for i in items):
        raise HttpError(400, f"{key!r} must be a list of objects")
    return items


def _int_field(item: dict[str, Any], key: str, default: int = 0) -> int:
    value = item.get(key, default)
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise HttpError(400, f"{key!r} must be an integer, got {value!r}") from exc


def _float_arg(request: Request, name: str, default: float, *, lo: float, hi: float) -> float:
    raw = request.arg(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise HttpError(400, f"{name!r} must be a number, got {raw!r}") from exc
    return min(max(value, lo), hi)


def request_header(request: Request, name: str) -> str | None:
    """Case-insensitive header lookup (HTTP headers arrive as sent)."""
    target = name.lower()
    for key, value in request.headers.items():
        if key.lower() == target:
            return value
    return None


def tail_cursor(request: Request) -> int:
    """The resume cursor of a tail request.

    The SSE-standard ``Last-Event-ID`` header (what a reconnecting
    ``EventSource`` presents automatically) wins over the ``since_seq``
    query parameter (the explicit form for curl and the CLI); both name
    the last sequence number already delivered, so the stream resumes
    strictly after it.
    """
    raw = request_header(request, "Last-Event-ID")
    if raw is None:
        raw = request.arg("since_seq") or "0"
    try:
        return max(0, int(raw))
    except ValueError as exc:
        raise HttpError(400, f"tail cursor must be an integer, got {raw!r}") from exc


def _keepalive_arg(request: Request) -> float:
    return clamp_keepalive(
        _float_arg(request, "keepalive", DEFAULT_KEEPALIVE, lo=0.01, hi=600.0)
    )


def _build_log_records(
    shard: ProjectShard, payload: dict[str, Any]
) -> list[LogRecord]:
    default_filename = str(payload.get("filename") or SERVICE_FILENAME)
    records = []
    for item in _record_list(payload, "records"):
        if "name" not in item:
            raise HttpError(400, "every log record needs a 'name'")
        records.append(
            LogRecord.create(
                projid=shard.session.projid,
                tstamp=str(item.get("tstamp") or shard.session.tstamp),
                filename=str(item.get("filename") or default_filename),
                ctx_id=_int_field(item, "ctx_id"),
                value_name=str(item["name"]),
                value=item.get("value"),
            )
        )
    return records


def _build_loop_records(
    shard: ProjectShard, payload: dict[str, Any]
) -> list[LoopRecord]:
    default_filename = str(payload.get("filename") or SERVICE_FILENAME)
    loops = []
    for item in _record_list(payload, "loops"):
        if "loop_name" not in item:
            raise HttpError(400, "every loop record needs a 'loop_name'")
        loops.append(
            LoopRecord(
                projid=shard.session.projid,
                tstamp=str(item.get("tstamp") or shard.session.tstamp),
                filename=str(item.get("filename") or default_filename),
                ctx_id=_int_field(item, "ctx_id"),
                parent_ctx_id=(
                    None
                    if item.get("parent_ctx_id") is None
                    else _int_field(item, "parent_ctx_id")
                ),
                loop_name=str(item["loop_name"]),
                loop_iteration=_int_field(item, "loop_iteration"),
                iteration_value=str(item.get("iteration_value", "")),
            )
        )
    return loops


def create_app(service: FlorService) -> WebApp:
    """Build the route table for ``service`` (one WebApp per host)."""
    app = WebApp("flordb-service")
    pool = service.pool

    def _existing(name: str) -> str:
        """Validate a tenant name for a *read*: reads never create tenants.

        POST endpoints create the project on first touch (that is how a
        tenant is born); letting GETs do the same would materialize a
        database directory — and burn an LRU slot — for every typo'd or
        scanning request.
        """
        name = _validated_name(name)
        if not service.project_exists(name):
            raise HttpError(404, f"unknown project {name!r}")
        return name

    @app.route("/healthz")
    def healthz(_request: Request):
        return JsonResponse({"status": "ok", "root": str(service.root)})

    @app.route("/service/stats")
    def service_stats(_request: Request):
        return JsonResponse(service_stats_payload(service))

    @app.route("/service/telemetry")
    def service_telemetry(request: Request):
        if request.arg("stream") in ("1", "true", "yes", "sse"):
            interval = _float_arg(request, "interval", 2.0, lo=0.05, hi=60.0)
            return telemetry_stream_response(service, interval=interval)
        return JsonResponse(telemetry_payload(service))

    register_policy_routes(app, lambda: service.policies, lambda: service.admission)

    @app.route("/fleet/drain", methods=("POST",))
    def fleet_drain(_request: Request):
        """Flush and seal (close) every open shard — the scale-down hand-off.

        After a successful drain no acknowledged row is buffered in this
        process and no shard database is held open, so the fleet ring can
        reassign this worker's projects to peers that will reopen the
        SQLite files fresh.  Also safe (and a no-op) on an idle worker.
        """
        names = pool.open_shards()
        flushed = pool.flush_all()
        for name in names:
            pool.evict(name)
        return JsonResponse({"flushed": flushed, "sealed_shards": names})

    @app.route("/projects/<name>/logs", methods=("POST",))
    def append_logs(request: Request, name: str):
        name = _validated_name(name)
        enforce_admission(service.admission, name, len(request.body))
        payload = _json_body(request)
        with pool.checkout(name) as shard:
            logs = _build_log_records(shard, payload)
            loops = _build_loop_records(shard, payload)
            if not logs and not loops:
                raise HttpError(400, "no records to append ('records' and 'loops' both empty)")
            flushed = shard.queue.append(logs=logs, loops=loops)
            return JsonResponse(
                {
                    "queued": len(logs) + len(loops),
                    "flushed": flushed,
                    "pending": shard.queue.pending,
                },
                status=202,
            )

    @app.route("/projects/<name>/commit", methods=("POST",))
    def commit(request: Request, name: str):
        name = _validated_name(name)
        enforce_admission(service.admission, name)
        payload = _json_body(request)
        message = str(payload.get("message", ""))
        with pool.checkout(name) as shard:
            shard.flush()
            vid = shard.session.commit(message)
            return JsonResponse({"vid": vid, "tstamp": shard.session.tstamp})

    def _replica_read(name: str, read):
        """Run ``read`` against the shard's replicas *outside* the shard lock.

        Replica reads never mutate shard state, and serializing them behind
        the per-shard handler lock would forfeit exactly the horizontal read
        scaling replicas exist for.  The shard lock is taken only long
        enough to grab a live ``ShardReplicas`` reference; if an LRU
        eviction closes the replicas mid-read (rare — the shard was hot a
        moment ago), the lookup retries against the reopened shard.
        Returns ``None`` when the pool runs without replicas.
        """
        for _ in range(3):
            with pool.checkout(name) as shard:
                replicas = shard.replicas
            if replicas is None:
                return None
            try:
                return read(replicas)
            except DatabaseError:
                if shard.closed:
                    continue  # evicted mid-read; retry with a fresh shard
                raise
        with pool.checkout(name) as shard:  # pragma: no cover - eviction storm
            if shard.replicas is None:
                return None
            return read(shard.replicas)

    @app.route("/projects/<name>/dataframe")
    def dataframe(request: Request, name: str):
        names_arg = request.arg("names", "") or ""
        names = [n for n in names_arg.split(",") if n]
        if not names:
            raise HttpError(400, "the 'names' query parameter is required (comma-separated)")
        latest = request.arg("latest") in ("1", "true", "yes")
        force_primary = request.arg("primary") in ("1", "true", "yes")
        name = _existing(name)
        enforce_admission(service.admission, name)
        if not force_primary:
            # Bounded-staleness read: no queue flush, served from a snapshot
            # replica; the watermark tells the client the highest logs.seq
            # the replica had when it answered.
            outcome = _replica_read(
                name, lambda replicas: replicas.dataframe(names, latest=latest)
            )
            if outcome is not None:
                frame, watermark = outcome
                return JsonResponse(
                    {
                        "columns": frame.columns,
                        "records": frame.to_records(),
                        "rows": len(frame),
                        "watermark": watermark,
                    }
                )
        with pool.checkout(name) as shard:
            shard.flush()
            frame = shard.session.dataframe(*names, latest=latest)
            return JsonResponse(
                {"columns": frame.columns, "records": frame.to_records(), "rows": len(frame)}
            )

    @app.route("/projects/<name>/sql")
    def sql(request: Request, name: str):
        query = request.arg("q") or request.arg("query")
        if not query:
            raise HttpError(400, "the 'q' query parameter is required")
        names_arg = request.arg("names", "") or ""
        names = [n for n in names_arg.split(",") if n]
        force_primary = request.arg("primary") in ("1", "true", "yes")
        name = _existing(name)
        enforce_admission(service.admission, name)
        if not force_primary:
            try:
                outcome = _replica_read(
                    name, lambda replicas: replicas.sql(query, names=names)
                )
            except DatabaseError as exc:
                raise HttpError(400, str(exc)) from exc
            if outcome is not None:
                frame, watermark = outcome
                return JsonResponse(
                    {
                        "columns": frame.columns,
                        "records": frame.to_records(),
                        "rows": len(frame),
                        "watermark": watermark,
                    }
                )
        with pool.checkout(name) as shard:
            shard.flush()
            try:
                frame = shard.session.sql(query, names=names)
            except DatabaseError as exc:
                # run_sql's read-only guard (and malformed SQL) land here:
                # the context store is append-only from the query surface.
                raise HttpError(400, str(exc)) from exc
            return JsonResponse(
                {"columns": frame.columns, "records": frame.to_records(), "rows": len(frame)}
            )

    @app.route("/projects/<name>/tail")
    def project_tail(request: Request, name: str):
        """Live SSE tail of a tenant's committed log rows (resumable)."""
        name = _existing(name)
        enforce_admission(service.admission, name)
        return project_tail_response(
            service,
            name,
            cursor=tail_cursor(request),
            keepalive=_keepalive_arg(request),
        )

    # ----------------------------------------------------------------- jobs
    def _job_id(raw: str) -> int:
        try:
            return int(raw)
        except ValueError as exc:
            raise HttpError(400, f"job id must be an integer, got {raw!r}") from exc

    def _required_job(raw: str):
        job = service.jobs.get(_job_id(raw))
        if job is None:
            raise HttpError(404, f"unknown job {raw}")
        return job

    @app.route("/projects/<name>/jobs/backfill", methods=("POST",))
    def submit_backfill_job(request: Request, name: str):
        """Persist a backfill/replay job and acknowledge immediately (202).

        The heavy work — replaying every historical version — happens in the
        job workers under lease supervision; the response carries the durable
        job row the client polls via ``GET /jobs/<id>``.
        """
        name = _existing(name)
        enforce_admission(service.admission, name)
        payload = _json_body(request)
        filename = payload.get("filename")
        if not filename or not isinstance(filename, str):
            raise HttpError(400, "the job payload needs a 'filename' string")
        kind = str(payload.get("kind", KIND_BACKFILL))
        if kind not in JOB_KINDS:
            raise HttpError(400, f"unknown job kind {kind!r}; expected one of {JOB_KINDS}")
        job_payload: dict[str, Any] = {"filename": filename}
        if payload.get("new_source") is not None:
            if not isinstance(payload["new_source"], str):
                raise HttpError(400, "'new_source' must be a string of source code")
            job_payload["new_source"] = payload["new_source"]
        if payload.get("versions") is not None:
            versions = payload["versions"]
            if not isinstance(versions, list) or any(not isinstance(v, str) for v in versions):
                raise HttpError(400, "'versions' must be a list of version-id strings")
            job_payload["versions"] = versions
        if payload.get("plan") is not None:
            if not isinstance(payload["plan"], dict):
                raise HttpError(400, "'plan' must be an object mapping loop name to iterations")
            job_payload["plan"] = payload["plan"]
        if "include_latest" in payload:
            job_payload["include_latest"] = bool(payload["include_latest"])
        # An explicit priority wins; otherwise the tenant's policy class
        # (high/normal/low → jobs.priority) decides where the job queues.
        default_priority = 0
        if service.admission is not None and "priority" not in payload:
            default_priority = service.admission.job_priority(name)
        try:
            job = service.jobs.submit(
                name,
                kind,
                job_payload,
                priority=_int_field(payload, "priority", default_priority),
                max_attempts=_int_field(payload, "max_attempts", 3),
            )
        except JobError as exc:
            raise HttpError(400, str(exc)) from exc
        return JsonResponse({"job": job.as_dict()}, status=202)

    @app.route("/jobs")
    def list_jobs(request: Request):
        project = request.arg("project")
        if project is not None:
            project = _validated_name(project)
        state = request.arg("state")
        try:
            jobs = service.jobs.list_jobs(
                project=project, state=state, limit=_int_field(dict(request.query), "limit", 50)
            )
        except JobError as exc:
            raise HttpError(400, str(exc)) from exc
        return JsonResponse({"jobs": [job.as_dict() for job in jobs]})

    @app.route("/jobs/<job_id>")
    def job_status(_request: Request, job_id: str):
        return JsonResponse({"job": _required_job(job_id).as_dict()})

    @app.route("/jobs/<job_id>/events")
    def job_events(request: Request, job_id: str):
        job = _required_job(job_id)
        after = _int_field(dict(request.query), "after", 0)
        events = service.jobs.events(job.id, after=after)
        return JsonResponse(
            {
                "job_id": job.id,
                "state": job.state,
                "events": [event.as_dict() for event in events],
                "last_seq": events[-1].seq if events else after,
            }
        )

    @app.route("/jobs/<job_id>/tail")
    def job_tail(request: Request, job_id: str):
        """Live SSE tail of a job's event trail, ending with ``done``."""
        job = _required_job(job_id)
        return job_tail_response(
            service,
            job.id,
            cursor=tail_cursor(request),
            keepalive=_keepalive_arg(request),
        )

    @app.route("/jobs/<job_id>/cancel", methods=("POST",))
    def cancel_job(_request: Request, job_id: str):
        job = _required_job(job_id)
        try:
            job = service.jobs.cancel(job.id)
        except JobNotFoundError as exc:  # pragma: no cover - raced deletion
            raise HttpError(404, str(exc)) from exc
        return JsonResponse({"job": job.as_dict()})

    @app.route("/jobs/<job_id>/retry", methods=("POST",))
    def retry_job(_request: Request, job_id: str):
        job = _required_job(job_id)
        try:
            job = service.jobs.retry(job.id)
        except JobError as exc:
            raise HttpError(409, str(exc)) from exc
        return JsonResponse({"job": job.as_dict()})

    @app.route("/projects/<name>/stats")
    def project_stats(request: Request, name: str):
        with pool.checkout(_existing(name)) as shard:
            tables = {
                table: shard.session.db.count(table) for table in TABLES if table != "meta"
            }
            return JsonResponse(
                {"tables": tables, **shard_stats_payload(service, shard)}
            )

    return app
