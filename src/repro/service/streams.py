"""SSE stream builders for the service's live routes.

Three streams, one shape: every handler returns a
:class:`~repro.webapp.framework.StreamingResponse` whose generator
alternates *fetch committed state past my cursor from the store* with
*wait on a broker subscription* — the broker (:mod:`repro.obs.tail`)
carries wakeups only, never data, so a stream survives anything the
store survives:

* **project tail** — rows straight from the tenant shard's ``logs``
  table, ``seq`` as the SSE ``id``.  A reconnecting client presents
  ``Last-Event-ID`` and backfills from the relational store, which is
  what makes delivery exactly-once across disconnects, shard eviction
  and reopen (a fresh incarnation serves the same SQLite file), worker
  death (the fleet router re-proxies to the reopened placement), and
  even tails of a sealed project (checkout reopens the shard).
* **job tail** — the job's append-only ``job_events`` trail, ending with
  a ``done`` event at a terminal state.
* **telemetry feed** — periodic :func:`~repro.service.stats.
  telemetry_payload` snapshots for dashboards (``repro monitor``).

Generators never hold a shard lock across a ``yield``: each fetch is a
brief :meth:`~repro.service.pool.DatabasePool.checkout`, then the lock is
gone before the first byte is written to a (possibly slow) socket.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from ..errors import TailBackpressureError
from ..relational.queries import log_watermark
from ..relational.records import JOB_TERMINAL_STATES
from ..webapp.framework import HttpError, StreamingResponse, sse_comment, sse_event
from .stats import telemetry_payload

#: Rows fetched per backfill query; a deep backlog streams as successive
#: batches without ever materializing the whole tail in memory.
TAIL_BATCH = 500

#: Default seconds between keepalive comments on an idle stream.  Routes
#: accept a ``keepalive`` query parameter (clamped below) so tests bound
#: every wait without monkeypatching.
DEFAULT_KEEPALIVE = 15.0
MIN_KEEPALIVE = 0.05
MAX_KEEPALIVE = 60.0

_TAIL_ROWS_SQL = (
    "SELECT seq, tstamp, filename, ctx_id, value_name, value, value_type"
    " FROM logs WHERE projid = ? AND seq > ? ORDER BY seq LIMIT ?"
)


def _subscribe(service, stream: str, cursor: int):
    try:
        return service.tail.subscribe(stream, cursor)
    except TailBackpressureError as exc:
        raise HttpError(
            503, str(exc), headers={"Retry-After": "1.0"}, detail={"stream": stream}
        ) from exc


def _tail_stream(generate: Iterator[str], subscription) -> StreamingResponse:
    """A StreamingResponse whose ``close`` also releases the subscription.

    The generator's own ``finally`` handles the normal paths, but a
    stream that is closed before its first chunk is ever pulled (client
    gone between subscribe and first write) never enters the generator
    body at all — closing an unstarted generator skips ``finally`` — so
    the response object itself must free the broker slot too.
    Unsubscribing twice is harmless.
    """
    response = StreamingResponse(generate)
    original_close = response.close

    def close() -> None:
        subscription.close()
        original_close()

    response.close = close  # type: ignore[method-assign]
    return response


def _row_payload(row) -> dict[str, Any]:
    return {
        "seq": int(row[0]),
        "tstamp": row[1],
        "filename": row[2],
        "ctx_id": row[3],
        "name": row[4],
        "value": row[5],
        "value_type": row[6],
    }


def project_tail_response(
    service,
    name: str,
    *,
    cursor: int = 0,
    keepalive: float = DEFAULT_KEEPALIVE,
    batch: int = TAIL_BATCH,
) -> StreamingResponse:
    """``GET /projects/<name>/tail`` — committed log rows as SSE, live.

    ``cursor`` is the last ``logs.seq`` the client has (0 for the full
    backlog).  A cursor *beyond* the shard's watermark — a stale
    ``Last-Event-ID`` from before a project reset, or plain garbage — is
    clamped to the watermark so the subscriber streams new rows instead
    of silently waiting for sequence numbers that will never come.
    """
    pool = service.pool
    with pool.checkout(name) as shard:
        watermark = log_watermark(shard.session.db, shard.session.projid)
    cursor = min(max(0, cursor), watermark)
    subscription = _subscribe(service, f"project:{name}", cursor)
    metrics = service.metrics

    def generate() -> Iterator[str]:
        try:
            yield sse_comment(f"tail of {name} from seq {subscription.cursor}")
            while True:
                if subscription.evicted is not None:
                    yield sse_event({"reason": subscription.evicted}, event="evicted")
                    return
                with pool.checkout(name) as shard:
                    rows = shard.session.db.query(
                        _TAIL_ROWS_SQL,
                        (shard.session.projid, subscription.cursor, batch),
                    )
                if rows:
                    for row in rows:
                        yield sse_event(_row_payload(row), event="log", id=int(row[0]))
                    subscription.advance(int(rows[-1][0]), len(rows))
                    if metrics is not None:
                        metrics.inc("tail.rows", len(rows))
                    continue  # drain the backlog before sleeping again
                if not subscription.wait(keepalive):
                    yield sse_comment()
        finally:
            subscription.close()

    return _tail_stream(generate(), subscription)


def job_tail_response(
    service,
    job_id: int,
    *,
    cursor: int = 0,
    keepalive: float = DEFAULT_KEEPALIVE,
    batch: int = 200,
) -> StreamingResponse:
    """``GET /jobs/<id>/tail`` — the job's event trail as SSE, then ``done``.

    Events stream with their ``job_events.seq`` as the SSE id, so
    reconnecting works exactly like the project tail.  When the job
    reaches a terminal state the stream performs one final fetch (the
    terminal transition commits its event and its state in the same
    transaction, and the state read may race ahead of our last event
    read), emits any remainder, then a ``done`` event, then ends —
    ``repro jobs watch`` exits on it instead of polling.
    """
    store = service.jobs
    subscription = _subscribe(service, f"job:{job_id}", cursor)

    def _emit(events) -> Iterator[str]:
        for event in events:
            yield sse_event(event.as_dict(), event=event.kind, id=event.seq)
        if events:
            subscription.advance(events[-1].seq, len(events))

    def generate() -> Iterator[str]:
        try:
            yield sse_comment(f"tail of job {job_id} from seq {subscription.cursor}")
            while True:
                if subscription.evicted is not None:
                    yield sse_event({"reason": subscription.evicted}, event="evicted")
                    return
                events = store.events(job_id, after=subscription.cursor, limit=batch)
                if events:
                    yield from _emit(events)
                    continue
                job = store.get(job_id)
                if job is None or job.state in JOB_TERMINAL_STATES:
                    yield from _emit(store.events(job_id, after=subscription.cursor))
                    yield sse_event(
                        {
                            "job_id": job_id,
                            "state": job.state if job is not None else "deleted",
                        },
                        event="done",
                    )
                    return
                if not subscription.wait(keepalive):
                    yield sse_comment()
        finally:
            subscription.close()

    return _tail_stream(generate(), subscription)


def telemetry_stream_response(service, *, interval: float = 2.0) -> StreamingResponse:
    """``GET /service/telemetry?stream=1`` — registry snapshots as SSE.

    The ``id`` is a per-connection sequence number, not a resume cursor:
    snapshots are self-contained (cumulative counters), so a reconnecting
    consumer just starts fresh and differences from its next snapshot.
    """

    def generate() -> Iterator[str]:
        seq = 0
        while True:
            seq += 1
            yield sse_event(telemetry_payload(service), event="telemetry", id=seq)
            time.sleep(interval)

    return StreamingResponse(generate())


def clamp_keepalive(value: float) -> float:
    return min(max(value, MIN_KEEPALIVE), MAX_KEEPALIVE)
