"""Batched ingestion: coalesce appended records into one transaction.

SQLite pays a fixed cost per committed transaction (journal bookkeeping and
page writes) that dwarfs the cost of one extra row in an ``executemany``.
The T1 benchmark's record overhead is low precisely because sessions buffer
and flush in bulk; a service accepting appends from many clients needs the
same amortization server-side.  :class:`IngestionQueue` buffers incoming
:class:`~repro.relational.records.LogRecord` / ``LoopRecord`` rows and
writes them with the repositories' insert statements inside a **single**
transaction per flush.

Flushes trigger three ways:

* **size** — the queue reached ``flush_size`` records (``flush_size=1``
  degenerates to the unbatched per-record baseline the T8 benchmark
  compares against),
* **interval** — more than ``flush_interval`` seconds elapsed since the
  last flush and records are pending (checked opportunistically on append,
  so an idle queue holds its tail records until the next append or an
  explicit flush),
* **explicit** — :meth:`IngestionQueue.flush`, called by the service layer
  before commits and reads so clients always read their own writes.

Writing goes through a :class:`~repro.runtime.BackgroundFlusher`.  The
default (a private sync-mode flusher) executes each flush inline on the
appending thread, exactly the historical behaviour.  The service pool
instead passes the *shard session's* flusher, so batched ingestion shares
one background writer (and one coalesced transaction stream) with the
session's own record path; size- and interval-triggered flushes then hand
rows off without blocking the request thread, while explicit flushes drain
the flusher as the read-your-writes barrier.

The queue is thread-safe; callers may share one instance across request
handler threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..storage.protocols import RelationalStore
from ..relational.records import LogRecord, LoopRecord
from ..runtime import SYNC, BackgroundFlusher, FlushCallbackError


@dataclass
class IngestStats:
    """Counters describing a queue's lifetime behaviour."""

    appended: int = 0
    flushed_records: int = 0
    flushes: int = 0
    size_flushes: int = 0
    interval_flushes: int = 0
    explicit_flushes: int = 0
    largest_batch: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "appended": self.appended,
            "flushed_records": self.flushed_records,
            "flushes": self.flushes,
            "size_flushes": self.size_flushes,
            "interval_flushes": self.interval_flushes,
            "explicit_flushes": self.explicit_flushes,
            "largest_batch": self.largest_batch,
        }


@dataclass
class IngestionQueue:
    """Buffer log/loop records and write them one transaction per flush.

    Parameters
    ----------
    db:
        Destination database (one shard of the pool).
    flush_size:
        Flush as soon as this many records (logs + loops) are pending.
    flush_interval:
        Flush on append when this many seconds elapsed since the last
        flush.  ``None`` disables the interval trigger.
    clock:
        Monotonic time source; injectable so tests drive the interval
        trigger deterministically.
    on_flush:
        Called with the record count after each flushed batch's transaction
        commits (on the flusher's thread when the flusher is asynchronous).
        The pool wires this to the shard's query-cache invalidation
        (:meth:`~repro.query.QueryEngine.note_write`), so batched ingestion
        — which writes straight to the database, bypassing the session's
        buffers — still marks materialized pivot views stale, and only once
        the rows are actually visible to readers.
    flusher:
        Writer to hand batches to.  ``None`` creates a private sync-mode
        :class:`~repro.runtime.BackgroundFlusher` (inline writes, one
        transaction per flush — the historical behaviour).
    """

    db: RelationalStore
    flush_size: int = 64
    flush_interval: float | None = 0.5
    clock: Callable[[], float] = time.monotonic
    stats: IngestStats = field(default_factory=IngestStats)
    on_flush: Callable[[int], None] | None = None
    flusher: BackgroundFlusher | None = None

    def __post_init__(self) -> None:
        if self.flush_size < 1:
            raise ValueError(f"flush_size must be >= 1, got {self.flush_size}")
        self._lock = threading.Lock()
        self._logs: list[LogRecord] = []
        self._loops: list[LoopRecord] = []
        self._last_flush = self.clock()
        if self.flusher is None:
            self.flusher = BackgroundFlusher(self.db, mode=SYNC)

    # ---------------------------------------------------------------- append
    def append(
        self,
        logs: Sequence[LogRecord] = (),
        loops: Sequence[LoopRecord] = (),
    ) -> bool:
        """Enqueue records; returns True when this call triggered a flush."""
        with self._lock:
            self._logs.extend(logs)
            self._loops.extend(loops)
            self.stats.appended += len(logs) + len(loops)
            pending = len(self._logs) + len(self._loops)
            if pending >= self.flush_size:
                self._flush_locked("size")
                return True
            if (
                self.flush_interval is not None
                and pending
                and self.clock() - self._last_flush >= self.flush_interval
            ):
                self._flush_locked("interval")
                return True
            return False

    # ----------------------------------------------------------------- flush
    @property
    def pending(self) -> int:
        """Records buffered in this queue, not yet handed to the flusher.

        Batches already submitted to an async flusher are tracked by the
        flusher's own ``pending_rows``, not here.
        """
        with self._lock:
            return len(self._logs) + len(self._loops)

    def flush(self) -> int:
        """Make all pending records durable now; returns how many were queued.

        This is the read-your-writes barrier: it submits the pending batch
        and then drains the flusher, so it returns only once every record —
        including batches from earlier size/interval flushes still riding
        the background writer — is committed.
        """
        with self._lock:
            count = self._flush_locked("explicit")
        self.flusher.drain()
        return count

    def _flush_locked(self, reason: str) -> int:
        logs, loops = self._logs, self._loops
        count = len(logs) + len(loops)
        if not count:
            self._last_flush = self.clock()
            return 0
        self._logs, self._loops = [], []
        # One batch per flush → one transaction (possibly coalesced with
        # neighbouring batches by an async flusher): commit cost is paid per
        # flush instead of per record (the point of this module).
        notify = self.on_flush
        try:
            self.flusher.submit(
                [r.as_row() for r in logs],
                [r.as_row() for r in loops],
                on_written=notify if notify is not None else None,
            )
        except FlushCallbackError:
            # The transaction committed; only the post-commit callback
            # failed.  Requeueing would duplicate every row on the next
            # flush, so propagate without touching the buffers.
            raise
        except Exception:
            # The inline write failed (sync flusher — an async submit never
            # raises after accepting its batch; deferred worker errors
            # surface at the drain in flush() instead).  Requeue so a later
            # flush can retry (records appended meanwhile stay ordered after
            # the old batch).
            self._logs = logs + self._logs
            self._loops = loops + self._loops
            raise
        self._last_flush = self.clock()
        self.stats.flushes += 1
        self.stats.flushed_records += count
        self.stats.largest_batch = max(self.stats.largest_batch, count)
        if reason == "size":
            self.stats.size_flushes += 1
        elif reason == "interval":
            self.stats.interval_flushes += 1
        else:
            self.stats.explicit_flushes += 1
        return count
