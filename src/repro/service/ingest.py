"""Batched ingestion: coalesce appended records into one transaction.

SQLite pays a fixed cost per committed transaction (journal bookkeeping and
page writes) that dwarfs the cost of one extra row in an ``executemany``.
The T1 benchmark's record overhead is low precisely because sessions buffer
and flush in bulk; a service accepting appends from many clients needs the
same amortization server-side.  :class:`IngestionQueue` buffers incoming
:class:`~repro.relational.records.LogRecord` / ``LoopRecord`` rows and
writes them with the repositories' insert statements inside a **single**
transaction per flush.

Flushes trigger three ways:

* **size** — the queue reached ``flush_size`` records (``flush_size=1``
  degenerates to the unbatched per-record baseline the T8 benchmark
  compares against),
* **interval** — more than ``flush_interval`` seconds elapsed since the
  last flush and records are pending (checked opportunistically on append,
  so an idle queue holds its tail records until the next append or an
  explicit flush),
* **explicit** — :meth:`IngestionQueue.flush`, called by the service layer
  before commits and reads so clients always read their own writes.

The queue is thread-safe; callers may share one instance across request
handler threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..relational.database import Database
from ..relational.records import LogRecord, LoopRecord
from ..relational.repositories import (
    INSERT_LOG_SQL,
    INSERT_LOOP_SQL,
    log_row,
    loop_row,
)


@dataclass
class IngestStats:
    """Counters describing a queue's lifetime behaviour."""

    appended: int = 0
    flushed_records: int = 0
    flushes: int = 0
    size_flushes: int = 0
    interval_flushes: int = 0
    explicit_flushes: int = 0
    largest_batch: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "appended": self.appended,
            "flushed_records": self.flushed_records,
            "flushes": self.flushes,
            "size_flushes": self.size_flushes,
            "interval_flushes": self.interval_flushes,
            "explicit_flushes": self.explicit_flushes,
            "largest_batch": self.largest_batch,
        }


@dataclass
class IngestionQueue:
    """Buffer log/loop records and write them one transaction per flush.

    Parameters
    ----------
    db:
        Destination database (one shard of the pool).
    flush_size:
        Flush as soon as this many records (logs + loops) are pending.
    flush_interval:
        Flush on append when this many seconds elapsed since the last
        flush.  ``None`` disables the interval trigger.
    clock:
        Monotonic time source; injectable so tests drive the interval
        trigger deterministically.
    on_flush:
        Called with the record count after every flush that wrote rows.
        The pool wires this to the shard's query-cache invalidation
        (:meth:`~repro.query.QueryEngine.note_write`), so batched ingestion
        — which writes straight to the database, bypassing the session's
        buffers — still marks materialized pivot views stale.
    """

    db: Database
    flush_size: int = 64
    flush_interval: float | None = 0.5
    clock: Callable[[], float] = time.monotonic
    stats: IngestStats = field(default_factory=IngestStats)
    on_flush: Callable[[int], None] | None = None

    def __post_init__(self) -> None:
        if self.flush_size < 1:
            raise ValueError(f"flush_size must be >= 1, got {self.flush_size}")
        self._lock = threading.Lock()
        self._logs: list[LogRecord] = []
        self._loops: list[LoopRecord] = []
        self._last_flush = self.clock()

    # ---------------------------------------------------------------- append
    def append(
        self,
        logs: Sequence[LogRecord] = (),
        loops: Sequence[LoopRecord] = (),
    ) -> bool:
        """Enqueue records; returns True when this call triggered a flush."""
        with self._lock:
            self._logs.extend(logs)
            self._loops.extend(loops)
            self.stats.appended += len(logs) + len(loops)
            pending = len(self._logs) + len(self._loops)
            if pending >= self.flush_size:
                self._flush_locked("size")
                return True
            if (
                self.flush_interval is not None
                and pending
                and self.clock() - self._last_flush >= self.flush_interval
            ):
                self._flush_locked("interval")
                return True
            return False

    # ----------------------------------------------------------------- flush
    @property
    def pending(self) -> int:
        """Number of records buffered but not yet durable."""
        with self._lock:
            return len(self._logs) + len(self._loops)

    def flush(self) -> int:
        """Write all pending records now; returns how many were written."""
        with self._lock:
            return self._flush_locked("explicit")

    def _flush_locked(self, reason: str) -> int:
        logs, loops = self._logs, self._loops
        count = len(logs) + len(loops)
        if not count:
            self._last_flush = self.clock()
            return 0
        self._logs, self._loops = [], []
        # One transaction for the whole batch: commit cost is paid once per
        # flush instead of once per record (the point of this module).
        try:
            with self.db.transaction() as connection:
                if logs:
                    connection.executemany(INSERT_LOG_SQL, [log_row(r) for r in logs])
                if loops:
                    connection.executemany(INSERT_LOOP_SQL, [loop_row(r) for r in loops])
        except Exception:
            # The transaction rolled back; requeue so a later flush can retry
            # (records appended meanwhile stay ordered after the old batch).
            self._logs = logs + self._logs
            self._loops = loops + self._loops
            raise
        self._last_flush = self.clock()
        self.stats.flushes += 1
        self.stats.flushed_records += count
        self.stats.largest_batch = max(self.stats.largest_batch, count)
        if reason == "size":
            self.stats.size_flushes += 1
        elif reason == "interval":
            self.stats.interval_flushes += 1
        else:
            self.stats.explicit_flushes += 1
        if self.on_flush is not None:
            self.on_flush(count)
        return count
