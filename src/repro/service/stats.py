"""Shared stats payload builders for the service's introspection routes.

``GET /projects/<name>/stats``, ``GET /service/stats`` and ``GET
/service/telemetry`` all serve views of the same underlying counters
(flusher, pool, qos, replicas, job queue).  Before this module the qos /
flusher / replica blocks were assembled independently inside each route
closure in :mod:`repro.service.app` and had started to drift; every block
now has exactly one builder, used by the single-process service routes and
re-aggregated by the fleet router's control plane.
"""

from __future__ import annotations

from typing import Any

from .pool import ProjectShard


def flusher_stats(session) -> dict[str, int]:
    """The session flusher's lifetime counters (empty dict when sync-only)."""
    flusher = getattr(session, "flusher", None)
    return flusher.stats.as_dict() if flusher is not None else {}


def replica_stats(shard: ProjectShard) -> dict[str, Any] | None:
    """The shard's replica-routing counters, or None without replicas."""
    if shard.replicas is None:
        return None
    return shard.replicas.replicated.stats.as_dict()


def qos_stats(service, tenant: str | None = None) -> dict[str, Any] | None:
    """The admission snapshot (one tenant's or fleet-wide); None with QoS off."""
    if service.admission is None:
        return None
    return service.admission.snapshot(tenant)


def shard_stats_payload(service, shard: ProjectShard) -> dict[str, Any]:
    """The per-tenant block of ``GET /projects/<name>/stats``.

    ``dropped_rows_total`` is the tenant's monotone (per service process)
    count of acknowledged rows its writers shed; a client that sees it
    unchanged across a primary read knows no acked row was dropped in
    between (the chaos harness's seal protocol; see docs/testing.md).
    The ``incarnation`` identifies the live shard handle, whose own
    flusher counters reset on reopen.
    """
    pool = service.pool
    return {
        "project": shard.session.projid,
        "incarnation": shard.incarnation,
        "dropped_rows_total": pool.dropped_rows_total(shard.name),
        "pending": shard.queue.pending if shard.queue else 0,
        "ingest": shard.queue.stats.as_dict() if shard.queue else {},
        "flusher": flusher_stats(shard.session),
        "qos": qos_stats(service, shard.session.projid),
        "query_cache": shard.session.query.stats.as_dict(),
        "replicas": replica_stats(shard),
    }


def service_stats_payload(service) -> dict[str, Any]:
    """The host-level block of ``GET /service/stats``."""
    pool = service.pool
    payload: dict[str, Any] = {
        "open_shards": pool.open_shards(),
        "capacity": pool.capacity,
        "pool": pool.stats.as_dict(),
        "flush_size": service.flush_size,
        "flush_interval": service.flush_interval,
        "replicas": service.replicas,
        "jobs": service.job_counts(),
    }
    qos = qos_stats(service)
    if qos is not None:
        payload["qos"] = qos
    agent = service.worker_agent
    if agent is not None:
        # Fleet identity: which process this is, how many shards it
        # currently owns handles for, and how long since the router
        # last acknowledged its heartbeat.
        payload["worker"] = {**agent.info(), "owned_shards": len(pool)}
    return payload


def telemetry_payload(service) -> dict[str, Any]:
    """One ``GET /service/telemetry`` snapshot: registry + tail-broker view.

    Counters are cumulative; feed consumers (the ``repro monitor`` CLI,
    the fleet router's fan-in) difference successive snapshots to get
    rates, so a snapshot is cheap to produce and carries no derived state.
    """
    payload = service.metrics.snapshot()
    payload["tail"] = service.tail.stats()
    payload["open_shards"] = len(service.pool)
    payload["jobs"] = service.job_counts()
    agent = service.worker_agent
    if agent is not None:
        payload["worker"] = agent.info()
    return payload
