"""Socket-facing adapter: real HTTP requests onto the in-process framework.

:mod:`repro.webapp.framework` is deliberately socket-free (tests and
benchmarks drive apps through :class:`~repro.webapp.framework.TestClient`).
This module is the thin bridge that ``repro serve`` uses to put the same
:class:`~repro.webapp.framework.WebApp` behind a real port, built entirely
on the standard library:

* :func:`make_server` — a :class:`http.server.ThreadingHTTPServer` whose
  handler translates each socket request into a framework
  :class:`~repro.webapp.framework.Request`, dispatches it, and writes the
  framework :class:`~repro.webapp.framework.Response` back.  Thread-per-
  request matches the service layer's locking model (per-shard RLocks).
* :func:`serve` — ``make_server`` + ``serve_forever`` with a clean
  KeyboardInterrupt exit; the CLI calls this.

Unexpected handler exceptions become a 500 JSON error instead of killing
the worker thread, so one bad request never takes the service down.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from ..webapp.framework import Request, Response, StreamingResponse, WebApp


def _handler_class(app: WebApp, quiet: bool) -> type[BaseHTTPRequestHandler]:
    class FrameworkHTTPHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "flordb-service"

        def _dispatch(self) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            parts = urlsplit(self.path)
            query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
            request = Request(
                method=self.command,
                path=parts.path or "/",
                query=query,
                headers={k: v for k, v in self.headers.items()},
                body=body,
            )
            try:
                response = app.handle(request)
            except Exception as exc:  # noqa: BLE001 - keep the worker alive
                response = Response(
                    body=json.dumps({"error": f"internal error: {exc}"}),
                    status=500,
                    headers={"Content-Type": "application/json"},
                )
            if isinstance(response, StreamingResponse):
                self._send_stream(response)
                return
            payload = response.body.encode("utf-8")
            self.send_response(response.status)
            for key, value in response.headers.items():
                self.send_header(key, value)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_stream(self, response: StreamingResponse) -> None:
            """Write an iterator body with chunked transfer encoding.

            Each chunk is flushed as soon as the handler yields it — that
            is the entire point of a streaming response: an SSE tail event
            reaches the subscriber the moment its row commits, not when
            the (never-ending) body completes.  A client that disconnects
            surfaces as a broken pipe on write; the handler closes the
            body iterator (releasing its tail subscription) and drops the
            connection instead of killing the worker thread.
            """
            self.send_response(response.status)
            for key, value in response.headers.items():
                self.send_header(key, value)
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            try:
                for chunk in response.chunks:
                    data = chunk.encode("utf-8") if isinstance(chunk, str) else chunk
                    if not data:
                        continue
                    self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
                    self.wfile.flush()
                self.wfile.write(b"0\r\n\r\n")
            except (BrokenPipeError, ConnectionError, TimeoutError, OSError):
                # Subscriber went away mid-stream; nothing to answer.
                self.close_connection = True
            except Exception:  # noqa: BLE001 - stream already started; can
                # only terminate it (the status line is long gone).
                self.close_connection = True
            finally:
                response.close()

        do_GET = _dispatch
        do_POST = _dispatch
        do_PUT = _dispatch
        do_DELETE = _dispatch

        def log_message(self, fmt: str, *args) -> None:  # noqa: A003
            if not quiet:
                super().log_message(fmt, *args)

    return FrameworkHTTPHandler


def make_server(
    app: WebApp, host: str = "127.0.0.1", port: int = 0, *, quiet: bool = True
) -> ThreadingHTTPServer:
    """Bind ``app`` to ``host:port`` (port 0 picks a free one) without serving yet."""
    return ThreadingHTTPServer((host, port), _handler_class(app, quiet))


def serve(
    app: WebApp,
    host: str = "127.0.0.1",
    port: int = 8230,
    *,
    quiet: bool = False,
    ready: Callable[[str, int], None] | None = None,
    shutdown_event: threading.Event | None = None,
) -> None:
    """Serve ``app`` until interrupted (or ``shutdown_event`` is set).

    ``ready`` is called with the bound ``(host, port)`` once the socket is
    listening — tests use it to learn the ephemeral port before connecting.
    """
    server = make_server(app, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    if ready is not None:
        ready(str(bound_host), int(bound_port))
    watcher = None
    if shutdown_event is not None:
        watcher = threading.Thread(
            target=lambda: (shutdown_event.wait(), server.shutdown()), daemon=True
        )
        watcher.start()
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if watcher is not None:
            shutdown_event.set()
            watcher.join(timeout=1.0)
