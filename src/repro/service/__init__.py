"""Multi-tenant service layer: many concurrent clients, one FlorDB host.

The paper positions FlorDB as shared infrastructure — log records flow in
from many training runs and are queried back "via Pandas or SQL".  This
package is the server side of that story, built on the in-process
:mod:`repro.webapp.framework`:

* :mod:`repro.service.pool` — a sharded database pool: one SQLite
  :class:`~repro.relational.database.Database` per project, an LRU-capped
  handle cache and a per-shard re-entrant lock,
* :mod:`repro.service.ingest` — a batched ingestion queue that coalesces
  appended records into one transaction per flush (size- or
  interval-triggered), amortizing commit overhead across records,
* :mod:`repro.service.app` — the HTTP surface: bulk append, commit,
  dataframe and read-only SQL endpoints per project, plus the durable job
  endpoints (``POST /projects/<name>/jobs/backfill``, ``GET /jobs/<id>``,
  ``GET /jobs/<id>/events``, ``POST /jobs/<id>/cancel|retry``) backed by
  the host-level :class:`~repro.jobs.JobStore`,
* :mod:`repro.service.server` — a stdlib socket server bridging real HTTP
  requests onto the framework (the ``repro serve`` CLI subcommand, which
  can also embed :class:`~repro.jobs.JobRunner` workers via
  ``--job-workers N``).

Quick tour::

    from repro.service import FlorService
    from repro.webapp.framework import TestClient

    service = FlorService("/srv/flor", flush_size=64)
    client = TestClient(service.app())
    client.post("/projects/alpha/logs",
                json_body={"records": [{"name": "loss", "value": 0.5}]})
    client.post("/projects/alpha/commit", json_body={"message": "run 1"})
    frame = client.get("/projects/alpha/dataframe?names=loss").json()
"""

from .app import SERVICE_FILENAME, FlorService, create_app
from .ingest import IngestionQueue, IngestStats
from .pool import DatabasePool, PoolStats, ProjectShard

__all__ = [
    "FlorService",
    "create_app",
    "SERVICE_FILENAME",
    "DatabasePool",
    "PoolStats",
    "ProjectShard",
    "IngestionQueue",
    "IngestStats",
]
