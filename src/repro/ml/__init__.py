"""NumPy training substrate (stands in for PyTorch in the paper's Figure 5).

The training pipeline of the PDF-parser demo fine-tunes a small classifier
over page features.  This package implements everything that loop needs from
scratch on NumPy: layers, an MLP with ``state_dict``/``load_state_dict``
(the convention the checkpoint manager understands), SGD/Adam optimizers,
losses, metrics (accuracy / recall), mini-batch loading and a convenience
trainer that wires it all through the flor facade.
"""

from .dataset import Dataset, DataLoader, train_test_split
from .metrics import accuracy, confusion_matrix, f1_score, precision, recall
from .mlp import MLPClassifier, Linear, relu, softmax
from .optim import SGD, Adam
from .train import (
    TrainingConfig,
    TrainingResult,
    make_synthetic_classification,
    train_classifier,
)

__all__ = [
    "Dataset",
    "DataLoader",
    "train_test_split",
    "MLPClassifier",
    "Linear",
    "relu",
    "softmax",
    "SGD",
    "Adam",
    "accuracy",
    "recall",
    "precision",
    "f1_score",
    "confusion_matrix",
    "TrainingConfig",
    "TrainingResult",
    "train_classifier",
    "make_synthetic_classification",
]
