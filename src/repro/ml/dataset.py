"""Datasets and mini-batch loading for the NumPy training substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import ModelError


@dataclass
class Dataset:
    """A supervised dataset: feature matrix ``X`` and integer labels ``y``."""

    X: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {self.X.shape}")
        if self.y.ndim != 1:
            raise ModelError(f"y must be 1-D, got shape {self.y.shape}")
        if len(self.X) != len(self.y):
            raise ModelError(f"X has {len(self.X)} rows but y has {len(self.y)} labels")

    def __len__(self) -> int:
        return len(self.X)

    @property
    def num_features(self) -> int:
        return self.X.shape[1]

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self.y) else 0

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(self.X[indices], self.y[indices])

    def shuffled(self, seed: int | None = None) -> "Dataset":
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        return self.subset(order)


def train_test_split(dataset: Dataset, test_fraction: float = 0.2, seed: int | None = 0) -> tuple[Dataset, Dataset]:
    """Split into train/test subsets after a deterministic shuffle."""
    if not 0.0 < test_fraction < 1.0:
        raise ModelError(f"test_fraction must be in (0, 1), got {test_fraction}")
    shuffled = dataset.shuffled(seed)
    cut = max(1, int(round(len(dataset) * (1.0 - test_fraction))))
    cut = min(cut, len(dataset) - 1) if len(dataset) > 1 else cut
    train_idx = np.arange(0, cut)
    test_idx = np.arange(cut, len(dataset))
    return shuffled.subset(train_idx), shuffled.subset(test_idx)


class DataLoader:
    """Iterates a dataset in mini-batches, optionally reshuffled each epoch."""

    def __init__(self, dataset: Dataset, batch_size: int = 32, shuffle: bool = False, seed: int | None = 0):
        if batch_size <= 0:
            raise ModelError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            order = self._rng.permutation(order)
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            yield self.dataset.X[batch], self.dataset.y[batch]
