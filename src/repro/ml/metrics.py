"""Classification metrics used throughout the paper's demo (accuracy, recall)."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ModelError(f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}")
    if y_true.size == 0:
        raise ModelError("metrics require at least one sample")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of predictions that match the true label."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """``matrix[i, j]`` counts samples of true class ``i`` predicted as ``j``."""
    y_true, y_pred = _validate(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[t, p] += 1
    return matrix


def _matrix_covering(y_true: np.ndarray, y_pred: np.ndarray, positive_class: int | None) -> np.ndarray:
    """Confusion matrix sized to include ``positive_class`` even if unseen."""
    num_classes = int(max(y_true.max(), y_pred.max())) + 1
    if positive_class is not None:
        num_classes = max(num_classes, positive_class + 1)
    return confusion_matrix(y_true, y_pred, num_classes=num_classes)


def recall(y_true: np.ndarray, y_pred: np.ndarray, positive_class: int | None = None) -> float:
    """Recall for ``positive_class``, or macro-averaged recall when omitted."""
    y_true, y_pred = _validate(y_true, y_pred)
    matrix = _matrix_covering(y_true, y_pred, positive_class)
    if positive_class is not None:
        denom = matrix[positive_class].sum()
        return float(matrix[positive_class, positive_class] / denom) if denom else 0.0
    recalls = []
    for cls in range(matrix.shape[0]):
        denom = matrix[cls].sum()
        if denom:
            recalls.append(matrix[cls, cls] / denom)
    return float(np.mean(recalls)) if recalls else 0.0


def precision(y_true: np.ndarray, y_pred: np.ndarray, positive_class: int | None = None) -> float:
    """Precision for ``positive_class``, or macro-averaged precision when omitted."""
    y_true, y_pred = _validate(y_true, y_pred)
    matrix = _matrix_covering(y_true, y_pred, positive_class)
    if positive_class is not None:
        denom = matrix[:, positive_class].sum()
        return float(matrix[positive_class, positive_class] / denom) if denom else 0.0
    precisions = []
    for cls in range(matrix.shape[0]):
        denom = matrix[:, cls].sum()
        if denom:
            precisions.append(matrix[cls, cls] / denom)
    return float(np.mean(precisions)) if precisions else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive_class: int | None = None) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred, positive_class)
    r = recall(y_true, y_pred, positive_class)
    return 2 * p * r / (p + r) if (p + r) else 0.0
