"""The paper's Figure 5 training loop as a reusable function.

``train_classifier`` reproduces the structure of the figure exactly: read
hyperparameters with ``flor.arg``, open a ``flor.checkpointing`` block over
the model and optimizer, loop over epochs and steps with ``flor.loop``, log
the per-step loss and per-epoch accuracy/recall, and leave model selection
to later ``flor.dataframe("acc", "recall")`` queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import flor
from .dataset import DataLoader, Dataset
from .metrics import accuracy, recall
from .mlp import MLPClassifier
from .optim import SGD, Adam


@dataclass
class TrainingConfig:
    """Hyperparameters of one training run (defaults match Figure 5)."""

    hidden: int = 64
    epochs: int = 5
    batch_size: int = 32
    lr: float = 1e-3
    seed: int = 0
    optimizer: str = "adam"


@dataclass
class TrainingResult:
    """Final model plus the metric trajectory of the run."""

    model: MLPClassifier
    losses: list[float]
    accuracies: list[float]
    recalls: list[float]

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0

    @property
    def final_recall(self) -> float:
        return self.recalls[-1] if self.recalls else 0.0


def train_classifier(
    train_data: Dataset,
    test_data: Dataset,
    config: TrainingConfig | None = None,
    use_flor_args: bool = True,
) -> TrainingResult:
    """Train an MLP classifier under full FlorDB instrumentation.

    With ``use_flor_args`` the hyperparameters are read through ``flor.arg``
    (so replay restores the historical values); otherwise the passed
    ``config`` is used verbatim (useful for uninstrumented baselines).
    """
    config = config or TrainingConfig()
    if use_flor_args:
        hidden = flor.arg("hidden", config.hidden)
        num_epochs = flor.arg("epochs", config.epochs)
        batch_size = flor.arg("batch_size", config.batch_size)
        learning_rate = flor.arg("lr", config.lr)
        seed = flor.arg("seed", config.seed)
    else:
        hidden = config.hidden
        num_epochs = config.epochs
        batch_size = config.batch_size
        learning_rate = config.lr
        seed = config.seed

    net = MLPClassifier(
        in_features=train_data.num_features,
        num_classes=max(train_data.num_classes, test_data.num_classes),
        hidden_sizes=(hidden,),
        seed=seed,
    )
    if config.optimizer == "sgd":
        optimizer = SGD(net, lr=learning_rate)
    else:
        optimizer = Adam(net, lr=learning_rate)
    trainloader = DataLoader(train_data, batch_size=batch_size, shuffle=True, seed=seed)

    losses: list[float] = []
    accuracies: list[float] = []
    recalls: list[float] = []

    def run_epochs() -> None:
        for _epoch in flor.loop("epoch", range(num_epochs)) if use_flor_args else range(num_epochs):
            epoch_steps = flor.loop("step", trainloader) if use_flor_args else trainloader
            for inputs, labels in epoch_steps:
                optimizer.zero_grad()
                loss = net.loss_and_backward(inputs, labels)
                if use_flor_args:
                    flor.log("loss", loss)
                losses.append(loss)
                optimizer.step()
            predictions = net.predict(test_data.X)
            acc = accuracy(test_data.y, predictions)
            rec = recall(test_data.y, predictions)
            if use_flor_args:
                flor.log("acc", acc)
                flor.log("recall", rec)
            accuracies.append(acc)
            recalls.append(rec)

    if use_flor_args:
        with flor.checkpointing(model=net, optimizer=optimizer):
            run_epochs()
    else:
        run_epochs()
    return TrainingResult(model=net, losses=losses, accuracies=accuracies, recalls=recalls)


def make_synthetic_classification(
    samples: int = 400,
    features: int = 16,
    classes: int = 3,
    seed: int = 0,
    noise: float = 0.5,
) -> Dataset:
    """Linearly separable-ish synthetic classification data for tests/benchmarks."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 3.0, size=(classes, features))
    labels = rng.integers(0, classes, size=samples)
    X = centers[labels] + rng.normal(0.0, noise, size=(samples, features))
    return Dataset(X, labels)
