"""A small multi-layer perceptron classifier with manual backpropagation.

The model mirrors the torch usage in the paper's Figure 5 closely enough for
the checkpoint manager: ``state_dict()`` / ``load_state_dict()`` round-trip
all parameters, ``forward`` produces logits, and ``backward`` accumulates
gradients consumed by the optimizers in :mod:`repro.ml.optim`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import ModelError


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(x, 0.0)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of the true labels."""
    eps = 1e-12
    picked = probabilities[np.arange(len(labels)), labels]
    return float(-np.mean(np.log(picked + eps)))


class Linear:
    """A fully connected layer ``y = xW + b`` with gradient accumulation."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / in_features)
        self.W = rng.normal(0.0, scale, size=(in_features, out_features))
        self.b = np.zeros(out_features)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._last_input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._last_input = x
        return x @ self.W + self.b

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise ModelError("backward called before forward")
        self.dW += self._last_input.T @ grad_output
        self.db += grad_output.sum(axis=0)
        return grad_output @ self.W.T

    def zero_grad(self) -> None:
        self.dW[...] = 0.0
        self.db[...] = 0.0

    def parameters(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        return [("W", self.W, self.dW), ("b", self.b, self.db)]


class MLPClassifier:
    """Two-layer (configurable-depth) MLP with ReLU activations.

    Parameters
    ----------
    in_features / num_classes:
        Input dimensionality and number of output classes.
    hidden_sizes:
        Width of each hidden layer; an empty tuple yields a linear model.
    seed:
        Seed for weight initialization (reproducible training runs).
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden_sizes: tuple[int, ...] = (64,),
        seed: int = 0,
    ):
        if in_features <= 0 or num_classes <= 0:
            raise ModelError("in_features and num_classes must be positive")
        self.in_features = in_features
        self.num_classes = num_classes
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        rng = np.random.default_rng(seed)
        sizes = [in_features, *self.hidden_sizes, num_classes]
        self.layers = [Linear(sizes[i], sizes[i + 1], rng) for i in range(len(sizes) - 1)]
        self._activations: list[np.ndarray] = []

    # ---------------------------------------------------------------- forward
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for a batch of inputs (no softmax applied)."""
        x = np.asarray(x, dtype=np.float64)
        self._activations = []
        out = x
        for i, layer in enumerate(self.layers):
            out = layer.forward(out)
            if i < len(self.layers) - 1:
                self._activations.append(out)
                out = relu(out)
        return out

    __call__ = forward

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x), axis=1)

    # --------------------------------------------------------------- backward
    def loss_and_backward(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Cross-entropy loss plus gradient accumulation through all layers."""
        labels = np.asarray(labels, dtype=np.int64)
        logits = self.forward(x)
        probabilities = softmax(logits)
        loss = cross_entropy(probabilities, labels)
        grad = probabilities.copy()
        grad[np.arange(len(labels)), labels] -= 1.0
        grad /= len(labels)
        for i in range(len(self.layers) - 1, -1, -1):
            if i < len(self.layers) - 1:
                grad = grad * (self._activations[i] > 0)
            grad = self.layers[i].backward(grad)
        return loss

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # --------------------------------------------------------------- state IO
    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            state[f"layers.{i}.W"] = layer.W.copy()
            state[f"layers.{i}.b"] = layer.b.copy()
        return state

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            w_key, b_key = f"layers.{i}.W", f"layers.{i}.b"
            if w_key not in state or b_key not in state:
                raise ModelError(f"state dict is missing parameters for layer {i}")
            if state[w_key].shape != layer.W.shape or state[b_key].shape != layer.b.shape:
                raise ModelError(
                    f"state dict shapes {state[w_key].shape}/{state[b_key].shape} do not match layer {i}"
                )
            layer.W[...] = state[w_key]
            layer.b[...] = state[b_key]

    def parameter_count(self) -> int:
        return sum(layer.W.size + layer.b.size for layer in self.layers)
