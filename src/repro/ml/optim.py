"""Optimizers for the NumPy training substrate (SGD and Adam).

Both optimizers expose the torch-style trio the checkpoint manager relies
on: ``step()``, ``zero_grad()`` and ``state_dict()``/``load_state_dict()``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import ModelError
from .mlp import MLPClassifier


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, model: MLPClassifier, lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ModelError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self._velocity: list[dict[str, np.ndarray]] = [
            {"W": np.zeros_like(layer.W), "b": np.zeros_like(layer.b)} for layer in model.layers
        ]

    def zero_grad(self) -> None:
        self.model.zero_grad()

    def step(self) -> None:
        for layer, velocity in zip(self.model.layers, self._velocity):
            velocity["W"] = self.momentum * velocity["W"] - self.lr * layer.dW
            velocity["b"] = self.momentum * velocity["b"] - self.lr * layer.db
            layer.W += velocity["W"]
            layer.b += velocity["b"]

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "velocity": [{k: v.copy() for k, v in entry.items()} for entry in self._velocity],
        }

    def load_state_dict(self, state: Mapping) -> None:
        self.lr = state.get("lr", self.lr)
        self.momentum = state.get("momentum", self.momentum)
        velocity = state.get("velocity")
        if velocity is not None and len(velocity) == len(self._velocity):
            self._velocity = [{k: np.array(v) for k, v in entry.items()} for entry in velocity]


class Adam:
    """Adam optimizer (Kingma & Ba) over the MLP's layer parameters."""

    def __init__(
        self,
        model: MLPClassifier,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ModelError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m = [{"W": np.zeros_like(l.W), "b": np.zeros_like(l.b)} for l in model.layers]
        self._v = [{"W": np.zeros_like(l.W), "b": np.zeros_like(l.b)} for l in model.layers]

    def zero_grad(self) -> None:
        self.model.zero_grad()

    def step(self) -> None:
        self.t += 1
        bias1 = 1 - self.beta1 ** self.t
        bias2 = 1 - self.beta2 ** self.t
        for layer, m, v in zip(self.model.layers, self._m, self._v):
            for name, param, grad in layer.parameters():
                m[name] = self.beta1 * m[name] + (1 - self.beta1) * grad
                v[name] = self.beta2 * v[name] + (1 - self.beta2) * (grad * grad)
                m_hat = m[name] / bias1
                v_hat = v[name] / bias2
                param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "t": self.t,
            "m": [{k: v.copy() for k, v in entry.items()} for entry in self._m],
            "v": [{k: v.copy() for k, v in entry.items()} for entry in self._v],
        }

    def load_state_dict(self, state: Mapping) -> None:
        self.lr = state.get("lr", self.lr)
        self.t = state.get("t", self.t)
        if "m" in state and len(state["m"]) == len(self._m):
            self._m = [{k: np.array(v) for k, v in entry.items()} for entry in state["m"]]
        if "v" in state and len(state["v"]) == len(self._v):
            self._v = [{k: np.array(v) for k, v in entry.items()} for entry in state["v"]]
