"""The fleet front door: a thin, stateless project-hash proxy.

The router owns *placement*, never data: every ``/projects/<name>/...``
request is forwarded verbatim to the one worker the consistent-hash ring
assigns ``<name>`` to, and the response streams back untouched (the single
exception: ``/projects/<name>/stats`` is annotated with the serving worker
id, so the per-process durability counters in it can be attributed).
Project-less job routes (``/jobs``, ``/jobs/<id>/...``) round-robin over
the ring — the durable job store is one host-level SQLite file whose
claiming is CAS-safe across processes, so any worker can answer for it.

Failover is the router's other job: a proxy attempt that cannot reach the
owner marks it unreachable and *waits* (bounded by ``failover_timeout``)
for the supervisor to restart and re-register it, then retries.  Appends
are therefore at-least-once across a worker crash — matching the service's
existing ack semantics, where ``202`` means "handed to the writer" and the
client seal protocol is what upgrades acknowledged to durable.

Control-plane routes served locally (never proxied):

* ``POST /fleet/register`` / ``POST /fleet/heartbeat`` — worker agents;
* ``GET /fleet/workers`` — per-worker registry view (pid, url, liveness,
  heartbeat age, restarts);
* ``GET /fleet/resolve?project=<name>`` — the ring's answer for a project;
* ``GET /service/stats`` — fleet-wide aggregation of every worker's stats;
* ``GET /healthz`` — router liveness plus registered/alive worker counts;
* ``GET/PUT/DELETE /service/policy[/<selector>]`` — the fleet's QoS policy
  table (when the router was built with one; see below).

When the fleet runs with QoS (``repro serve --workers N --qos[-policy]``),
admission control lives *here*: the router holds the single policy view and
per-tenant token buckets, answers over-limit requests with ``429`` +
``Retry-After`` before any proxying, and its counters are the fleet-wide
admission truth (workers run with admission off and trust the router).
Proxied responses stream back untouched, so a worker-side header — or a
router-side denial's ``Retry-After`` — reaches the client unchanged.
"""

from __future__ import annotations

import json
import random
import threading
import time
from typing import Callable
from urllib.parse import urlencode

from ..errors import FleetError, TransportError
from ..qos import AdmissionController, PolicyStore
from ..service.app import (
    enforce_admission,
    register_policy_routes,
    request_header,
    validate_project_name,
)
from ..webapp.framework import (
    HttpError,
    JsonResponse,
    Request,
    Response,
    StreamingResponse,
    WebApp,
    sse_event,
)
from .supervisor import FleetSupervisor
from .transport import HttpClient

#: Seconds a proxy attempt will wait for a crashed owner to come back.
DEFAULT_FAILOVER_TIMEOUT = 20.0

#: Failover retry backoff: first retry after ``_BACKOFF_BASE`` seconds,
#: doubling (with jitter) up to ``_BACKOFF_CAP`` per attempt.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 1.0

#: ``/projects/<name>/...`` sub-paths that count against the tenant's
#: admission limits (the same set the single-process service enforces).
#: Everything else — stats, unknown paths — proxies unchecked.
_ADMITTED_SUBPATHS = (
    ("logs",),
    ("commit",),
    ("dataframe",),
    ("sql",),
    ("tail",),
    ("jobs", "backfill"),
)

#: Headers that describe the router↔worker connection, not the payload;
#: never relayed to the client (the router's own server re-frames the
#: stream with its own chunked transfer encoding).
_HOP_BY_HOP = frozenset(
    {
        "connection",
        "keep-alive",
        "transfer-encoding",
        "content-length",
        "date",
        "server",
        "te",
        "trailer",
        "upgrade",
    }
)


class FleetRouter:
    """Routes requests across a :class:`FleetSupervisor`'s workers.

    Implements the same ``handle(Request) -> Response`` surface as
    :class:`~repro.webapp.framework.WebApp`, so it drops straight into
    :func:`repro.service.server.make_server`.
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        *,
        failover_timeout: float = DEFAULT_FAILOVER_TIMEOUT,
        proxy_timeout: float = 60.0,
        policies: PolicyStore | None = None,
        admission: AdmissionController | None = None,
    ):
        self.supervisor = supervisor
        self.failover_timeout = failover_timeout
        self.proxy_timeout = proxy_timeout
        #: QoS lives at the front door: the router holds the one policy
        #: view (and per-tenant buckets) for the whole fleet, denying
        #: over-limit requests before they ever reach a worker — workers
        #: run with admission off and trust the router.  A worker crash
        #: therefore cannot reset admission counters; the chaos suite
        #: asserts they stay monotone across a SIGKILL + restart.
        self.policies = policies
        self.admission = admission
        self._clients: dict[str, HttpClient] = {}
        self._clients_lock = threading.Lock()
        self._control = self._build_control_app()

    # ------------------------------------------------------------- dispatch
    def handle(self, request: Request) -> Response:
        try:
            return self._dispatch(request)
        except HttpError as exc:
            # Raised by routing itself (project-name validation, admission
            # denials) — proxied handlers report their own errors in-band.
            # Mirror WebApp.handle: structured detail and headers survive,
            # which is how a router-side 429 carries Retry-After.
            payload: dict = {"error": str(exc)}
            if exc.detail is not None:
                payload["detail"] = exc.detail
            return JsonResponse(payload, status=exc.status, headers=exc.headers)

    def _dispatch(self, request: Request) -> Response:
        segments = [s for s in request.path.split("/") if s]
        if len(segments) >= 2 and segments[0] == "projects":
            name = validate_project_name(segments[1])
            if tuple(segments[2:]) in _ADMITTED_SUBPATHS:
                enforce_admission(self.admission, name, len(request.body))
            if segments[2:] == ["tail"]:
                return self._proxy_stream(self.supervisor.route(name), request)
            annotate = None
            if segments[2:] == ["stats"]:
                worker_id = self.supervisor.route(name)

                def annotate(payload: dict, worker_id=worker_id) -> dict:
                    payload["worker"] = worker_id
                    if self.admission is not None:
                        # The worker ran with admission off; the router's
                        # view is the authoritative one for this tenant.
                        payload["qos"] = self.admission.snapshot(name)
                    return payload

            return self._proxy(self.supervisor.route(name), request, annotate=annotate)
        if segments and segments[0] == "jobs":
            try:
                worker_id = self.supervisor.any_worker()
            except FleetError as exc:
                return self._unavailable(str(exc))
            if len(segments) == 3 and segments[2] == "tail":
                return self._proxy_stream(worker_id, request)
            return self._proxy(worker_id, request)
        return self._control.handle(request)

    def close(self) -> None:
        with self._clients_lock:
            clients, self._clients = list(self._clients.values()), {}
        for client in clients:
            client.close()
        if self.policies is not None:
            self.policies.close()

    @staticmethod
    def _unavailable(message: str) -> Response:
        """A 503 that tells the client when retrying is worth it: after
        roughly one backoff cap, the supervisor has had a chance to restart
        and re-register the worker."""
        return JsonResponse(
            {"error": message},
            status=503,
            headers={"Retry-After": f"{_BACKOFF_CAP:.3f}"},
        )

    # ---------------------------------------------------------------- proxy
    def _client_for(self, url: str) -> HttpClient:
        with self._clients_lock:
            client = self._clients.get(url)
            if client is None:
                client = HttpClient(url, timeout=self.proxy_timeout)
                self._clients[url] = client
            return client

    def _proxy(
        self,
        worker_id: str,
        request: Request,
        *,
        annotate: Callable[[dict], dict] | None = None,
    ) -> Response:
        query = urlencode(request.query)
        url = request.path + (f"?{query}" if query else "")
        headers = {"Content-Type": request.headers.get("Content-Type", "application/json")}
        deadline = time.monotonic() + self.failover_timeout
        attempt = 0
        while True:
            try:
                worker_url = self.supervisor.url_for(
                    worker_id, wait_timeout=max(0.0, deadline - time.monotonic())
                )
            except FleetError as exc:
                return self._unavailable(f"worker {worker_id!r} unavailable: {exc}")
            try:
                response = self._client_for(worker_url).request(
                    request.method, url, body=request.body, headers=headers
                )
            except TransportError as exc:
                # The owner vanished mid-request (crash, restart).  Flag it
                # so url_for blocks on re-registration instead of handing
                # back the same dead url, then retry — with exponential
                # backoff and jitter, so a hundred concurrent requests do
                # not hammer the reborn worker in lockstep — until the
                # failover budget runs out and the client gets a 503 with
                # a Retry-After instead of blocking forever.  Retried
                # appends are at-least-once.
                self.supervisor.note_unreachable(worker_id)
                now = time.monotonic()
                if now >= deadline:
                    return self._unavailable(f"worker {worker_id!r} unreachable: {exc}")
                delay = min(_BACKOFF_BASE * (2**attempt), _BACKOFF_CAP)
                delay *= 0.5 + random.random() / 2  # jitter in [0.5x, 1.0x)
                attempt += 1
                time.sleep(min(delay, max(deadline - now, 0.0)))
                continue
            if annotate is not None and response.ok:
                try:
                    payload = annotate(json.loads(response.body))
                except (json.JSONDecodeError, TypeError):  # pragma: no cover
                    return response
                return JsonResponse(payload, status=response.status)
            return response

    def _proxy_stream(self, worker_id: str, request: Request) -> Response | StreamingResponse:
        """Relay a streaming route (an SSE tail) without buffering it.

        Failover covers the *initial connect* only: once bytes are
        flowing, a worker crash simply ends the relayed stream — the
        subscriber reconnects (through the router, which by then routes
        to the restarted placement) presenting its ``Last-Event-ID``,
        and the relational backfill makes the hand-off lossless.
        Retrying mid-stream inside the router would instead risk
        re-framing rows the client already consumed.
        """
        query = urlencode(request.query)
        url = request.path + (f"?{query}" if query else "")
        headers: dict[str, str] = {}
        last_id = request_header(request, "Last-Event-ID")
        if last_id is not None:
            headers["Last-Event-ID"] = last_id
        deadline = time.monotonic() + self.failover_timeout
        attempt = 0
        while True:
            try:
                worker_url = self.supervisor.url_for(
                    worker_id, wait_timeout=max(0.0, deadline - time.monotonic())
                )
            except FleetError as exc:
                return self._unavailable(f"worker {worker_id!r} unavailable: {exc}")
            try:
                upstream = self._client_for(worker_url).stream(url, headers=headers)
            except TransportError as exc:
                self.supervisor.note_unreachable(worker_id)
                now = time.monotonic()
                if now >= deadline:
                    return self._unavailable(f"worker {worker_id!r} unreachable: {exc}")
                delay = min(_BACKOFF_BASE * (2**attempt), _BACKOFF_CAP)
                delay *= 0.5 + random.random() / 2  # jitter, as in _proxy
                attempt += 1
                time.sleep(min(delay, max(deadline - now, 0.0)))
                continue
            passthrough = {
                k: v for k, v in upstream.headers.items() if k.lower() not in _HOP_BY_HOP
            }
            if not upstream.ok:
                # Upstream refused the subscription (404 unknown job, 503
                # backpressure + Retry-After): a small buffered answer.
                body = upstream.read()
                return Response(
                    body=body.decode("utf-8", "replace"),
                    status=upstream.status,
                    headers=passthrough,
                )

            def relay(upstream=upstream):
                try:
                    yield from upstream.chunks()
                except TransportError:
                    # Worker died mid-stream; end the relay cleanly so the
                    # subscriber notices EOF and reconnects with its cursor.
                    return

            return StreamingResponse(
                relay(), status=upstream.status, headers=passthrough
            )

    # -------------------------------------------------------------- control
    def _build_control_app(self) -> WebApp:
        app = WebApp("fleet-router")
        supervisor = self.supervisor

        if self.policies is not None:
            # One policy table for the whole fleet, administered here: the
            # same GET/PUT/DELETE surface (and structured 409 conflicts) as
            # the single-process service.
            register_policy_routes(app, lambda: self.policies, lambda: self.admission)

        def _body(request: Request) -> dict:
            payload = request.get_json()
            if not isinstance(payload, dict):
                raise HttpError(400, "request body must be a JSON object")
            return payload

        @app.route("/healthz")
        def healthz(_request: Request):
            summary = supervisor.summary()
            return JsonResponse({"status": "ok", "role": "router", "fleet": summary})

        @app.route("/fleet/register", methods=("POST",))
        def register(request: Request):
            payload = _body(request)
            try:
                view = supervisor.on_register(
                    str(payload.get("worker_id", "")),
                    str(payload.get("url", "")),
                    int(payload.get("pid", 0)),
                )
            except FleetError as exc:
                raise HttpError(409, str(exc)) from exc
            return JsonResponse({"worker": view})

        @app.route("/fleet/heartbeat", methods=("POST",))
        def heartbeat(request: Request):
            payload = _body(request)
            try:
                view = supervisor.on_heartbeat(
                    str(payload.get("worker_id", "")), int(payload.get("pid", 0))
                )
            except FleetError as exc:
                raise HttpError(409, str(exc)) from exc
            return JsonResponse({"worker": view})

        @app.route("/fleet/workers")
        def workers(_request: Request):
            return JsonResponse(
                {"fleet": supervisor.summary(), "workers": supervisor.worker_views()}
            )

        @app.route("/fleet/resolve")
        def resolve(request: Request):
            project = request.arg("project")
            if not project:
                raise HttpError(400, "the 'project' query parameter is required")
            project = validate_project_name(project)
            try:
                worker_id = supervisor.route(project)
            except FleetError as exc:
                raise HttpError(503, str(exc)) from exc
            try:
                url = supervisor.url_for(worker_id)
            except FleetError:
                url = None
            return JsonResponse({"project": project, "worker": worker_id, "url": url})

        @app.route("/service/stats")
        def service_stats(_request: Request):
            per_worker: dict[str, dict] = {}
            open_shards: list[str] = []
            capacity = 0
            pool_totals: dict[str, int] = {}
            jobs: dict | None = None
            for view in supervisor.worker_views():
                worker_id = view["id"]
                if not (view["registered"] and view["alive"]):
                    per_worker[worker_id] = {"error": "worker not registered", **view}
                    continue
                try:
                    stats = self._client_for(view["url"]).get_json("/service/stats")
                except TransportError as exc:
                    per_worker[worker_id] = {"error": str(exc), **view}
                    continue
                per_worker[worker_id] = stats
                open_shards.extend(stats.get("open_shards", []))
                capacity += int(stats.get("capacity", 0))
                for key, value in stats.get("pool", {}).items():
                    pool_totals[key] = pool_totals.get(key, 0) + int(value)
                if jobs is None:
                    # The job store is host-level and shared; every worker
                    # reads the same SQLite file, so one answer covers all.
                    jobs = stats.get("jobs")
            payload = {
                "role": "router",
                "fleet": supervisor.summary(),
                "workers": per_worker,
                "open_shards": sorted(open_shards),
                "capacity": capacity,
                "pool": pool_totals,
                "jobs": jobs or {},
            }
            if self.admission is not None:
                # Admission happens here, not on workers, so the router's
                # own counters ARE the fleet-wide admission view.
                payload["qos"] = self.admission.snapshot()
            return JsonResponse(payload)

        def _telemetry_fanin() -> dict:
            """One fleet-wide telemetry snapshot: counters and gauges are
            summed across workers (they are cumulative, so sums stay
            cumulative and consumers difference them for rates);
            histograms stay per-worker — percentiles do not add."""
            per_worker: dict[str, dict] = {}
            counters: dict[str, float] = {}
            gauges: dict[str, float] = {}
            tail_totals = {
                "streams": 0,
                "subscribers": 0,
                "subscribed_total": 0,
                "evicted_total": 0,
            }
            jobs: dict | None = None
            for view in supervisor.worker_views():
                worker_id = view["id"]
                if not (view["registered"] and view["alive"]):
                    per_worker[worker_id] = {"error": "worker not registered", **view}
                    continue
                try:
                    snap = self._client_for(view["url"]).get_json("/service/telemetry")
                except TransportError as exc:
                    per_worker[worker_id] = {"error": str(exc), **view}
                    continue
                per_worker[worker_id] = snap
                for key, value in snap.get("counters", {}).items():
                    counters[key] = counters.get(key, 0) + value
                for key, value in snap.get("gauges", {}).items():
                    gauges[key] = gauges.get(key, 0) + value
                tail = snap.get("tail", {})
                for key in tail_totals:
                    tail_totals[key] += int(tail.get(key, 0))
                if jobs is None:
                    # Shared host-level job store; one worker's view covers
                    # the fleet (same reasoning as /service/stats).
                    jobs = snap.get("jobs")
            payload = {
                "role": "router",
                "fleet": supervisor.summary(),
                "workers": per_worker,
                "counters": counters,
                "gauges": gauges,
                "tail": tail_totals,
                "jobs": jobs or {},
            }
            if self.admission is not None:
                payload["qos"] = self.admission.snapshot()
            return payload

        @app.route("/service/telemetry")
        def service_telemetry(request: Request):
            if (request.arg("stream") or "").lower() in ("1", "true", "yes", "sse"):
                raw = request.arg("interval") or "2.0"
                try:
                    interval = float(raw)
                except ValueError as exc:
                    raise HttpError(400, f"interval must be a number, got {raw!r}") from exc
                interval = min(max(interval, 0.05), 60.0)

                def generate():
                    seq = 0
                    while True:
                        seq += 1
                        yield sse_event(_telemetry_fanin(), event="telemetry", id=seq)
                        time.sleep(interval)

                return StreamingResponse(generate())
            return JsonResponse(_telemetry_fanin())

        return app
