"""Fleet supervisor: spawn, monitor, restart and drain worker processes.

``repro serve --workers N`` turns the serve process into a *control plane*:
the data path moves into N single-tenant-pool worker processes (each an
ordinary ``repro serve`` on an ephemeral port), and this supervisor owns
their lifecycle plus the consistent-hash ring that maps each project to
exactly one worker.  The split follows the admission/routing separation
the ROADMAP calls for: the front process decides *placement* and holds no
shard data, so a router restart loses nothing and a worker crash loses at
most unflushed buffers (which the client seal protocol already covers).

Lifecycle protocol:

* **spawn** — workers start with ``--fleet-worker <id> --fleet-register
  <router-url>`` and ``--port 0``; only the worker knows its bound port,
  so membership is completed by the worker's ``/fleet/register`` POST
  (see :mod:`repro.fleet.worker`).  A worker id joins the ring on its
  *first* registration and keeps its ring position across restarts —
  placement is a function of worker *identity*, not process incarnation.
* **monitor** — a daemon thread polls every handle: a dead process (or a
  live one whose heartbeat went stale, i.e. a hung worker) is respawned
  under the same id.  The router keeps routing that id's projects and
  simply waits for the re-registration before proxying.
* **drain (scale-down / shutdown)** — ``POST /fleet/drain`` makes the
  worker flush and seal (close) every open shard, *then* the id leaves
  the ring, then one more drain sweeps anything that landed during the
  window, then SIGTERM.  Sealing before reassignment matters because two
  processes must never hold writable handles on one shard's SQLite file.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from ..errors import FleetError, TransportError
from .ring import HashRing
from .transport import HttpClient
from .worker import DEFAULT_HEARTBEAT_INTERVAL

#: Heartbeats older than this many seconds mark a worker as hung.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0
#: Seconds between monitor sweeps.
DEFAULT_POLL_INTERVAL = 0.25


def worker_ids(count: int) -> list[str]:
    return [f"w{i}" for i in range(count)]


@dataclass
class WorkerHandle:
    """Everything the supervisor knows about one worker id."""

    worker_id: str
    process: subprocess.Popen | None = None
    url: str | None = None
    pid: int | None = None  # pid that registered (matches process.pid)
    registered: bool = False
    last_heartbeat: float | None = None
    restarts: int = 0
    draining: bool = False
    #: Set on every (re-)registration; routing waits on it during failover.
    ready: threading.Event = field(default_factory=threading.Event)

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def heartbeat_age(self) -> float | None:
        if self.last_heartbeat is None:
            return None
        return time.monotonic() - self.last_heartbeat

    def view(self) -> dict:
        return {
            "id": self.worker_id,
            "url": self.url,
            "pid": self.pid,
            "alive": self.alive(),
            "registered": self.registered,
            "heartbeat_age": self.heartbeat_age(),
            "restarts": self.restarts,
            "draining": self.draining,
        }


class FleetSupervisor:
    """Owns the worker registry, the hash ring, and worker lifecycles.

    Parameters
    ----------
    argv_for:
        ``(worker_id, register_url) -> argv`` building the worker's command
        line.  The CLI uses :func:`default_worker_argv`; tests can inject a
        stub worker.
    workers:
        Number of workers to run (ids ``w0..w{N-1}``).
    heartbeat_timeout:
        Seconds without a heartbeat before a live worker is declared hung
        and recycled.
    """

    def __init__(
        self,
        argv_for: Callable[[str, str], list[str]],
        *,
        workers: int,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ):
        if workers < 1:
            raise FleetError(f"a fleet needs at least 1 worker, got {workers}")
        self._argv_for = argv_for
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.ring = HashRing()
        self._handles: dict[str, WorkerHandle] = {
            worker_id: WorkerHandle(worker_id) for worker_id in worker_ids(workers)
        }
        self._lock = threading.RLock()
        self._register_url: str | None = None
        self._stopping = False
        self._monitor: threading.Thread | None = None
        self._rr = 0  # round-robin cursor for project-less routes

    # ------------------------------------------------------------- lifecycle
    def start(self, register_url: str, *, startup_timeout: float = 30.0) -> "FleetSupervisor":
        """Spawn every worker and wait until all have registered."""
        self._register_url = register_url
        with self._lock:
            for handle in self._handles.values():
                self._spawn_locked(handle)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()
        self.wait_registered(timeout=startup_timeout)
        return self

    def _spawn_locked(self, handle: WorkerHandle) -> None:
        argv = self._argv_for(handle.worker_id, self._register_url or "")
        env = {**os.environ}
        src_dir = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        handle.registered = False
        handle.ready.clear()
        # Worker stdout/stderr are discarded: the supervisor's own stdout is
        # a parsed protocol (the ready banner), and N workers interleaving
        # their banners into it would corrupt that.
        handle.process = subprocess.Popen(
            argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )

    def wait_registered(self, *, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                pending = [
                    h.worker_id
                    for h in self._handles.values()
                    if not h.draining and not h.registered
                ]
                dead = [
                    h.worker_id
                    for h in self._handles.values()
                    if not h.draining and h.process is not None and not h.alive()
                ]
            if dead:
                raise FleetError(f"worker(s) {dead} exited before registering")
            if not pending:
                return
            time.sleep(0.05)
        raise FleetError(f"worker(s) {pending} did not register within {timeout}s")

    # ------------------------------------------------------- control callbacks
    def on_register(self, worker_id: str, url: str, pid: int) -> dict:
        """A worker announced itself (first boot or post-restart)."""
        with self._lock:
            handle = self._handles.get(worker_id)
            if handle is None:
                raise FleetError(f"unknown worker id {worker_id!r}")
            if handle.process is not None and pid != handle.process.pid:
                # A registration from a pid we did not spawn (or an old
                # incarnation racing its own death) must not hijack routing.
                raise FleetError(
                    f"stale registration for {worker_id!r}: pid {pid} is not the "
                    f"supervised process {handle.process.pid}"
                )
            handle.url = url
            handle.pid = pid
            handle.registered = True
            handle.last_heartbeat = time.monotonic()
            if worker_id not in self.ring:
                self.ring.add(worker_id)
            handle.ready.set()
            return handle.view()

    def on_heartbeat(self, worker_id: str, pid: int) -> dict:
        with self._lock:
            handle = self._handles.get(worker_id)
            if handle is None:
                raise FleetError(f"unknown worker id {worker_id!r}")
            if pid == handle.pid:
                handle.last_heartbeat = time.monotonic()
            return handle.view()

    # ---------------------------------------------------------------- routing
    def route(self, project: str) -> str:
        """The worker id owning ``project`` (stable across restarts)."""
        with self._lock:
            return self.ring.route(project)

    def any_worker(self) -> str:
        """Round-robin over ring members, for project-less routes (``/jobs``)."""
        with self._lock:
            members = self.ring.workers()
            if not members:
                raise FleetError("no workers on the ring")
            self._rr = (self._rr + 1) % len(members)
            return members[self._rr]

    def url_for(self, worker_id: str, *, wait_timeout: float = 0.0) -> str:
        """The worker's current base url, waiting out a restart window."""
        deadline = time.monotonic() + wait_timeout
        while True:
            with self._lock:
                handle = self._handles.get(worker_id)
                if handle is None:
                    raise FleetError(f"unknown worker id {worker_id!r}")
                if handle.registered and handle.url:
                    return handle.url
                ready = handle.ready
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FleetError(f"worker {worker_id!r} is not registered")
            ready.wait(timeout=min(remaining, 0.25))

    def note_unreachable(self, worker_id: str) -> None:
        """A proxy attempt failed: stop routing to the stale url immediately.

        The monitor will notice the dead process within a poll interval
        anyway; clearing ``registered`` here makes the very next proxy
        retry *wait* for the restart instead of burning its failover
        budget on a connection-refused loop.
        """
        with self._lock:
            handle = self._handles.get(worker_id)
            if handle is not None and not handle.alive():
                handle.registered = False
                handle.ready.clear()

    # ----------------------------------------------------------------- views
    def worker_views(self) -> list[dict]:
        with self._lock:
            return [handle.view() for handle in self._handles.values()]

    def summary(self) -> dict:
        with self._lock:
            handles = list(self._handles.values())
            return {
                "workers": len(handles),
                "registered": sum(1 for h in handles if h.registered),
                "alive": sum(1 for h in handles if h.alive()),
                "restarts": sum(h.restarts for h in handles),
                "ring": self.ring.workers(),
            }

    # ---------------------------------------------------------------- monitor
    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(self.poll_interval)
            with self._lock:
                if self._stopping:
                    return
                for handle in self._handles.values():
                    if handle.draining or handle.process is None:
                        continue
                    if not handle.alive():
                        self._restart_locked(handle, reason="exited")
                    elif (
                        handle.registered
                        and (handle.heartbeat_age() or 0.0) > self.heartbeat_timeout
                    ):
                        # Alive but silent: hung worker. Kill hard, respawn.
                        try:
                            handle.process.kill()
                            handle.process.wait(timeout=5)
                        except OSError:
                            pass
                        self._restart_locked(handle, reason="heartbeat stale")

    def _restart_locked(self, handle: WorkerHandle, *, reason: str) -> None:
        handle.restarts += 1
        handle.registered = False
        handle.ready.clear()
        self._spawn_locked(handle)

    # ------------------------------------------------------------ scale-down
    def _drain_worker(self, url: str) -> int:
        """Ask one worker to flush + seal every open shard; rows flushed."""
        with HttpClient(url, timeout=30.0) as client:
            return int(client.post_json("/fleet/drain").get("flushed", 0))

    def stop_worker(self, worker_id: str, *, drain: bool = True, timeout: float = 20.0) -> int | None:
        """Drain hand-off: seal shards, leave the ring, drain again, SIGTERM.

        Returns the worker's exit code (None if it was never spawned).
        """
        with self._lock:
            handle = self._handles.get(worker_id)
            if handle is None:
                raise FleetError(f"unknown worker id {worker_id!r}")
            handle.draining = True  # monitor must not resurrect it
            url = handle.url if handle.registered else None
        if drain and url is not None and handle.alive():
            try:
                self._drain_worker(url)
            except TransportError:
                pass  # a crashed worker has nothing buffered to hand off
        with self._lock:
            if worker_id in self.ring:
                self.ring.remove(worker_id)
        # Second sweep: anything routed to it between the first drain and
        # the ring change is flushed before the process goes away.
        if drain and url is not None and handle.alive():
            try:
                self._drain_worker(url)
            except TransportError:
                pass
        code: int | None = None
        if handle.process is not None:
            if handle.alive():
                handle.process.send_signal(signal.SIGTERM)
                try:
                    handle.process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    handle.process.kill()
                    handle.process.wait(timeout=5)
            code = handle.process.returncode
        with self._lock:
            handle.registered = False
            handle.url = None
        return code

    def shutdown(self, *, drain: bool = True) -> dict[str, int | None]:
        """Stop the monitor, then drain and stop every worker."""
        with self._lock:
            self._stopping = True
            ids = list(self._handles)
        if self._monitor is not None:
            self._monitor.join(timeout=self.poll_interval * 8)
        codes = {}
        for worker_id in ids:
            codes[worker_id] = self.stop_worker(worker_id, drain=drain)
        return codes


def default_worker_argv(
    root: Path | str,
    *,
    sync_flush: bool = False,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    extra: Iterable[str] = (),
) -> Callable[[str, str], list[str]]:
    """Build the ``argv_for`` hook spawning real ``repro serve`` workers.

    ``extra`` carries the per-worker service knobs (``--flush-size``,
    ``--job-workers``, ...) exactly as the operator passed them to the
    supervisor's own command line.
    """

    def argv_for(worker_id: str, register_url: str) -> list[str]:
        argv = [sys.executable, "-m", "repro.cli", "--project", str(root)]
        if sync_flush:
            argv.append("--sync-flush")
        argv += [
            "serve",
            "--port",
            "0",
            "--quiet",
            "--fleet-worker",
            worker_id,
            "--fleet-register",
            register_url,
            "--fleet-heartbeat",
            str(heartbeat_interval),
            *extra,
        ]
        return argv

    return argv_for
