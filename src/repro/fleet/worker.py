"""Worker-side fleet agent: registration and heartbeats.

A fleet worker is an ordinary ``repro serve`` process — same service, same
pool, same embedded job workers — plus this agent.  The supervisor spawns
the worker with ``--fleet-worker <id> --fleet-register <router-url>`` and
an ephemeral port; only the worker knows which port it actually bound, so
the control plane is push-based:

1. once the worker's socket is listening, :meth:`WorkerAgent.start` POSTs
   ``{worker_id, url, pid}`` to ``/fleet/register`` (retrying — the router
   accepts connections from the instant it binds, but its handler loop may
   start a beat later);
2. a daemon thread then POSTs ``/fleet/heartbeat`` every ``interval``
   seconds.  The supervisor treats a stale heartbeat as a hung worker and
   restarts it, so a worker that deadlocks is recycled even though its
   process is technically alive.

The agent also feeds the worker's own ``/service/stats``: ``heartbeat_age``
is seconds since the last heartbeat the router acknowledged, which makes
"this worker looks healthy to itself but the router stopped hearing it"
visible from either side.

Heartbeats double as an orphan detector.  A transient router hiccup must
not kill the worker, but a worker whose supervisor *died* (SIGKILLed test
harness, OOM-killed front process) would otherwise run forever with
nothing routing to it.  When every heartbeat has failed continuously for
``orphan_timeout`` seconds the agent fires ``on_orphaned`` — wired by the
CLI to the same shutdown event SIGTERM uses, so the abandoned worker
drains its shards and exits instead of leaking.  The timeout is a
comfortable multiple of the supervisor's hung-worker threshold: a *live*
supervisor restarts a silent worker long before the worker gives up on a
silent supervisor.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable

from ..errors import TransportError
from .transport import HttpClient

#: Default seconds between heartbeats; the supervisor's staleness timeout
#: must be a comfortable multiple of this.
DEFAULT_HEARTBEAT_INTERVAL = 1.0
#: Seconds of *continuously failing* heartbeats after which the worker
#: concludes its supervisor is gone and fires ``on_orphaned``.  Must stay
#: well above the supervisor's ``DEFAULT_HEARTBEAT_TIMEOUT`` (10s): if the
#: supervisor is alive it recycles a silent worker first.
DEFAULT_ORPHAN_TIMEOUT = 30.0


class WorkerAgent:
    """Registers one worker with the fleet control plane and keeps beating."""

    def __init__(
        self,
        worker_id: str,
        register_url: str,
        *,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        orphan_timeout: float | None = DEFAULT_ORPHAN_TIMEOUT,
        on_orphaned: Callable[[], None] | None = None,
    ):
        self.worker_id = worker_id
        self.interval = interval
        self.orphan_timeout = orphan_timeout
        self.url: str | None = None
        self.pid = os.getpid()
        self._on_orphaned = on_orphaned
        self._client = HttpClient(register_url, timeout=5.0)
        self._last_ok: float | None = None
        self._fail_since: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle
    def start(self, url: str, *, register_timeout: float = 10.0) -> "WorkerAgent":
        """Register under ``url`` (the worker's bound address) and start beating."""
        self.url = url
        payload = {"worker_id": self.worker_id, "url": url, "pid": self.pid}
        deadline = time.monotonic() + register_timeout
        while True:
            try:
                self._client.post_json("/fleet/register", payload)
                break
            except TransportError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._last_ok = time.monotonic()
        self._thread = threading.Thread(
            target=self._beat, name=f"fleet-heartbeat-{self.worker_id}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._client.close()

    # ------------------------------------------------------------ heartbeats
    def _beat(self) -> None:
        payload = {"worker_id": self.worker_id, "pid": self.pid}
        while not self._stop.wait(self.interval):
            try:
                self._client.post_json("/fleet/heartbeat", payload)
                self._last_ok = time.monotonic()
                self._fail_since = None
            except TransportError:
                # A transient hiccup (router saturated, socket churn) must
                # not kill the worker; the age just grows until a beat
                # lands again.  But failing *continuously* past the orphan
                # timeout means the supervisor process is gone — nothing
                # routes here anymore, so drain and exit.
                now = time.monotonic()
                if self._fail_since is None:
                    self._fail_since = now
                if (
                    self._on_orphaned is not None
                    and self.orphan_timeout is not None
                    and now - self._fail_since >= self.orphan_timeout
                ):
                    self._on_orphaned()
                    return
                continue

    def orphaned_for(self) -> float | None:
        """Seconds heartbeats have been failing continuously, if they are."""
        if self._fail_since is None:
            return None
        return time.monotonic() - self._fail_since

    def heartbeat_age(self) -> float | None:
        """Seconds since the router last acknowledged a heartbeat."""
        if self._last_ok is None:
            return None
        return time.monotonic() - self._last_ok

    def info(self) -> dict:
        """The worker-identity block surfaced in ``/service/stats``."""
        return {
            "id": self.worker_id,
            "url": self.url,
            "pid": self.pid,
            "heartbeat_age": self.heartbeat_age(),
        }
