"""Keep-alive HTTP client for fleet peers (and load generators).

Two call sites need the same thing:

* the router proxies every data-plane request to a worker, and paying a
  TCP handshake per proxied request would double the per-request cost the
  fleet exists to shrink;
* :class:`~repro.workloads.ServiceWorkload` drives ``repro serve`` over
  real sockets in T8/T14, and a client that reconnects per request
  measures connection setup, not server throughput.

:class:`HttpClient` keeps one persistent :class:`http.client.HTTPConnection`
per ``(thread, host:port)`` in thread-local storage — each workload thread
(or long-lived router handler thread) reuses its own connection for the
whole run, which is exactly the keep-alive behaviour ``ThreadingHTTPServer``
with ``protocol_version = "HTTP/1.1"`` supports on the other side.

A request that fails on a cached connection (the peer restarted, an idle
keep-alive socket timed out) is retried once on a fresh connection; a
failure on the fresh connection raises :class:`~repro.errors.TransportError`
so callers can run their own failover (the router waits for the worker to
re-register, then retries).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Any, Mapping
from urllib.parse import urlsplit

from ..errors import TransportError
from ..webapp.framework import Response, SSEStream

#: Connection-level failures worth one retry on a fresh socket.
_RETRYABLE = (
    http.client.HTTPException,
    ConnectionError,
    socket.timeout,
    BrokenPipeError,
    OSError,
)


class HttpClient:
    """JSON-over-HTTP client with per-thread persistent connections.

    ``get``/``post`` mirror :class:`~repro.webapp.framework.TestClient`, so
    anything written against the in-process client (``ServiceWorkload``,
    tests) drives a real server unchanged.  Non-2xx responses are returned,
    not raised — status handling stays with the caller, like TestClient.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.netloc:
            raise TransportError(f"expected an http://host:port base url, got {base_url!r}")
        self.base_url = f"http://{parts.netloc}"
        self.netloc = parts.netloc
        self.timeout = timeout
        self._local = threading.local()
        # Every connection ever opened, for close(): thread-locals are not
        # enumerable from the closing thread.
        self._all: list[http.client.HTTPConnection] = []
        self._all_lock = threading.Lock()

    # ---------------------------------------------------------- connections
    def _connection(self, *, fresh: bool = False) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if fresh and conn is not None:
            conn.close()
            conn = None
        if conn is None:
            conn = http.client.HTTPConnection(self.netloc, timeout=self.timeout)
            self._local.conn = conn
            with self._all_lock:
                self._all.append(conn)
        return conn

    def close(self) -> None:
        """Close every connection this client ever opened (any thread's)."""
        with self._all_lock:
            conns, self._all = self._all, []
        for conn in conns:
            conn.close()

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- requests
    def request(
        self,
        method: str,
        url: str,
        *,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        """One round trip; retries once on a stale keep-alive connection."""
        send_headers = dict(headers or {})
        send_headers.setdefault("Content-Type", "application/json")
        for attempt in (0, 1):
            conn = self._connection(fresh=attempt > 0)
            try:
                conn.request(method, url, body=body or None, headers=send_headers)
                raw = conn.getresponse()
                payload = raw.read()
                return Response(
                    body=payload.decode("utf-8"),
                    status=raw.status,
                    headers={k: v for k, v in raw.getheaders()},
                )
            except _RETRYABLE as exc:
                # A dead keep-alive socket surfaces only when reused; give
                # the request one fresh connection before declaring the peer
                # unreachable.
                if attempt == 1:
                    raise TransportError(
                        f"{method} http://{self.netloc}{url} failed: {exc}"
                    ) from exc

    def stream(
        self, url: str, *, headers: Mapping[str, str] | None = None
    ) -> "StreamedResponse":
        """GET a streaming route (an SSE tail) without buffering the body.

        Unlike :meth:`request`, the connection is *dedicated*: a stream
        holds its socket for the life of the subscription, so it must not
        poison the thread-local keep-alive connection other requests
        reuse.  Connection failures raise :class:`TransportError`
        immediately — resuming a broken stream is the caller's job (the
        cursor in ``Last-Event-ID`` makes it lossless).
        """
        conn = http.client.HTTPConnection(self.netloc, timeout=self.timeout)
        with self._all_lock:
            self._all.append(conn)
        try:
            conn.request("GET", url, headers=dict(headers or {}))
            raw = conn.getresponse()
        except _RETRYABLE as exc:
            conn.close()
            raise TransportError(
                f"GET http://{self.netloc}{url} failed: {exc}"
            ) from exc
        return StreamedResponse(conn, raw)

    # TestClient-compatible surface -----------------------------------------
    def get(self, url: str) -> Response:
        return self.request("GET", url)

    def post(self, url: str, json_body: Any = None, body: bytes = b"") -> Response:
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
        return self.request("POST", url, body=body)

    def put(self, url: str, json_body: Any = None, body: bytes = b"") -> Response:
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
        return self.request("PUT", url, body=body)

    def delete(self, url: str) -> Response:
        return self.request("DELETE", url)

    def get_json(self, url: str) -> Any:
        """GET expecting a 2xx JSON body; raises TransportError otherwise."""
        response = self.get(url)
        if not response.ok:
            raise TransportError(
                f"GET http://{self.netloc}{url} returned {response.status}: "
                f"{response.body[:200]}"
            )
        return response.json()

    def post_json(self, url: str, payload: Any = None) -> Any:
        """POST expecting a 2xx JSON body; raises TransportError otherwise."""
        response = self.post(url, json_body=payload if payload is not None else {})
        if not response.ok:
            raise TransportError(
                f"POST http://{self.netloc}{url} returned {response.status}: "
                f"{response.body[:200]}"
            )
        return response.json()


class StreamedResponse:
    """An in-flight streaming response on its own dedicated connection.

    ``chunks()`` yields decoded-transfer-encoding bytes as they arrive
    (``http.client`` strips the chunked framing; ``read1`` returns per
    network read instead of blocking for a full buffer, which is what
    keeps SSE latency at one round trip).  A connection failure mid-body
    raises :class:`~repro.errors.TransportError` from ``chunks()`` —
    stream consumers resume by reconnecting with their cursor.
    """

    def __init__(self, conn: http.client.HTTPConnection, raw: http.client.HTTPResponse):
        self._conn = conn
        self._raw = raw
        self.status = raw.status
        self.headers = {k: v for k, v in raw.getheaders()}

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def read(self) -> bytes:
        """Drain the remaining body (for non-200s that are really buffered)."""
        try:
            return self._raw.read()
        finally:
            self.close()

    def chunks(self, size: int = 8192):
        try:
            while True:
                try:
                    data = self._raw.read1(size)
                except _RETRYABLE as exc:
                    raise TransportError(f"stream interrupted: {exc}") from exc
                if not data:
                    return
                yield data
        finally:
            self.close()

    def sse(self) -> SSEStream:
        """Wrap the body in an :class:`SSEStream` for event-level iteration."""
        return SSEStream(self.chunks(), headers=self.headers, status=self.status)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "StreamedResponse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
