"""Consistent-hash ring: stable ``project -> worker`` placement.

The fleet router must answer "which worker owns this project?" the same
way on every request, from every thread, in every process — and keep most
of those answers stable when a worker joins or leaves.  A modulo table
(``hash(p) % N``) reshuffles nearly every project when N changes; the
classic consistent-hash ring moves only ~1/N of them.

Each worker id is hashed onto ``vnodes`` points of a circular keyspace;
a project routes to the owner of the first point clockwise of its own
hash.  Virtual nodes smooth the load split (with one point per worker,
two adjacent workers can end up owning wildly uneven arcs).

Hashes come from :func:`hashlib.blake2b`, never Python's builtin
``hash`` — the builtin is salted per process (``PYTHONHASHSEED``), and a
ring whose placement differs between the router and a debugging shell
would be useless.  Determinism across processes is tested by spawning a
fresh interpreter.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b

from ..errors import FleetError

#: Virtual nodes per worker.  64 keeps the max/min arc ratio tight enough
#: for single-digit worker counts while the ring stays tiny (N*64 points).
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    """Deterministic 64-bit position on the ring for ``key``."""
    return int.from_bytes(blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


class HashRing:
    """A consistent-hash ring over worker ids.

    Not thread-safe by itself; the supervisor serializes membership
    changes and routing reads behind its registry lock.
    """

    def __init__(self, *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._workers: set[str] = set()
        # Sorted, parallel arrays: ring position -> owning worker id.
        self._points: list[int] = []
        self._owners: list[str] = []

    # ------------------------------------------------------------ membership
    def add(self, worker_id: str) -> None:
        """Add ``worker_id``'s virtual nodes; duplicate ids are an error."""
        if not worker_id:
            raise FleetError("worker id must be a non-empty string")
        if worker_id in self._workers:
            raise FleetError(f"worker {worker_id!r} is already on the ring")
        self._workers.add(worker_id)
        for i in range(self.vnodes):
            point = _point(f"{worker_id}#{i}")
            index = bisect_right(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, worker_id)

    def remove(self, worker_id: str) -> None:
        """Remove ``worker_id``; its arcs fall to the next worker clockwise."""
        if worker_id not in self._workers:
            raise FleetError(f"worker {worker_id!r} is not on the ring")
        self._workers.discard(worker_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != worker_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def workers(self) -> list[str]:
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    # --------------------------------------------------------------- routing
    def route(self, project: str) -> str:
        """The worker id owning ``project`` (first ring point clockwise)."""
        if not self._points:
            raise FleetError("cannot route: the ring has no workers")
        index = bisect_right(self._points, _point(project))
        if index == len(self._points):  # wrap past the top of the keyspace
            index = 0
        return self._owners[index]

    def assignments(self, projects: list[str]) -> dict[str, str]:
        """``{project: worker_id}`` for each of ``projects``."""
        return {project: self.route(project) for project in projects}
