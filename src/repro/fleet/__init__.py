"""repro.fleet — multi-process worker fleet (ROADMAP: machine-level scaling).

One ``repro serve`` process caps every shard's write throughput at one
GIL and one SQLite writer lock, no matter how well the queue batches.
This package splits the service into a control plane and N data planes:

* :class:`~repro.fleet.ring.HashRing` — deterministic consistent-hash
  placement of ``project -> worker`` (only ~1/N of projects move on a
  membership change);
* :class:`~repro.fleet.transport.HttpClient` — keep-alive JSON client
  (one persistent connection per thread) used by the router's proxy path
  and by socket-driving load generators;
* :class:`~repro.fleet.worker.WorkerAgent` — worker-side registration +
  heartbeat against the router's control routes;
* :class:`~repro.fleet.supervisor.FleetSupervisor` — spawns the worker
  processes, restarts crashed or hung ones under the same ring identity,
  and runs the drain hand-off (flush + seal shards, leave the ring,
  sweep, SIGTERM) on scale-down;
* :class:`~repro.fleet.router.FleetRouter` — the thin stateless front
  that proxies data-plane requests to shard owners and aggregates
  ``/service/stats`` across the fleet;
* :func:`~repro.fleet.run.serve_fleet` — the ``repro serve --workers N``
  entry point wiring all of the above to one socket.

The T14 benchmark measures the payoff: near-linear batched-ingest scaling
from 1 to 4 workers on the T8-shape workload.
"""

from .ring import HashRing
from .router import FleetRouter
from .run import serve_fleet
from .supervisor import FleetSupervisor, WorkerHandle, default_worker_argv, worker_ids
from .transport import HttpClient
from .worker import WorkerAgent

__all__ = [
    "FleetRouter",
    "FleetSupervisor",
    "HashRing",
    "HttpClient",
    "WorkerAgent",
    "WorkerHandle",
    "default_worker_argv",
    "serve_fleet",
    "worker_ids",
]
