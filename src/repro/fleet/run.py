"""Fleet entry point: bind the router, boot the workers, serve until told.

Bootstrap ordering is the subtle part.  Workers register by POSTing to the
router, so the router's socket must be *accepting and serving* before the
first worker spawns — but ``serve_forever`` blocks.  The sequence here:

1. bind the router server (ephemeral port allowed) — now the register URL
   is known;
2. start ``serve_forever`` on a background thread — registrations can be
   processed;
3. spawn the workers and block until every one has registered;
4. announce readiness (the CLI banner) and park on the shutdown event.

Shutdown inverts it: stop accepting, then drain + SIGTERM the workers
(each seals its shards before leaving the ring — see
:meth:`~repro.fleet.supervisor.FleetSupervisor.stop_worker`).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Iterable

from ..qos import AdmissionController, PolicyStore
from ..service.server import make_server
from .router import FleetRouter
from .supervisor import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    FleetSupervisor,
    default_worker_argv,
)
from .worker import DEFAULT_HEARTBEAT_INTERVAL


def serve_fleet(
    root: Path | str,
    *,
    workers: int,
    host: str = "127.0.0.1",
    port: int = 8230,
    worker_args: Iterable[str] = (),
    sync_flush: bool = False,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
    quiet: bool = False,
    startup_timeout: float = 60.0,
    ready: Callable[[str, int, FleetSupervisor], None] | None = None,
    shutdown_event: threading.Event | None = None,
    qos: bool = False,
    qos_policy_file: Path | str | None = None,
) -> None:
    """Run a worker fleet until ``shutdown_event`` (or KeyboardInterrupt).

    With ``qos`` (or a ``qos_policy_file``, which implies it), admission
    control runs on the *router*: one policy store and one set of
    per-tenant buckets front the whole fleet, and workers are spawned
    without QoS flags — they trust the router.
    """
    supervisor = FleetSupervisor(
        default_worker_argv(
            root,
            sync_flush=sync_flush,
            heartbeat_interval=heartbeat_interval,
            extra=worker_args,
        ),
        workers=workers,
        heartbeat_timeout=heartbeat_timeout,
    )
    policies: PolicyStore | None = None
    admission: AdmissionController | None = None
    if qos_policy_file is not None:
        policies = PolicyStore.load_file(root, qos_policy_file)
        qos = True
    elif qos:
        policies = PolicyStore.open(root)
    if qos and policies is not None:
        admission = AdmissionController(policies)
    router = FleetRouter(supervisor, policies=policies, admission=admission)
    server = make_server(router, host, port, quiet=quiet)  # type: ignore[arg-type]
    bound_host, bound_port = server.server_address[:2]
    register_url = f"http://{bound_host}:{int(bound_port)}"
    serving = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.1}, daemon=True
    )
    serving.start()
    stop = shutdown_event if shutdown_event is not None else threading.Event()
    try:
        supervisor.start(register_url, startup_timeout=startup_timeout)
        if ready is not None:
            ready(str(bound_host), int(bound_port), supervisor)
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
    finally:
        server.shutdown()
        serving.join(timeout=2.0)
        server.server_close()
        supervisor.shutdown()
        router.close()
