"""Multiversion hindsight logging.

The :class:`HindsightEngine` is the orchestration layer that turns "I wish I
had logged X" into data: given the latest source of a script (containing the
newly added logging statements), it walks every prior version epoch recorded
in ``ts2vid``, propagates the new statements into that version's source,
replays the run differentially, and merges the newly materialized records
into the database — each one attributed to the *original* run timestamp, so
``flor.dataframe`` immediately shows the new column across all of history.

Replay across versions is embarrassingly parallel; the engine supports
serial, thread-pool and process-pool execution (benchmark T4 measures the
scaling shape).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ReplayError
from .propagation import PropagationResult, propagate_statements
from .replay import ReplayPlan, ReplayResult, replay_source, replay_worker
from .session import Session


@dataclass
class VersionBackfill:
    """Per-version outcome of a hindsight backfill."""

    vid: str
    tstamp: str
    filename: str
    injected_statements: int = 0
    skipped_statements: int = 0
    replay: ReplayResult | None = None
    error: str | None = None
    #: Full propagation outcome (patch plan, anchors, dropped statements),
    #: kept so dry runs can report the plan without executing any replay.
    propagation: PropagationResult | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and (self.replay is None or self.replay.ok)


@dataclass
class BackfillReport:
    """Aggregate outcome of one :meth:`HindsightEngine.backfill` call."""

    filename: str
    versions: list[VersionBackfill] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def new_records(self) -> int:
        return sum(v.replay.new_log_records for v in self.versions if v.replay is not None)

    @property
    def versions_replayed(self) -> int:
        return sum(1 for v in self.versions if v.replay is not None and v.replay.ok)

    @property
    def iterations_executed(self) -> int:
        return sum(v.replay.iterations_executed for v in self.versions if v.replay is not None)

    @property
    def iterations_skipped(self) -> int:
        return sum(v.replay.iterations_skipped for v in self.versions if v.replay is not None)

    def summary(self) -> dict[str, int | float]:
        return {
            "versions": len(self.versions),
            "versions_replayed": self.versions_replayed,
            "new_records": self.new_records,
            "iterations_executed": self.iterations_executed,
            "iterations_skipped": self.iterations_skipped,
            "wall_seconds": round(self.wall_seconds, 6),
        }


class HindsightEngine:
    """Coordinates propagation + replay across all prior versions of a script."""

    def __init__(self, session: Session):
        self.session = session

    # ------------------------------------------------------------- inventory
    def version_epochs(self, filename: str) -> list[tuple[str, str]]:
        """``(vid, tstamp)`` pairs of epochs whose version contains ``filename``.

        Epochs are returned oldest-first.  The timestamp is the epoch start
        (``ts_start``), which is the tstamp stamped on that epoch's records.
        """
        self.session.flush()
        epochs: list[tuple[str, str]] = []
        for record in self.session.ts2vid.all(self.session.projid):
            if self.session.repository.file_exists(record.vid, filename):
                epochs.append((record.vid, record.ts_start))
        return epochs

    def historical_source(self, vid: str, filename: str) -> str:
        return self.session.repository.read_file(vid, filename)

    # -------------------------------------------------------------- backfill
    def backfill(
        self,
        filename: str,
        new_source: str | None = None,
        *,
        versions: list[str] | None = None,
        plan: ReplayPlan | None = None,
        parallelism: str = "serial",
        max_workers: int = 4,
        include_latest: bool = True,
        extra_globals: dict | None = None,
        dry_run: bool = False,
    ) -> BackfillReport:
        """Propagate the latest logging statements into prior versions and replay.

        Parameters
        ----------
        filename:
            Script to backfill (path relative to the project root, as stored
            in the version repository and stamped on records).
        new_source:
            Source containing the new logging statements.  Defaults to the
            file's current contents in the working directory.
        versions:
            Restrict to these version ids; default is every epoch that
            contains the file.
        plan:
            Replay plan (differential execution).  Default replays all
            iterations, which is required when the new statement could fire
            in any iteration.
        parallelism:
            ``"serial"``, ``"thread"`` or ``"process"``.
        include_latest:
            Whether to also replay the most recent epoch (it usually already
            has the values, but replaying keeps the view complete when the
            statements were added after its run).
        dry_run:
            Stop after propagation: the report carries each version's patch
            plan (statements injected, anchors, statements dropped as
            unparseable) on ``VersionBackfill.propagation`` but nothing is
            replayed and no records are written.
        """
        started = time.perf_counter()
        if new_source is None:
            path = self.session.config.root / filename
            if not path.exists():
                raise ReplayError(f"no working-copy source for {filename}; pass new_source")
            new_source = path.read_text()
        epochs = self.version_epochs(filename)
        if versions is not None:
            # An explicit version list asks for each *version* once.  A no-op
            # commit maps a fresh epoch onto its parent's vid, so membership
            # alone would replay that vid once per epoch — double-writing its
            # records and breaking the job executor's exactly-once checkpoint
            # contract.  Keep the oldest epoch per requested vid.
            wanted = set(versions)
            first_epoch: dict[str, str] = {}
            for vid, ts in epochs:
                if vid in wanted and vid not in first_epoch:
                    first_epoch[vid] = ts
            epochs = [(vid, ts) for vid, ts in epochs if first_epoch.get(vid) == ts]
        if not include_latest and epochs:
            epochs = epochs[:-1]
        report = BackfillReport(filename=filename)
        if not epochs:
            report.wall_seconds = time.perf_counter() - started
            return report

        tasks: list[tuple[VersionBackfill, str]] = []
        for vid, tstamp in epochs:
            entry = VersionBackfill(vid=vid, tstamp=tstamp, filename=filename)
            try:
                old_source = self.historical_source(vid, filename)
                propagation: PropagationResult = propagate_statements(old_source, new_source)
                entry.injected_statements = propagation.injected_count
                entry.skipped_statements = len(propagation.skipped)
                entry.propagation = propagation
                tasks.append((entry, propagation.patched_source))
            except Exception as exc:
                entry.error = f"{type(exc).__name__}: {exc}"
            report.versions.append(entry)

        if not dry_run:
            self._execute(tasks, plan or ReplayPlan.all(), parallelism, max_workers, extra_globals)
        report.wall_seconds = time.perf_counter() - started
        return report

    # -------------------------------------------------------------- execution
    def _execute(
        self,
        tasks: list[tuple[VersionBackfill, str]],
        plan: ReplayPlan,
        parallelism: str,
        max_workers: int,
        extra_globals: dict | None,
    ) -> None:
        if parallelism not in {"serial", "thread", "process"}:
            raise ReplayError(f"unknown parallelism mode: {parallelism!r}")
        if parallelism == "serial" or len(tasks) <= 1:
            for entry, source in tasks:
                entry.replay = self._replay_one(source, entry, plan, extra_globals, collect_only=False)
            return
        if parallelism == "thread":
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(self._replay_one, source, entry, plan, extra_globals, True)
                    for entry, source in tasks
                ]
                for (entry, _), future in zip(tasks, futures):
                    entry.replay = future.result()
            self._merge_collected(tasks)
            return
        # Process pool: ship picklable task tuples, merge results in the parent.
        worker_args = [
            (
                str(self.session.config.root),
                self.session.projid,
                self.session.db.path,
                source,
                entry.filename,
                entry.tstamp,
                plan.to_dict(),
            )
            for entry, source in tasks
        ]
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            results = list(pool.map(replay_worker, worker_args))
        for (entry, _), result in zip(tasks, results):
            entry.replay = result
        self._merge_collected(tasks)

    def _replay_one(
        self,
        source: str,
        entry: VersionBackfill,
        plan: ReplayPlan,
        extra_globals: dict | None,
        collect_only: bool,
    ) -> ReplayResult:
        return replay_source(
            source,
            config=self.session.config,
            filename=entry.filename,
            tstamp=entry.tstamp,
            db=self.session.db,
            plan=plan,
            extra_globals=extra_globals,
            collect_only=collect_only,
        )

    def _merge_collected(self, tasks: list[tuple[VersionBackfill, str]]) -> None:
        """Write records collected by parallel workers, deduplicating by key."""
        existing = {
            (r.tstamp, r.filename, r.ctx_id, r.value_name)
            for r in self.session.logs.all(self.session.projid)
        }
        new_logs = []
        new_loops = []
        for entry, _ in tasks:
            result = entry.replay
            if result is None or not result.ok:
                continue
            for record in result.pending_logs:
                key = (record.tstamp, record.filename, record.ctx_id, record.value_name)
                if key in existing:
                    continue
                existing.add(key)
                new_logs.append(record)
            new_loops.extend(result.pending_loops)
        if new_logs:
            self.session.logs.add_many(new_logs)
        if new_loops:
            self.session.loops.add_many(new_loops)
