"""Construction of the pivoted ``flor.dataframe`` view.

The ``logs`` table is long-format (one row per logged value); the user-facing
view is wide-format with one column per requested log name.  This module
defines the pivot semantics used throughout the reproduction:

1. Every requested log record is annotated with its loop dimensions
   (``document``, ``page``, ``epoch``, ``step``, ...) via
   :func:`repro.relational.queries.long_format_records`.
2. Names that co-occur within at least one run (same ``tstamp`` and
   ``filename``) form a *group*; each group pivots into rows keyed by
   ``(projid, tstamp, filename, dimensions...)``.  Values logged at a
   shallower nesting level than the group's deepest level are broadcast down
   to the deeper rows of the same run (e.g. a per-epoch ``acc`` repeats on
   every per-step ``loss`` row); when several shallow records share a
   position the **last** write wins, matching append order.
3. Groups that never co-occur (e.g. ``first_page`` logged by
   ``featurize.py`` and ``page_color`` logged by the feedback web app) are
   combined left-to-right with a left join on ``projid`` plus the dimension
   columns they share.  The joined row keeps the left group's ``filename``
   and the later of the two timestamps, which lets ``flor.utils.latest``
   select the most recent feedback exactly as in Figure 6 of the paper.

The pivot is computed **per run** and composed afterwards: one
:class:`RunPivot` per ``(projid, tstamp, filename)`` run, concatenated in
first-appearance order, then cross-group joins.  Run granularity is what
makes the view incrementally maintainable — the materialized pivot-view
cache in :mod:`repro.query` re-pivots only the runs an append touched and
reuses every other run's rows verbatim, going through the *same* functions
as the cold rebuild below so the two paths agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..dataframe import DataFrame, from_records, merge
from ..relational.database import Database
from ..relational.queries import AnnotatedLog, BASE_DIMENSIONS, long_format_records

#: Columns that identify a run (as opposed to a loop position within a run).
RUN_COLUMNS = list(BASE_DIMENSIONS)

#: A run is identified by ``(projid, tstamp, filename)``.
RunKey = tuple[str, str, str]


def build_dataframe(
    db: Database,
    projid: str,
    names: Sequence[str],
    *,
    tstamp_range: tuple[str | None, str | None] | None = None,
) -> DataFrame:
    """Build the pivoted view for ``names`` (see module docstring for semantics).

    This is the *cold* path: it fetches the annotated records through the
    relational pushdown layer and pivots from scratch.  ``tstamp_range``
    bounds the scan inside SQLite.  Cached, incrementally-maintained reads
    go through :class:`repro.query.QueryEngine` instead, which reuses the
    pivot primitives below.
    """
    names = [str(n) for n in names]
    if not names:
        return DataFrame()
    records = long_format_records(db, projid, names, tstamp_range=tstamp_range)
    if not records:
        return from_records([], columns=RUN_COLUMNS + names)
    groups = co_occurrence_groups(runs_by_name_from_records(records, names), names)
    by_run = records_by_run(records)
    frames = []
    for group in groups:
        wanted = set(group)
        pivots = [pivot_run(run_key, recs, wanted) for run_key, recs in by_run.items()]
        frames.append(compose_group(pivots, group))
    return finalize(frames, names)


# ---------------------------------------------------------------------------
# Grouping
# ---------------------------------------------------------------------------

def runs_by_name_from_records(
    records: Iterable[AnnotatedLog], names: Sequence[str]
) -> dict[str, set[tuple[str, str]]]:
    """Map each requested name to the set of ``(tstamp, filename)`` runs using it."""
    runs_by_name: dict[str, set[tuple[str, str]]] = {name: set() for name in names}
    for record in records:
        if record.value_name in runs_by_name:
            runs_by_name[record.value_name].add((record.tstamp, record.filename))
    return runs_by_name


def co_occurrence_groups(
    runs_by_name: Mapping[str, set[tuple[str, str]]], names: Sequence[str]
) -> list[list[str]]:
    """Partition requested names into groups that co-occur within some run.

    Group order follows the order of ``names`` so that the first requested
    name anchors the left side of any cross-group join (Figure 6 relies on
    this: ``dataframe("first_page", "page_color")`` keeps every page row).
    The *partition* itself is order-independent — co-occurrence is symmetric
    — which is what lets the pivot-view cache serve every permutation of the
    same name set from one entry.
    """
    groups: list[list[str]] = []
    assigned: set[str] = set()
    for name in names:
        if name in assigned:
            continue
        group = [name]
        assigned.add(name)
        changed = True
        while changed:
            changed = False
            for other in names:
                if other in assigned:
                    continue
                if any(runs_by_name[other] & runs_by_name[member] for member in group):
                    group.append(other)
                    assigned.add(other)
                    changed = True
        groups.append(group)
    return groups


def records_by_run(records: Iterable[AnnotatedLog]) -> dict[RunKey, list[AnnotatedLog]]:
    """Bucket annotated records per run, runs in first-appearance order."""
    by_run: dict[RunKey, list[AnnotatedLog]] = {}
    for record in records:
        key = (record.projid, record.tstamp, record.filename)
        by_run.setdefault(key, []).append(record)
    return by_run


# ---------------------------------------------------------------------------
# Pivoting one run of one group
# ---------------------------------------------------------------------------

@dataclass
class RunPivot:
    """The pivoted rows of one run, restricted to one co-occurrence group.

    ``rows`` are complete row dicts in emission order; ``dim_order`` lists
    the run's loop names outermost-first as they first appeared.  The pivot
    of a group is the concatenation of its runs' rows (:func:`compose_group`)
    — this is the unit the incremental cache recomputes when a run changes.
    """

    run_key: RunKey
    rows: list[dict[str, Any]] = field(default_factory=list)
    dim_order: list[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.rows


def pivot_run(
    run_key: RunKey, records: Iterable[AnnotatedLog], group_names: set[str]
) -> RunPivot:
    """Pivot one run's records (filtered to ``group_names``) into wide rows.

    Records at the run's deepest nesting level key the rows; shallower
    records broadcast onto every row whose dimension tuple extends theirs,
    with last-write-wins semantics when several shallow records target the
    same position (broadcasts follow append order, so re-logged values
    overwrite — the regression pinned by the dataframe-view tests).
    """
    run_records = [r for r in records if r.value_name in group_names]
    if not run_records:
        return RunPivot(run_key)
    dim_order: list[str] = []
    for record in run_records:
        for dim in record.dimensions:
            if dim not in dim_order:
                dim_order.append(dim)
    max_depth = max(r.depth for r in run_records)
    deep_records = [r for r in run_records if r.depth == max_depth]
    shallow_records = [r for r in run_records if r.depth < max_depth]

    rows: dict[tuple, dict[str, Any]] = {}
    row_order: list[tuple] = []
    for record in deep_records:
        key = record.dimension_key()
        if key not in rows:
            rows[key] = _new_row(record)
            row_order.append(key)
        rows[key][record.value_name] = record.value
    for record in shallow_records:
        prefix = record.dimension_key()
        matched = False
        for key in row_order:
            if key[: len(prefix)] == prefix:
                rows[key][record.value_name] = record.value
                matched = True
        if not matched:
            key = prefix
            if key not in rows:
                rows[key] = _new_row(record)
                row_order.append(key)
            rows[key][record.value_name] = record.value
    return RunPivot(run_key, [rows[key] for key in row_order], dim_order)


def _new_row(record: AnnotatedLog) -> dict[str, Any]:
    row: dict[str, Any] = {
        "projid": record.projid,
        "tstamp": record.tstamp,
        "filename": record.filename,
    }
    row.update(record.dimensions)
    row.update(record.dimension_values)
    return row


def compose_group(run_pivots: Iterable[RunPivot], group: Sequence[str]) -> DataFrame:
    """Concatenate a group's per-run pivots into one wide frame.

    Dimension columns merge across runs in run order (first-seen); rows keep
    per-run emission order.  Cells for dimensions a run never entered come
    back null, exactly as in a from-scratch pivot.
    """
    pivots = [p for p in run_pivots if not p.empty]
    if not pivots:
        return DataFrame()
    dim_order: list[str] = []
    for pivot in pivots:
        for dim in pivot.dim_order:
            if dim not in dim_order:
                dim_order.append(dim)
    columns = RUN_COLUMNS + _dimension_columns(dim_order) + list(group)
    return from_records((row for pivot in pivots for row in pivot.rows), columns)


def _dimension_columns(dim_order: Sequence[str]) -> list[str]:
    columns: list[str] = []
    for dim in dim_order:
        columns.append(dim)
        columns.append(f"{dim}_value")
    return columns


# ---------------------------------------------------------------------------
# Joining groups and finishing the view
# ---------------------------------------------------------------------------

def finalize(frames: Sequence[DataFrame], names: Sequence[str]) -> DataFrame:
    """Fold group frames left-to-right and settle the output schema.

    Requested names that were never logged still appear as all-null columns,
    so queries like Figure 6's ``infer.page_color.isna()`` work before any
    feedback exists.
    """
    frames = [f for f in frames if not f.empty]
    if not frames:
        return from_records([], columns=RUN_COLUMNS + list(names))
    result = frames[0]
    for frame in frames[1:]:
        result = _join_groups(result, frame)
    for name in names:
        if name not in result:
            result[name] = [None] * len(result)
    return _order_columns(result, names)


def _join_groups(left: DataFrame, right: DataFrame) -> DataFrame:
    """Left-join two group pivots on projid plus their shared dimension values.

    The join aligns on the ``<loop>_value`` columns rather than the raw
    iteration indices: two files logging about the same document share the
    document *name*, while their loop enumeration order may differ (the
    feedback app labels documents in the order experts open them).
    """
    shared_values = [
        c
        for c in left.columns
        if c in right.columns and c.endswith("_value") and c not in RUN_COLUMNS
    ]
    if shared_values:
        keys = ["projid"] + shared_values
    else:
        shared_dims = [c for c in left.columns if c in right.columns and c not in RUN_COLUMNS]
        keys = ["projid"] + shared_dims
    right = _latest_per_key(right, keys)
    joined = merge(left, right, on=keys, how="left", suffixes=("", "_rhs"))
    # Collapse run columns: keep the left filename, take the max tstamp.
    if "tstamp_rhs" in joined:
        tstamps = []
        for row in joined.to_records():
            lhs, rhs = row.get("tstamp"), row.get("tstamp_rhs")
            tstamps.append(max(v for v in (lhs, rhs) if v is not None) if (lhs or rhs) else None)
        joined["tstamp"] = tstamps
        joined = joined.drop("tstamp_rhs")
    for column in list(joined.columns):
        if column.endswith("_rhs"):
            joined = joined.drop(column)
    return joined


def _latest_per_key(frame: DataFrame, keys: Sequence[str]) -> DataFrame:
    """Keep only the most recent row (by tstamp) for each join-key combination.

    The right-hand side of a cross-source join represents "the current value
    of this metadata for this entity" (e.g. the newest expert label for a
    page); older contributions remain queryable directly but do not fan out
    the join.
    """
    if frame.empty or "tstamp" not in frame:
        return frame
    usable_keys = [k for k in keys if k in frame.columns]
    best_index: dict[tuple, int] = {}
    for i in range(len(frame)):
        row = frame.row(i)
        key = tuple(row.get(k) for k in usable_keys)
        current = best_index.get(key)
        if current is None or (row.get("tstamp") or "") >= (frame.row(current).get("tstamp") or ""):
            best_index[key] = i
    return frame.take(sorted(best_index.values()))


def _order_columns(frame: DataFrame, names: Sequence[str]) -> DataFrame:
    """Stable column order: run columns, dimensions, then requested names."""
    run_cols = [c for c in RUN_COLUMNS if c in frame.columns]
    name_cols = [c for c in names if c in frame.columns]
    dim_cols = [c for c in frame.columns if c not in run_cols and c not in name_cols]
    return frame.select(run_cols + dim_cols + name_cols)
