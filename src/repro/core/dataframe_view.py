"""Construction of the pivoted ``flor.dataframe`` view.

The ``logs`` table is long-format (one row per logged value); the user-facing
view is wide-format with one column per requested log name.  This module
defines the pivot semantics used throughout the reproduction:

1. Every requested log record is annotated with its loop dimensions
   (``document``, ``page``, ``epoch``, ``step``, ...) via
   :func:`repro.relational.queries.long_format_records`.
2. Names that co-occur within at least one run (same ``tstamp`` and
   ``filename``) form a *group*; each group pivots into rows keyed by
   ``(projid, tstamp, filename, dimensions...)``.  Values logged at a
   shallower nesting level than the group's deepest level are broadcast down
   to the deeper rows of the same run (e.g. a per-epoch ``acc`` repeats on
   every per-step ``loss`` row).
3. Groups that never co-occur (e.g. ``first_page`` logged by
   ``featurize.py`` and ``page_color`` logged by the feedback web app) are
   combined left-to-right with a left join on ``projid`` plus the dimension
   columns they share.  The joined row keeps the left group's ``filename``
   and the later of the two timestamps, which lets ``flor.utils.latest``
   select the most recent feedback exactly as in Figure 6 of the paper.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..dataframe import DataFrame, from_records, merge
from ..relational.database import Database
from ..relational.queries import AnnotatedLog, BASE_DIMENSIONS, long_format_records

#: Columns that identify a run (as opposed to a loop position within a run).
RUN_COLUMNS = list(BASE_DIMENSIONS)


def build_dataframe(db: Database, projid: str, names: Sequence[str]) -> DataFrame:
    """Build the pivoted view for ``names`` (see module docstring for semantics)."""
    names = [str(n) for n in names]
    if not names:
        return DataFrame()
    records = long_format_records(db, projid, names)
    if not records:
        return from_records([], columns=RUN_COLUMNS + names)
    groups = _co_occurrence_groups(records, names)
    frames = [_pivot_group(records, group) for group in groups]
    frames = [f for f in frames if not f.empty]
    if not frames:
        return from_records([], columns=RUN_COLUMNS + names)
    result = frames[0]
    for frame in frames[1:]:
        result = _join_groups(result, frame)
    # Requested names that were never logged still appear as all-null columns,
    # so queries like Figure 6's ``infer.page_color.isna()`` work before any
    # feedback exists.
    for name in names:
        if name not in result:
            result[name] = [None] * len(result)
    return _order_columns(result, names)


# ---------------------------------------------------------------------------
# Grouping
# ---------------------------------------------------------------------------

def _co_occurrence_groups(records: list[AnnotatedLog], names: Sequence[str]) -> list[list[str]]:
    """Partition requested names into groups that co-occur within some run.

    Group order follows the order of ``names`` so that the first requested
    name anchors the left side of any cross-group join (Figure 6 relies on
    this: ``dataframe("first_page", "page_color")`` keeps every page row).
    """
    runs_by_name: dict[str, set[tuple[str, str]]] = {name: set() for name in names}
    for record in records:
        if record.value_name in runs_by_name:
            runs_by_name[record.value_name].add((record.tstamp, record.filename))
    groups: list[list[str]] = []
    assigned: set[str] = set()
    for name in names:
        if name in assigned:
            continue
        group = [name]
        assigned.add(name)
        changed = True
        while changed:
            changed = False
            for other in names:
                if other in assigned:
                    continue
                if any(runs_by_name[other] & runs_by_name[member] for member in group):
                    group.append(other)
                    assigned.add(other)
                    changed = True
        groups.append(group)
    return groups


# ---------------------------------------------------------------------------
# Pivoting one group
# ---------------------------------------------------------------------------

def _pivot_group(records: list[AnnotatedLog], group: list[str]) -> DataFrame:
    """Pivot the records of one co-occurrence group into a wide frame."""
    wanted = set(group)
    group_records = [r for r in records if r.value_name in wanted]
    if not group_records:
        return DataFrame()
    dim_order = _dimension_order(group_records)

    # Index records per run so that broadcasting stays within a run.
    runs: dict[tuple[str, str, str], list[AnnotatedLog]] = {}
    for record in group_records:
        runs.setdefault((record.projid, record.tstamp, record.filename), []).append(record)

    rows: dict[tuple, dict[str, Any]] = {}
    row_order: list[tuple] = []
    for run_key, run_records in runs.items():
        max_depth = max(r.depth for r in run_records)
        deep_records = [r for r in run_records if r.depth == max_depth]
        shallow_records = [r for r in run_records if r.depth < max_depth]
        if not deep_records:
            deep_records = run_records
            shallow_records = []
        for record in deep_records:
            key = run_key + record.dimension_key()
            if key not in rows:
                rows[key] = _new_row(record, dim_order)
                row_order.append(key)
            rows[key][record.value_name] = record.value
        for record in shallow_records:
            prefix = record.dimension_key()
            matched = False
            for key in row_order:
                if key[:3] != run_key:
                    continue
                if key[3: 3 + len(prefix)] == prefix:
                    rows[key].setdefault(record.value_name, record.value)
                    rows[key][record.value_name] = record.value
                    matched = True
            if not matched:
                key = run_key + prefix
                if key not in rows:
                    rows[key] = _new_row(record, dim_order)
                    row_order.append(key)
                rows[key][record.value_name] = record.value
    columns = RUN_COLUMNS + _dimension_columns(dim_order) + group
    return from_records((rows[key] for key in row_order), columns)


def _new_row(record: AnnotatedLog, dim_order: list[str]) -> dict[str, Any]:
    row: dict[str, Any] = {
        "projid": record.projid,
        "tstamp": record.tstamp,
        "filename": record.filename,
    }
    for dim in dim_order:
        row[dim] = record.dimensions.get(dim)
        row[f"{dim}_value"] = record.dimension_values.get(f"{dim}_value")
    return row


def _dimension_order(records: list[AnnotatedLog]) -> list[str]:
    """Loop names ordered outermost-first as they appear across records."""
    order: list[str] = []
    for record in records:
        for dim in record.dimensions:
            if dim not in order:
                order.append(dim)
    return order


def _dimension_columns(dim_order: list[str]) -> list[str]:
    columns: list[str] = []
    for dim in dim_order:
        columns.append(dim)
        columns.append(f"{dim}_value")
    return columns


# ---------------------------------------------------------------------------
# Joining groups
# ---------------------------------------------------------------------------

def _join_groups(left: DataFrame, right: DataFrame) -> DataFrame:
    """Left-join two group pivots on projid plus their shared dimension values.

    The join aligns on the ``<loop>_value`` columns rather than the raw
    iteration indices: two files logging about the same document share the
    document *name*, while their loop enumeration order may differ (the
    feedback app labels documents in the order experts open them).
    """
    shared_values = [
        c
        for c in left.columns
        if c in right.columns and c.endswith("_value") and c not in RUN_COLUMNS
    ]
    if shared_values:
        keys = ["projid"] + shared_values
    else:
        shared_dims = [c for c in left.columns if c in right.columns and c not in RUN_COLUMNS]
        keys = ["projid"] + shared_dims
    right = _latest_per_key(right, keys)
    joined = merge(left, right, on=keys, how="left", suffixes=("", "_rhs"))
    # Collapse run columns: keep the left filename, take the max tstamp.
    if "tstamp_rhs" in joined:
        tstamps = []
        for row in joined.to_records():
            lhs, rhs = row.get("tstamp"), row.get("tstamp_rhs")
            tstamps.append(max(v for v in (lhs, rhs) if v is not None) if (lhs or rhs) else None)
        joined["tstamp"] = tstamps
        joined = joined.drop("tstamp_rhs")
    for column in list(joined.columns):
        if column.endswith("_rhs"):
            joined = joined.drop(column)
    return joined


def _latest_per_key(frame: DataFrame, keys: Sequence[str]) -> DataFrame:
    """Keep only the most recent row (by tstamp) for each join-key combination.

    The right-hand side of a cross-source join represents "the current value
    of this metadata for this entity" (e.g. the newest expert label for a
    page); older contributions remain queryable directly but do not fan out
    the join.
    """
    if frame.empty or "tstamp" not in frame:
        return frame
    usable_keys = [k for k in keys if k in frame.columns]
    best_index: dict[tuple, int] = {}
    for i in range(len(frame)):
        row = frame.row(i)
        key = tuple(row.get(k) for k in usable_keys)
        current = best_index.get(key)
        if current is None or (row.get("tstamp") or "") >= (frame.row(current).get("tstamp") or ""):
            best_index[key] = i
    return frame.take(sorted(best_index.values()))


def _order_columns(frame: DataFrame, names: Sequence[str]) -> DataFrame:
    """Stable column order: run columns, dimensions, then requested names."""
    run_cols = [c for c in RUN_COLUMNS if c in frame.columns]
    name_cols = [c for c in names if c in frame.columns]
    dim_cols = [c for c in frame.columns if c not in run_cols and c not in name_cols]
    return frame.select(run_cols + dim_cols + name_cols)
