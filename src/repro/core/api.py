"""The ``flor``-style public facade.

The paper's API is a module with free functions (``flor.log``,
``flor.loop``, ...).  Here those functions live on a :class:`FlorFacade`
instance exported as ``repro.flor`` (and re-exported as ``repro.core.api.flor``)
so that the same call sites work in three situations:

* ordinary scripts using the process-wide default session,
* tests and pipelines that activate an explicit :class:`Session`, and
* replayed historical sources exec'd by the hindsight engine, which bind the
  facade into the replay namespace.

Every facade call resolves the active session at call time, which is what
makes record and replay transparent to user code.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..config import ProjectConfig
from ..dataframe import DataFrame
from ..relational import queries as _queries
from .session import Session, active_session, get_active_session, set_default_session_factory


class FlorUtils:
    """Namespace mirroring ``flor.utils`` from the paper (Figure 6)."""

    @staticmethod
    def latest(frame: DataFrame, column: str = "tstamp") -> DataFrame:
        """Rows of the most recent run present in ``frame``."""
        return _queries.latest(frame, column)


class FlorFacade:
    """Callable surface of FlorDB; delegates to the active session."""

    def __init__(self) -> None:
        self.utils = FlorUtils()

    # ------------------------------------------------------------- sessions
    @staticmethod
    def session() -> Session:
        """The session currently serving flor calls (created lazily)."""
        return get_active_session()

    @staticmethod
    def init(
        root: str | Path | None = None,
        projid: str | None = None,
        **session_kwargs: Any,
    ) -> Session:
        """Create a session rooted at ``root`` and install it as the default.

        Intended for applications that want an explicit project home instead
        of directory discovery (e.g. the PDF-parser demo app).
        """
        config = ProjectConfig(Path(root) if root else Path.cwd(), projid or "")
        session = Session(config, **session_kwargs)
        set_default_session_factory(lambda: session)
        return session

    @staticmethod
    @contextmanager
    def using(session: Session) -> Iterator[Session]:
        """Scope flor calls to ``session`` within the block."""
        with active_session(session) as active:
            yield active

    # ------------------------------------------------------------------ API
    def log(self, name: str, value: Any) -> Any:
        """Log ``value`` under ``name`` in the current loop context; returns it."""
        return get_active_session().log(name, value)

    def arg(self, name: str, default: Any = None) -> Any:
        """Read a command-line or historical hyperparameter value."""
        return get_active_session().arg(name, default)

    def loop(self, name: str, vals: Iterable[Any]) -> Iterator[Any]:
        """Instrumented loop over ``vals`` named ``name``."""
        return get_active_session().loop(name, vals)

    def checkpointing(self, mapping: Mapping[str, Any] | None = None, /, **objects: Any):
        """Context manager registering objects for adaptive checkpointing."""
        return get_active_session().checkpointing(mapping, **objects)

    def iteration(self, name: str, index: int | None, value: Any):
        """Manually scoped loop iteration (for web handlers and workers)."""
        return get_active_session().iteration(name, index, value)

    def commit(self, message: str = "") -> str | None:
        """Flush records, snapshot tracked files and advance the timestamp."""
        return get_active_session().commit(message)

    def dataframe(self, *names: str) -> DataFrame:
        """Pivoted view of the requested log names across all versions."""
        return get_active_session().dataframe(*names)

    def sql(self, query: str, names: Sequence[str] = (), params: Sequence[Any] = ()) -> DataFrame:
        """Read-only SQL over the context store (optionally over a pivoted view)."""
        return get_active_session().sql(query, names=names, params=params)

    def track(self, *paths: str | Path) -> None:
        """Track source files so that ``flor.commit`` versions them."""
        get_active_session().track(*paths)

    # ----------------------------------------------------------- diagnostics
    def pending_records(self) -> int:
        return get_active_session().pending_records

    def flush(self) -> None:
        get_active_session().flush()


#: Singleton facade; imported by user code as ``from repro import flor``.
flor = FlorFacade()
