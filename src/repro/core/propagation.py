"""Cross-version propagation of logging statements.

The paper's "magic trick": a developer adds ``flor.log`` statements to the
*latest* version of a script, and FlorDB injects those statements into the
correct locations of every *prior* version before replaying them.  The paper
cites GumTree-style source differencing [6]; this module implements a
line-anchor variant of that idea:

1. The new and old sources are aligned with the Myers diff
   (:func:`repro.versioning.diff.matching_lines`).
2. Logging statements that exist only in the new source are located.
3. Each such statement is anchored to the nearest matched line above it (or
   below it if it opens the file); the matched partner of the anchor in the
   old source determines the injection point, and indentation is re-based on
   the anchor so the statement lands inside the same block.
4. The patched old source must still parse; statements whose injection would
   break the parse are dropped and reported, never silently mangled.

A deliberately naive alternative (inject at the same absolute line number) is
provided for the A2 ablation benchmark.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import PropagationError
from ..versioning.diff import matching_lines

#: Default predicate: which call attributes count as "logging statements".
_FLOR_CALL_NAMES = {"log", "arg", "commit"}


def _indentation(line: str) -> str:
    return line[: len(line) - len(line.lstrip())]


@dataclass(frozen=True)
class FlorStatement:
    """A logging statement found in source code."""

    lineno: int          # 1-based first line
    end_lineno: int      # 1-based last line (inclusive)
    text: str            # full statement text (may span lines), without trailing newline
    call_name: str       # e.g. "log"
    logged_name: str | None  # first literal string argument, if any

    @property
    def line_count(self) -> int:
        return self.end_lineno - self.lineno + 1


def find_flor_statements(
    source: str,
    call_names: set[str] | None = None,
    module_alias: str = "flor",
) -> list[FlorStatement]:
    """Find top-level-or-nested statements whose value is a ``flor.*`` call.

    Only *expression statements* and simple assignments whose right-hand side
    is a direct ``flor.<name>(...)`` call are considered — these are the
    forms hindsight logging adds post hoc.
    """
    call_names = call_names or _FLOR_CALL_NAMES
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise PropagationError(f"cannot parse source: {exc}") from exc
    lines = source.splitlines()
    found: list[FlorStatement] = []

    def call_of(node: ast.AST) -> ast.Call | None:
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            return node.value
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            return node.value
        return None

    for node in ast.walk(tree):
        call = call_of(node)
        if call is None:
            continue
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == module_alias
            and func.attr in call_names
        ):
            continue
        logged_name = None
        if call.args and isinstance(call.args[0], ast.Constant) and isinstance(call.args[0].value, str):
            logged_name = call.args[0].value
        lineno = node.lineno
        end_lineno = getattr(node, "end_lineno", node.lineno)
        text = "\n".join(lines[lineno - 1:end_lineno])
        found.append(
            FlorStatement(
                lineno=lineno,
                end_lineno=end_lineno,
                text=text,
                call_name=func.attr,
                logged_name=logged_name,
            )
        )
    found.sort(key=lambda s: s.lineno)
    return found


@dataclass
class PropagationResult:
    """Outcome of propagating statements from a new source to an old source."""

    patched_source: str
    injected: list[FlorStatement] = field(default_factory=list)
    skipped: list[FlorStatement] = field(default_factory=list)
    already_present: list[FlorStatement] = field(default_factory=list)
    #: ``(statement, anchor_line)`` per injected statement: the 1-based line
    #: of the *old* source after which the statement was inserted (0 = top of
    #: file).  Dry-run reporting prints these so a developer can audit the
    #: patch plan without executing any replay.
    placements: list[tuple[FlorStatement, int]] = field(default_factory=list)

    @property
    def injected_count(self) -> int:
        return len(self.injected)

    @property
    def changed(self) -> bool:
        return bool(self.injected)


def propagate_statements(
    old_source: str,
    new_source: str,
    module_alias: str = "flor",
    statement_filter: Callable[[FlorStatement], bool] | None = None,
) -> PropagationResult:
    """Inject new-version logging statements into an old version of the source.

    Returns a :class:`PropagationResult` whose ``patched_source`` is the old
    source with the new logging statements inserted at anchored positions.
    The patched source is guaranteed to parse; statements that cannot be
    placed safely are reported in ``skipped``.
    """
    new_statements = find_flor_statements(new_source, module_alias=module_alias)
    if statement_filter is not None:
        new_statements = [s for s in new_statements if statement_filter(s)]
    old_lines = old_source.splitlines()
    new_lines = new_source.splitlines()
    old_text_set = {line.strip() for line in old_lines}
    old_logged_names = _logged_name_keys(old_source, module_alias)

    pairs = matching_lines(old_lines, new_lines)
    old_for_new = {j: i for i, j in pairs}
    matched_new = set(old_for_new)

    # Statements whose every line already matches the old version are present.
    to_inject: list[FlorStatement] = []
    already: list[FlorStatement] = []
    for statement in new_statements:
        statement_lines = range(statement.lineno - 1, statement.end_lineno)
        if all(idx in matched_new for idx in statement_lines):
            already.append(statement)
        elif all(new_lines[idx].strip() in old_text_set for idx in statement_lines):
            # Identical text exists in the old version even if the alignment
            # paired it differently; treat as present to stay idempotent.
            already.append(statement)
        elif (statement.call_name, statement.logged_name) in old_logged_names:
            # The old version already logs this name (possibly with different
            # arguments, e.g. a changed default): hindsight logging only
            # back-propagates *new* names, never edits to existing statements.
            already.append(statement)
        else:
            to_inject.append(statement)

    # Plan insertions as (statement, old_insertion_index, indented_lines).
    insertions: list[tuple[FlorStatement, int, list[str]]] = []
    skipped: list[FlorStatement] = []
    for statement in to_inject:
        plan = _plan_insertion(statement, old_lines, new_lines, old_for_new)
        if plan is None:
            skipped.append(statement)
        else:
            index, text_lines = plan
            insertions.append((statement, index, text_lines))

    patched_lines = list(old_lines)
    # Apply bottom-up so earlier insertion indices stay valid.
    for _stmt, index, text_lines in sorted(insertions, key=lambda item: item[1], reverse=True):
        patched_lines[index:index] = text_lines
    patched_source = "\n".join(patched_lines)
    if old_source.endswith("\n") and not patched_source.endswith("\n"):
        patched_source += "\n"

    injected = [s for s in to_inject if s not in skipped]
    placements = [(stmt, index) for stmt, index, _lines in insertions]
    try:
        ast.parse(patched_source)
    except SyntaxError:
        # A combination of insertions broke the parse: fall back to inserting
        # statements one at a time, dropping the ones that break it.
        patched_source, injected, newly_skipped, placements = _insert_incrementally(
            old_source, to_inject, old_lines, new_lines, old_for_new
        )
        skipped = skipped + newly_skipped
    return PropagationResult(
        patched_source=patched_source,
        injected=injected,
        skipped=skipped,
        already_present=already,
        placements=placements,
    )


def _plan_insertion(
    statement: FlorStatement,
    old_lines: Sequence[str],
    new_lines: Sequence[str],
    old_for_new: dict[int, int],
) -> tuple[int, list[str]] | None:
    """Compute where (old line index) and how (re-indented text) to insert."""
    stmt_start = statement.lineno - 1
    stmt_indent = _indentation(new_lines[stmt_start]) if stmt_start < len(new_lines) else ""

    # Preferred anchor: nearest matched line above the statement.
    anchor_new = None
    for idx in range(stmt_start - 1, -1, -1):
        if idx in old_for_new and new_lines[idx].strip():
            anchor_new = idx
            break
    if anchor_new is not None:
        anchor_old = old_for_new[anchor_new]
        insert_at = anchor_old + 1
        # Skip past continuation lines of a multi-line anchor statement.
        insert_at = _advance_past_block_opener(old_lines, anchor_old, insert_at)
        indent = _rebase_indent(stmt_indent, _indentation(new_lines[anchor_new]), _indentation(old_lines[anchor_old]))
        return insert_at, _indent_statement(statement, indent)

    # Fallback anchor: nearest matched line below (statement opens the file).
    for idx in range(statement.end_lineno, len(new_lines)):
        if idx in old_for_new and new_lines[idx].strip():
            anchor_old = old_for_new[idx]
            indent = _rebase_indent(stmt_indent, _indentation(new_lines[idx]), _indentation(old_lines[anchor_old]))
            return anchor_old, _indent_statement(statement, indent)
    return None


def _advance_past_block_opener(old_lines: Sequence[str], anchor_old: int, insert_at: int) -> int:
    """If the anchor opens a block (ends with ``:``), keep the insertion inside it.

    Inserting directly after ``for x in flor.loop(...):`` must go *inside*
    the block, which the indentation re-basing already handles; nothing to
    skip in that case.  If the anchor line ends with an explicit line
    continuation or an unclosed bracket, advance past the continuation lines.
    """
    line = old_lines[anchor_old]
    open_brackets = line.count("(") - line.count(")")
    idx = insert_at
    while open_brackets > 0 and idx < len(old_lines):
        open_brackets += old_lines[idx].count("(") - old_lines[idx].count(")")
        idx += 1
    return idx


def _rebase_indent(stmt_indent: str, anchor_new_indent: str, anchor_old_indent: str) -> str:
    """Map the statement's indentation from new-file space to old-file space."""
    delta = len(stmt_indent) - len(anchor_new_indent)
    if delta <= 0:
        # Statement is at or above the anchor's level: keep relative offset.
        target = max(0, len(anchor_old_indent) + delta)
    else:
        target = len(anchor_old_indent) + delta
    return " " * target


def _indent_statement(statement: FlorStatement, indent: str) -> list[str]:
    base_indent = _indentation(statement.text.splitlines()[0])
    out = []
    for line in statement.text.splitlines():
        stripped = line[len(base_indent):] if line.startswith(base_indent) else line.lstrip()
        out.append(indent + stripped)
    return out


def _insert_incrementally(
    old_source: str,
    statements: list[FlorStatement],
    old_lines: Sequence[str],
    new_lines: Sequence[str],
    old_for_new: dict[int, int],
) -> tuple[str, list[FlorStatement], list[FlorStatement], list[tuple[FlorStatement, int]]]:
    """Insert statements one at a time, dropping any that break the parse."""
    current = old_source
    injected: list[FlorStatement] = []
    skipped: list[FlorStatement] = []
    placements: list[tuple[FlorStatement, int]] = []
    for statement in statements:
        current_lines = current.splitlines()
        plan = _plan_insertion(statement, current_lines, new_lines, old_for_new)
        if plan is None:
            skipped.append(statement)
            continue
        index, text_lines = plan
        candidate_lines = list(current_lines)
        candidate_lines[index:index] = text_lines
        candidate = "\n".join(candidate_lines)
        try:
            ast.parse(candidate)
        except SyntaxError:
            skipped.append(statement)
            continue
        current = candidate
        injected.append(statement)
        # Report the anchor in *original* old-source coordinates (the
        # dry-run contract): ``index`` points into the progressively
        # patched text, shifted by every earlier insertion's height.
        original_plan = _plan_insertion(statement, old_lines, new_lines, old_for_new)
        placements.append((statement, original_plan[0] if original_plan else index))
    return current, injected, skipped, placements


def _logged_name_keys(source: str, module_alias: str) -> set[tuple[str, str | None]]:
    """``(call_name, logged_name)`` pairs already present in ``source``."""
    keys = set()
    for statement in find_flor_statements(source, module_alias=module_alias):
        if statement.logged_name is not None:
            keys.add((statement.call_name, statement.logged_name))
    return keys


def propagate_by_line_number(old_source: str, new_source: str, module_alias: str = "flor") -> PropagationResult:
    """Naive baseline: inject each new statement at the same absolute line number.

    This is the strawman the A2 ablation compares against — it works when the
    old and new versions are line-aligned and falls apart under refactorings.
    """
    statements = find_flor_statements(new_source, module_alias=module_alias)
    old_lines = old_source.splitlines()
    old_text = {line.strip() for line in old_lines}
    old_logged_names = _logged_name_keys(old_source, module_alias)
    injected: list[FlorStatement] = []
    skipped: list[FlorStatement] = []
    already: list[FlorStatement] = []
    placements: list[tuple[FlorStatement, int]] = []
    patched = list(old_lines)
    offset = 0
    for statement in statements:
        if statement.text.strip() in old_text or (
            statement.call_name, statement.logged_name
        ) in old_logged_names:
            already.append(statement)
            continue
        index = min(statement.lineno - 1 + offset, len(patched))
        candidate = list(patched)
        candidate[index:index] = statement.text.splitlines()
        try:
            ast.parse("\n".join(candidate))
        except SyntaxError:
            skipped.append(statement)
            continue
        patched = candidate
        offset += statement.line_count
        injected.append(statement)
        placements.append((statement, index))
    return PropagationResult(
        patched_source="\n".join(patched),
        injected=injected,
        skipped=skipped,
        already_present=already,
        placements=placements,
    )
