"""FlorDB core: the Flor API, record/replay runtime and hindsight logging.

Layering (bottom to top):

* :mod:`context`       — loop/context bookkeeping shared by record and replay,
* :mod:`checkpoint`    — adaptive checkpointing of registered objects,
* :mod:`session`       — the runtime behind ``flor.*`` calls (record & replay),
* :mod:`dataframe_view`— the pivoted ``flor.dataframe`` construction,
* :mod:`propagation`   — cross-version log-statement propagation,
* :mod:`replay`        — replay plans and script re-execution,
* :mod:`hindsight`     — multiversion hindsight logging orchestration,
* :mod:`api`           — the module-level ``flor``-style facade.
"""

from .api import FlorFacade
from .checkpoint import (
    AdaptiveCheckpointPolicy,
    CheckpointManager,
    EveryIterationPolicy,
    FixedIntervalPolicy,
    NeverCheckpointPolicy,
)
from .context import ContextState, LoopFrame, TimestampGenerator
from .hindsight import BackfillReport, HindsightEngine, VersionBackfill
from .propagation import PropagationResult, propagate_statements, find_flor_statements
from .replay import ReplayPlan, ReplayResult, replay_source
from .session import Session, active_session, get_active_session

__all__ = [
    "FlorFacade",
    "Session",
    "active_session",
    "get_active_session",
    "ContextState",
    "LoopFrame",
    "TimestampGenerator",
    "CheckpointManager",
    "AdaptiveCheckpointPolicy",
    "FixedIntervalPolicy",
    "EveryIterationPolicy",
    "NeverCheckpointPolicy",
    "ReplayPlan",
    "ReplayResult",
    "replay_source",
    "PropagationResult",
    "propagate_statements",
    "find_flor_statements",
    "HindsightEngine",
    "BackfillReport",
    "VersionBackfill",
]
