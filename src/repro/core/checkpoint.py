"""Adaptive checkpointing of user objects at loop-iteration boundaries.

``flor.checkpointing(model=net, optimizer=opt)`` registers objects with a
:class:`CheckpointManager`.  At the end of each iteration of the outermost
``flor.loop`` inside the block, the manager's policy decides whether to
serialize the registered objects.  Checkpoints are stored in the
``obj_store`` table keyed by the iteration's ``ctx_id``, which is exactly
what replay needs to resume execution at an arbitrary iteration.

Policies
--------
* :class:`AdaptiveCheckpointPolicy` — the paper's "low-overhead adaptive
  checkpointing": spaces checkpoints so that serialization overhead stays a
  bounded fraction of iteration cost,
* :class:`FixedIntervalPolicy` — every k-th iteration,
* :class:`EveryIterationPolicy` / :class:`NeverCheckpointPolicy` — the two
  extremes, used by the A1 ablation benchmark.
"""

from __future__ import annotations

import copy
import math
import pickle
import time
from dataclasses import dataclass
from typing import Any, Mapping, Protocol

from ..errors import CheckpointError
from ..relational.records import ObjectRecord
from ..relational.repositories import ObjectRepository
from ..runtime import AsyncCheckpointWriter

#: Prefix for checkpoint entries in the obj_store table.
CHECKPOINT_PREFIX = "ckpt::"


class CheckpointPolicy(Protocol):
    """Decides whether to checkpoint after a given iteration."""

    def should_checkpoint(self, iteration: int, iter_seconds: float, ckpt_seconds: float) -> bool:
        """Return True to checkpoint after ``iteration``.

        ``iter_seconds`` is the measured duration of the iteration that just
        finished; ``ckpt_seconds`` is the duration of the most recent
        checkpoint (0.0 until one has been taken).
        """
        ...  # pragma: no cover - protocol definition


@dataclass
class EveryIterationPolicy:
    """Checkpoint after every iteration (maximum replay granularity)."""

    def should_checkpoint(self, iteration: int, iter_seconds: float, ckpt_seconds: float) -> bool:
        return True


@dataclass
class NeverCheckpointPolicy:
    """Never checkpoint (replay must re-execute from the start)."""

    def should_checkpoint(self, iteration: int, iter_seconds: float, ckpt_seconds: float) -> bool:
        return False


@dataclass
class FixedIntervalPolicy:
    """Checkpoint every ``interval`` iterations."""

    interval: int = 1

    def should_checkpoint(self, iteration: int, iter_seconds: float, ckpt_seconds: float) -> bool:
        if self.interval <= 0:
            return False
        return (iteration + 1) % self.interval == 0


@dataclass
class AdaptiveCheckpointPolicy:
    """Space checkpoints so overhead stays below ``max_overhead`` of run time.

    If serializing costs ``c`` seconds and an iteration costs ``t`` seconds,
    checkpointing every ``k`` iterations adds overhead ``c / (k·t)``.  The
    policy picks the smallest ``k`` with overhead ≤ ``max_overhead``, i.e.
    ``k = ceil(c / (max_overhead · t))``, re-estimated as measurements arrive.
    This mirrors the paper's "low-overhead adaptive checkpointing" claim: fast
    iterations get sparse checkpoints, slow iterations get dense ones.
    """

    max_overhead: float = 0.05
    _period: int = 1
    _since_last: int = 0

    def should_checkpoint(self, iteration: int, iter_seconds: float, ckpt_seconds: float) -> bool:
        if iter_seconds > 0 and ckpt_seconds > 0:
            self._period = max(1, math.ceil(ckpt_seconds / (self.max_overhead * iter_seconds)))
        self._since_last += 1
        if iteration == 0 or self._since_last >= self._period:
            self._since_last = 0
            return True
        return False


@dataclass(frozen=True)
class CheckpointKey:
    """Identifies one stored checkpoint (one loop iteration of one run)."""

    projid: str
    tstamp: str
    filename: str
    ctx_id: int
    loop_name: str

    @property
    def value_name(self) -> str:
        return f"{CHECKPOINT_PREFIX}{self.loop_name}"


class CheckpointManager:
    """Serializes and restores the objects registered via ``flor.checkpointing``.

    The manager is attached to a recording or replaying session.  In record
    mode it consults its policy at iteration boundaries; in replay mode it
    restores the nearest prior checkpoint when the replay plan skips ahead.

    Cost accounting: ``serialize_seconds`` is strictly the *on-thread* cost
    per checkpoint (snapshot + pickle when writing inline; snapshot only
    when an :class:`~repro.runtime.AsyncCheckpointWriter` is attached) and
    is the only number fed to the policy — the object-store write is I/O
    the loop never waits on, so charging the policy with it would space
    checkpoints out far more than the training loop's real overhead
    warrants.  ``write_seconds`` accumulates everything else (the store
    write inline; pickle + write when asynchronous).

    With a ``writer``, ``save()`` deep-copies the snapshot and returns; the
    pickle and store write happen on the writer's thread.  ``restore()``,
    ``load()`` and ``available_checkpoints()`` drain the writer first so
    callers never observe a checkpoint that is still in flight.
    """

    def __init__(
        self,
        objects: ObjectRepository,
        policy: CheckpointPolicy | None = None,
        writer: AsyncCheckpointWriter | None = None,
    ):
        self._objects = objects
        self.policy = policy or AdaptiveCheckpointPolicy()
        self._registered: dict[str, Any] = {}
        self._writer = writer
        self.saved = 0
        self.restored = 0
        self.serialize_seconds = 0.0
        self.write_seconds = 0.0

    # ---------------------------------------------------------- registration
    def register(self, objects: Mapping[str, Any]) -> None:
        self._registered.update(objects)

    def clear(self) -> None:
        self._registered.clear()

    @property
    def registered_names(self) -> list[str]:
        return sorted(self._registered)

    @property
    def has_registrations(self) -> bool:
        return bool(self._registered)

    # ------------------------------------------------------------- recording
    def maybe_save(
        self, key: CheckpointKey, iteration: int, iter_seconds: float
    ) -> bool:
        """Consult the policy and save a checkpoint if it says so."""
        if not self._registered:
            return False
        # On-thread cost only: the store write happens off the loop's critical
        # path (entirely so with an async writer) and must not inflate the
        # per-checkpoint cost the adaptive policy spaces checkpoints by.
        last_cost = self.serialize_seconds / self.saved if self.saved else 0.0
        if not self.policy.should_checkpoint(iteration, iter_seconds, last_cost):
            return False
        self.save(key)
        return True

    def save(self, key: CheckpointKey) -> None:
        """Unconditionally serialize the registered objects under ``key``."""
        start = time.perf_counter()
        state = self._snapshot_state()
        if self._writer is not None:
            # Deep-copy inline so later mutations by the training loop cannot
            # leak into the checkpoint, then hand pickling and the store
            # write to the worker.  Unpicklable state surfaces as a
            # CheckpointError at the next drain barrier.
            try:
                snapshot = copy.deepcopy(state)
            except Exception as exc:
                raise CheckpointError(f"cannot snapshot checkpoint objects: {exc}") from exc
            self.serialize_seconds += time.perf_counter() - start
            self._writer.submit(key, snapshot, on_written=self._account_async_write)
            self.saved += 1
            return
        try:
            payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(f"cannot serialize checkpoint objects: {exc}") from exc
        self.serialize_seconds += time.perf_counter() - start
        written = time.perf_counter()
        self._objects.put(
            ObjectRecord(
                projid=key.projid,
                tstamp=key.tstamp,
                filename=key.filename,
                ctx_id=key.ctx_id,
                value_name=key.value_name,
                contents=payload,
            )
        )
        self.write_seconds += time.perf_counter() - written
        self.saved += 1

    def _account_async_write(self, pickle_seconds: float, write_seconds: float) -> None:
        # Runs on the writer thread after the off-thread work finishes.
        self.write_seconds += pickle_seconds + write_seconds

    # ------------------------------------------------------------- lifecycle
    def drain(self) -> None:
        """Barrier: block until every in-flight checkpoint write is stored."""
        if self._writer is not None:
            self._writer.drain()

    def close(self) -> None:
        """Drain and stop the async writer (no-op for inline managers)."""
        if self._writer is not None:
            self._writer.close()

    def _snapshot_state(self) -> dict[str, Any]:
        """Extract picklable state from registered objects.

        Objects exposing ``state_dict()`` (the convention used by the NumPy
        ML substrate, mirroring torch) contribute their state dict; everything
        else is pickled wholesale.
        """
        state: dict[str, Any] = {}
        for name, obj in self._registered.items():
            getter = getattr(obj, "state_dict", None)
            state[name] = getter() if callable(getter) else obj
        return state

    # --------------------------------------------------------------- restore
    def load(self, key: CheckpointKey) -> dict[str, Any] | None:
        """Load the raw checkpoint payload stored under ``key`` (or None)."""
        self.drain()
        record = self._objects.get(key.projid, key.tstamp, key.filename, key.ctx_id, key.value_name)
        if record is None:
            return None
        try:
            return pickle.loads(record.contents)
        except Exception as exc:
            raise CheckpointError(f"corrupt checkpoint at ctx_id={key.ctx_id}: {exc}") from exc

    def restore(self, key: CheckpointKey) -> bool:
        """Restore registered objects in place from the checkpoint at ``key``.

        Objects with ``load_state_dict`` restore through it; plain dicts and
        lists are mutated in place (so the user's variable still points at
        the restored contents); anything else is rebound inside the manager,
        which only helps callers that re-read it from the registry.
        """
        state = self.load(key)
        if state is None:
            return False
        for name, payload in state.items():
            if name not in self._registered:
                continue
            target = self._registered[name]
            setter = getattr(target, "load_state_dict", None)
            if callable(setter):
                setter(payload)
            elif isinstance(target, dict) and isinstance(payload, dict):
                target.clear()
                target.update(payload)
            elif isinstance(target, list) and isinstance(payload, list):
                target[:] = payload
            else:
                self._registered[name] = payload
        self.restored += 1
        return True

    def available_checkpoints(self, projid: str, tstamp: str, filename: str) -> list[tuple[int, str]]:
        """Return ``(ctx_id, loop_name)`` of all checkpoints stored for a run."""
        self.drain()
        out = []
        for _ts, _fn, ctx_id, value_name in self._objects.list_keys(projid, tstamp):
            if _fn == filename and value_name.startswith(CHECKPOINT_PREFIX):
                out.append((ctx_id, value_name[len(CHECKPOINT_PREFIX):]))
        return sorted(out)
