"""Replay plans and script re-execution.

Replay is how hindsight logging materializes metadata that was never logged:
the (possibly patched) historical source of a script is executed again under
a replay-mode :class:`~repro.core.session.Session` that is pinned to the
original run's timestamp.  The :class:`ReplayPlan` controls differential
execution — which loop iterations actually run — and the session restores
checkpoints to skip over the rest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..config import ProjectConfig
from ..relational.database import Database
from .session import REPLAY, Session, active_session


@dataclass(frozen=True)
class ReplayPlan:
    """Selects which loop iterations execute during replay.

    ``selections`` maps loop name to a frozenset of iteration indices to
    execute; loops not mentioned execute fully.  An empty plan (no entries)
    therefore replays everything, which is the correct default when a new
    log statement could fire anywhere.
    """

    selections: Mapping[str, frozenset[int]] = field(default_factory=dict)

    @classmethod
    def all(cls) -> "ReplayPlan":
        """Replay every iteration of every loop."""
        return cls({})

    @classmethod
    def only(cls, **loops: Any) -> "ReplayPlan":
        """Restrict named loops to the given iterations.

        ``ReplayPlan.only(epoch=[7])`` executes only epoch 7 (restoring the
        checkpoint taken after epoch 6 if one exists); ``ReplayPlan.only(
        epoch=range(8, 10), step=[0])`` composes across nesting levels.
        """
        selections = {name: frozenset(int(i) for i in iters) for name, iters in loops.items()}
        return cls(selections)

    def selects(self, loop_name: str, iteration: int) -> bool:
        chosen = self.selections.get(loop_name)
        return True if chosen is None else iteration in chosen

    def is_total(self) -> bool:
        return not self.selections

    def to_dict(self) -> dict[str, list[int]]:
        return {name: sorted(v) for name, v in self.selections.items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | None) -> "ReplayPlan":
        if not data:
            return cls.all()
        return cls({name: frozenset(int(i) for i in iters) for name, iters in data.items()})


@dataclass
class ReplayResult:
    """Outcome of replaying one historical run of one script."""

    tstamp: str
    filename: str
    new_log_records: int = 0
    new_loop_records: int = 0
    iterations_executed: int = 0
    iterations_skipped: int = 0
    checkpoints_restored: int = 0
    wall_seconds: float = 0.0
    error: str | None = None
    pending_logs: list = field(default_factory=list, repr=False)
    pending_loops: list = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None


def replay_source(
    source: str,
    *,
    config: ProjectConfig,
    filename: str,
    tstamp: str,
    db: Database | None = None,
    plan: ReplayPlan | None = None,
    extra_globals: Mapping[str, Any] | None = None,
    collect_only: bool = False,
) -> ReplayResult:
    """Execute ``source`` under a replay session pinned to ``(tstamp, filename)``.

    The executed namespace receives a ``flor`` binding to the facade so both
    ``import``-style and injected-name usage hit the replay session.  With
    ``collect_only`` the newly produced records are returned on the result
    instead of being written to the database (used by parallel backfill
    workers, whose parent performs a single write).
    """
    from .api import flor as flor_facade  # local import to avoid a cycle

    plan = plan or ReplayPlan.all()
    session = Session(
        config,
        db=db,
        mode=REPLAY,
        default_filename=filename,
        replay_tstamp=tstamp,
        replay_plan=plan,
    )
    result = ReplayResult(tstamp=tstamp, filename=filename)
    started = time.perf_counter()
    namespace: dict[str, Any] = {
        "__name__": "__flor_replay__",
        "__file__": filename,
        "flor": flor_facade,
    }
    if extra_globals:
        namespace.update(extra_globals)
    try:
        code = compile(source, filename, "exec")
    except SyntaxError as exc:
        result.error = f"syntax error in replayed source: {exc}"
        result.wall_seconds = time.perf_counter() - started
        return result
    try:
        with active_session(session):
            exec(code, namespace)  # noqa: S102 - replay executes user project code by design
    except Exception as exc:  # pragma: no cover - error path exercised in tests
        result.error = f"{type(exc).__name__}: {exc}"
    result.wall_seconds = time.perf_counter() - started
    result.new_log_records = session.pending_log_records
    result.new_loop_records = session.pending_loop_records
    result.iterations_executed = session.replay_stats["iterations_executed"]
    result.iterations_skipped = session.replay_stats["iterations_skipped"]
    result.checkpoints_restored = session.replay_stats["checkpoints_restored"]
    if collect_only:
        result.pending_logs, result.pending_loops = session.take_pending_records()
    else:
        session.flush()
    if db is None:
        session.close()
    return result


def replay_worker(args: tuple) -> ReplayResult:
    """Process-pool entry point for parallel multiversion replay.

    ``args`` is ``(root, projid, db_path, source, filename, tstamp, plan_dict)``
    — all picklable.  The worker opens its own database handle, replays with
    ``collect_only`` and ships the new records back to the parent, which is
    the sole writer.
    """
    root, projid, db_path, source, filename, tstamp, plan_dict = args
    config = ProjectConfig(root, projid)
    db = Database(db_path)
    try:
        return replay_source(
            source,
            config=config,
            filename=filename,
            tstamp=tstamp,
            db=db,
            plan=ReplayPlan.from_dict(plan_dict),
            collect_only=True,
        )
    except Exception as exc:  # pragma: no cover - worker crash safety net
        return ReplayResult(tstamp=tstamp, filename=filename, error=f"{type(exc).__name__}: {exc}")
    finally:
        db.close()
