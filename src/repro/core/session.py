"""The runtime behind every ``flor.*`` call.

A :class:`Session` owns the project database, the version repository and the
checkpoint manager, and implements both execution modes:

* **record** — the normal mode: log statements append to a buffer that is
  flushed on ``commit()`` (or when a dataframe is requested), loops allocate
  fresh context ids, and the checkpoint policy decides when to serialize
  registered objects.
* **replay** — used by hindsight logging: the session is pinned to a
  historical ``(tstamp, filename)`` run, loops re-use the recorded context
  ids, iterations outside the replay plan are skipped (restoring the nearest
  checkpoint when needed), ``flor.arg`` returns historical values, and newly
  logged values are attributed to the historical timestamp.

Sessions are activated on a stack so that exec'd replay scripts and nested
tools always reach the intended runtime through the module-level facade.
"""

from __future__ import annotations

import atexit
import os
import sys
import sysconfig
import time
from contextlib import contextmanager
from contextvars import ContextVar
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..config import ProjectConfig
from ..errors import RecordingError, ReplayError
from ..relational.database import Database
from ..relational.records import LogRecord, LoopRecord, Ts2VidRecord
from ..storage.protocols import RelationalStore
from ..relational.repositories import (
    BuildDepRepository,
    LogRepository,
    LoopRepository,
    ObjectRepository,
    Ts2VidRepository,
)
from ..runtime import (
    ASYNC,
    SYNC,
    AsyncCheckpointWriter,
    BackgroundFlusher,
    FlushCallbackError,
    RecordBuffer,
)
from ..versioning.repository import Commit, Repository
from .checkpoint import CheckpointKey, CheckpointManager, CheckpointPolicy
from .context import (
    TOP_LEVEL_CTX,
    ContextState,
    TimestampGenerator,
    stringify_iteration_value,
)

_PACKAGE_DIR = str(Path(__file__).resolve().parent.parent)
_STDLIB_DIR = sysconfig.get_paths()["stdlib"]

_timestamps = TimestampGenerator()


@lru_cache(maxsize=4096)
def _classify_user_file(candidate: str) -> str | None:
    """Basename of ``candidate`` if it is user code, else None.

    Files inside this package or the standard library are library plumbing
    and never the logging origin.  The result is cached because resolving a
    path touches the filesystem and hot loops ask about the same few files.
    """
    resolved = str(Path(candidate).resolve())
    if resolved.startswith(_PACKAGE_DIR) or resolved.startswith(_STDLIB_DIR):
        return None
    return Path(candidate).name

RECORD = "record"
REPLAY = "replay"


class Session:
    """One FlorDB runtime bound to a project directory.

    Parameters
    ----------
    config:
        Project configuration; discovered from the working directory when
        omitted.
    mode:
        ``"record"`` (default) or ``"replay"``.
    default_filename:
        Force the filename stamped on records instead of inferring the
        caller's file.  Replay sessions always set this.
    replay_tstamp:
        In replay mode, the historical run timestamp being replayed.
    replay_plan:
        Optional :class:`~repro.core.replay.ReplayPlan` restricting which
        loop iterations execute during replay.
    cli_args:
        Explicit argument mapping consulted by ``arg()`` before falling back
        to ``sys.argv`` and then to defaults.
    query_cache:
        Optional shared :class:`~repro.query.PivotViewCache` backing this
        session's query engine (the service layer shares one per shard); a
        private cache is created lazily when omitted.
    flush_mode:
        ``"async"`` (default in record mode) stages records as cheap tuples
        and drains them to SQLite on a background flusher thread, with
        checkpoint pickling and store writes likewise moved off-thread;
        ``"sync"`` (default — and forced semantics-wise — in replay mode,
        where the sandboxed run should not outlive its thread) executes
        every flush inline, preserving the pre-runtime behaviour.
        ``flush()`` is a read-your-writes barrier in both modes.
    """

    def __init__(
        self,
        config: ProjectConfig | None = None,
        *,
        db: "RelationalStore | None" = None,
        repository: Repository | None = None,
        mode: str = RECORD,
        default_filename: str | None = None,
        replay_tstamp: str | None = None,
        replay_plan: "Any | None" = None,
        cli_args: Mapping[str, Any] | None = None,
        checkpoint_policy: CheckpointPolicy | None = None,
        query_cache: "Any | None" = None,
        flush_mode: str | None = None,
    ):
        if mode not in (RECORD, REPLAY):
            raise RecordingError(f"unknown session mode: {mode!r}")
        if flush_mode not in (None, SYNC, ASYNC):
            raise RecordingError(f"unknown flush_mode: {flush_mode!r}")
        # With both stores injected (e.g. the in-memory service backend)
        # the session never touches disk, so skip materializing the
        # project directory layout.
        self.config = config or ProjectConfig.discover()
        if db is None or repository is None:
            self.config = self.config.ensure_layout()
        self.projid = self.config.projid
        self.mode = mode
        self.flush_mode = flush_mode or (SYNC if mode == REPLAY else ASYNC)
        self.db = db if db is not None else Database(self.config.db_path)
        self._owns_db = db is None
        self.logs = LogRepository(self.db)
        self.loops = LoopRepository(self.db)
        self.ts2vid = Ts2VidRepository(self.db)
        self.objects = ObjectRepository(self.db)
        self.build_deps = BuildDepRepository(self.db)
        # Explicit None-check: an empty Repository is falsy (len() == 0), and
        # an injected fresh repository must not be silently replaced by a
        # disk-backed default.
        self.repository = (
            repository
            if repository is not None
            else Repository(self.config.objects_dir, self.config.root)
        )
        self._buffer = RecordBuffer()
        self.flusher = BackgroundFlusher(
            self.db, mode=self.flush_mode, name=f"flor-flush-{self.projid or 'default'}"
        )
        # Past this many staged records an async session submits to the
        # flusher opportunistically, overlapping SQLite work with the loop.
        self._stage_threshold = 512
        ckpt_writer = AsyncCheckpointWriter(self.objects) if self.flush_mode == ASYNC else None
        self.checkpoints = CheckpointManager(
            self.objects, policy=checkpoint_policy, writer=ckpt_writer
        )
        self.default_filename = default_filename
        self._cli_args = dict(cli_args or {})
        self._contexts: dict[str, ContextState] = {}
        self._ckpt_block_depth: dict[str, int] = {}
        # Next auto index per (filename, loop_name) for the current epoch.
        # Record mode only: rows under this session's fresh tstamp can only
        # come from this session, so the counter replaces the flush barrier
        # + database scan that ``iteration(index=None)`` would otherwise
        # need.  Cleared when commit() rotates the timestamp.
        self._loop_iteration_next: dict[tuple[str, str], int] = {}
        self._query_cache = query_cache
        self._query_engine: "Any | None" = None
        self._replay_plan = replay_plan
        self.replay_stats = {"iterations_executed": 0, "iterations_skipped": 0, "checkpoints_restored": 0}
        if mode == REPLAY:
            if not replay_tstamp:
                raise ReplayError("replay sessions require replay_tstamp")
            self.tstamp = replay_tstamp
            self._existing_log_keys = {
                (r.tstamp, r.filename, r.ctx_id, r.value_name) for r in self.logs.all(self.projid)
            }
        else:
            self.tstamp = _timestamps.next()
            self._existing_log_keys = set()
        self.epoch_start = self.tstamp

    # ------------------------------------------------------------ bookkeeping
    def close(self) -> None:
        """Flush pending records, stop the write workers, release the database.

        Flush-on-close: staged rows and in-flight checkpoint writes are
        drained before the workers stop, so nothing recorded is ever lost to
        a clean shutdown.  A deferred worker error re-raised by the flush
        still releases every resource (worker threads, the database handle)
        before propagating.
        """
        try:
            self.flush()
        finally:
            try:
                self.checkpoints.close()
            finally:
                try:
                    self.flusher.close()
                finally:
                    if self._owns_db:
                        self.db.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    @property
    def pending_records(self) -> int:
        """Records staged or submitted but not yet durable."""
        return self._buffer.pending + self.flusher.pending_rows

    @property
    def pending_log_records(self) -> int:
        return self._buffer.pending_logs

    @property
    def pending_loop_records(self) -> int:
        return self._buffer.pending_loops

    def take_pending_records(self) -> tuple[list[LogRecord], list[LoopRecord]]:
        """Drain staged records as record objects *without* writing them.

        Used by collect-only replay, whose parent process is the sole
        database writer.
        """
        return self._buffer.drain_records()

    def _context_for(self, filename: str) -> ContextState:
        if filename not in self._contexts:
            self._contexts[filename] = ContextState(filename=filename)
        return self._contexts[filename]

    def _note_loop_iteration(self, filename: str, loop_name: str, iteration: int) -> None:
        """Advance the epoch-local auto-index high-water mark for one loop."""
        key = (filename, loop_name)
        nxt = iteration + 1
        if nxt > self._loop_iteration_next.get(key, 0):
            self._loop_iteration_next[key] = nxt

    def current_filename(self) -> str:
        """Basename of the file issuing the current flor call.

        Frames inside this library and the standard library are skipped so
        that the *user's* script is recorded, mirroring the paper's "metadata
        captured at time of import".  Path classification is cached because
        hot training loops call this for every ``flor.log``.
        """
        if self.default_filename:
            return self.default_filename
        frame = sys._getframe(1)
        while frame is not None:
            candidate = frame.f_globals.get("__file__")
            if candidate:
                basename = _classify_user_file(candidate)
                if basename is not None:
                    return basename
            frame = frame.f_back
        main_file = getattr(sys.modules.get("__main__"), "__file__", None)
        return Path(main_file).name if main_file else "<interactive>"

    # -------------------------------------------------------------- tracking
    def track(self, *paths: str | Path) -> None:
        """Track source files so that ``commit()`` snapshots them."""
        relative = []
        for path in paths:
            path = Path(path)
            if path.is_absolute():
                try:
                    path = path.relative_to(self.config.root)
                except ValueError as exc:
                    raise RecordingError(
                        f"tracked file {path} must live under the project root {self.config.root}"
                    ) from exc
            relative.append(str(path))
        self.repository.track(*relative)

    # ------------------------------------------------------------------- log
    def log(self, name: str, value: Any, filename: str | None = None) -> Any:
        """Record ``value`` under ``name`` in the current loop context.

        Returns ``value`` unchanged so the call can wrap expressions inline,
        exactly as in the paper's examples.

        This is the record path's hot function: it stages one tuple in the
        :class:`~repro.runtime.RecordBuffer` (value encoding deferred for
        scalars) and only touches SQLite indirectly, via an opportunistic
        background submit once enough records have accumulated.
        """
        filename = filename or self.current_filename()
        ctx = self._context_for(filename)
        ctx_id = ctx.current_ctx_id
        if self.mode == REPLAY:
            key = (self.tstamp, filename, ctx_id, name)
            if key in self._existing_log_keys:
                return value
            self._existing_log_keys.add(key)
        self._buffer.stage_log(self.projid, self.tstamp, filename, ctx_id, name, value)
        if self.flush_mode == ASYNC and self._buffer.pending >= self._stage_threshold:
            self.flush(wait=False)
        return value

    # ------------------------------------------------------------------- arg
    def arg(self, name: str, default: Any = None, filename: str | None = None) -> Any:
        """Command-line / historical hyperparameter access.

        Record mode resolution order: explicit ``cli_args`` mapping, then
        ``--name=value`` or ``name=value`` tokens in ``sys.argv``, then the
        default.  Replay mode returns the value recorded for the replayed
        run.  The resolved value is logged under ``name`` either way.
        """
        filename = filename or self.current_filename()
        if self.mode == REPLAY:
            value = self._historical_arg(name, filename)
            if value is None:
                value = default
            else:
                value = _coerce_like(value, default)
            return value
        value: Any = None
        found = False
        if name in self._cli_args:
            value, found = self._cli_args[name], True
        else:
            for token in sys.argv[1:]:
                for prefix in (f"--{name}=", f"{name}="):
                    if token.startswith(prefix):
                        value, found = token[len(prefix):], True
                        break
                if found:
                    break
        if not found:
            value = default
        else:
            value = _coerce_like(value, default)
        self.log(name, value, filename=filename)
        return value

    def _historical_arg(self, name: str, filename: str) -> Any:
        for record in self.logs.by_names(self.projid, [name]):
            if record.tstamp == self.tstamp and record.filename == filename:
                return record.decoded()
        for record in self.logs.by_names(self.projid, [name]):
            if record.tstamp == self.tstamp:
                return record.decoded()
        return None

    # ------------------------------------------------------------------ loop
    def loop(self, name: str, vals: Iterable[Any], filename: str | None = None) -> Iterator[Any]:
        """Instrumented loop generator (see the paper's ``flor.loop``).

        Record mode: every iteration opens a fresh loop context, emits a
        ``loops`` row and (when a checkpointing block is active at this
        nesting level) consults the checkpoint policy at the iteration
        boundary.  Replay mode: iterations re-use recorded context ids and
        the replay plan decides which iterations actually run.
        """
        filename = filename or self.current_filename()
        if self.mode == REPLAY:
            yield from self._replay_loop(name, vals, filename)
            return
        yield from self._record_loop(name, vals, filename)

    def _record_loop(self, name: str, vals: Iterable[Any], filename: str) -> Iterator[Any]:
        ctx = self._context_for(filename)
        frame = ctx.push_loop(name)
        is_checkpoint_loop = (
            self.checkpoints.has_registrations
            and self._ckpt_block_depth.get(filename) is not None
            and ctx.depth == self._ckpt_block_depth[filename] + 1
        )
        try:
            for i, value in enumerate(vals):
                frame.ctx_id = ctx.allocate_ctx_id()
                frame.iteration = i
                frame.iteration_value = value
                self._buffer.stage_loop(
                    self.projid,
                    self.tstamp,
                    filename,
                    frame.ctx_id,
                    frame.parent_ctx_id,
                    name,
                    i,
                    stringify_iteration_value(value),
                )
                self._note_loop_iteration(filename, name, i)
                started = time.perf_counter()
                yield value
                elapsed = time.perf_counter() - started
                if is_checkpoint_loop:
                    # Submit without waiting: the iteration boundary hands
                    # rows (and, below, the checkpoint) to the background
                    # workers instead of blocking the loop on SQLite.
                    self.flush(wait=False)
                    self.checkpoints.maybe_save(
                        CheckpointKey(self.projid, self.tstamp, filename, frame.ctx_id, name),
                        iteration=i,
                        iter_seconds=elapsed,
                    )
        finally:
            ctx.pop_loop(frame)

    def _replay_loop(self, name: str, vals: Iterable[Any], filename: str) -> Iterator[Any]:
        ctx = self._context_for(filename)
        frame = ctx.push_loop(name)
        parent = frame.parent_ctx_id
        recorded = [
            r
            for r in self.loops.by_context(self.projid, self.tstamp, filename)
            if r.loop_name == name and (r.parent_ctx_id or TOP_LEVEL_CTX) == parent
        ]
        recorded.sort(key=lambda r: r.loop_iteration)
        recorded_by_iteration = {r.loop_iteration: r for r in recorded}
        vals_list = list(vals)
        total = max(len(vals_list), len(recorded))
        plan = self._replay_plan
        is_checkpoint_loop = (
            self.checkpoints.has_registrations
            and self._ckpt_block_depth.get(filename) is not None
            and ctx.depth == self._ckpt_block_depth[filename] + 1
        )
        selected_iterations = {
            i for i in range(total) if (plan.selects(name, i) if plan is not None else True)
        }
        must_execute = self._iterations_to_execute(
            selected_iterations, total, filename, name, recorded, is_checkpoint_loop
        )
        last_executed = -1
        try:
            for i in range(total):
                record = recorded_by_iteration.get(i)
                if i < len(vals_list):
                    value = vals_list[i]
                elif record is not None:
                    value = record.iteration_value
                else:  # pragma: no cover - defensive
                    break
                if i not in must_execute:
                    self.replay_stats["iterations_skipped"] += 1
                    continue
                if is_checkpoint_loop and last_executed < i - 1:
                    self._restore_nearest_checkpoint(filename, name, recorded, upto_iteration=i - 1)
                if record is not None:
                    frame.ctx_id = ctx.reserve_ctx_id(record.ctx_id)
                else:
                    frame.ctx_id = ctx.allocate_ctx_id()
                    self._buffer.stage_loop(
                        self.projid,
                        self.tstamp,
                        filename,
                        frame.ctx_id,
                        parent,
                        name,
                        i,
                        stringify_iteration_value(value),
                    )
                frame.iteration = i
                frame.iteration_value = value
                self.replay_stats["iterations_executed"] += 1
                yield value
                last_executed = i
        finally:
            ctx.pop_loop(frame)

    def _iterations_to_execute(
        self,
        selected: set[int],
        total: int,
        filename: str,
        loop_name: str,
        recorded: list[LoopRecord],
        is_checkpoint_loop: bool,
    ) -> set[int]:
        """Close the selected set under state dependencies.

        For a loop that carries state across iterations, executing iteration
        ``i`` correctly requires resuming from the nearest checkpoint at
        ``j <= i - 1`` and re-executing every iteration in ``(j, i)``.  For a
        stateless loop (no checkpointing block) the selected set is used
        as-is — the paper's differential execution at its most aggressive.
        """
        if selected >= set(range(total)):
            return set(range(total))
        if not is_checkpoint_loop:
            return set(selected)
        # Iterations that have a stored checkpoint, by iteration index.
        with_ckpt = set()
        ckpt_ctx = {
            ctx_id
            for ctx_id, name_ in self.checkpoints.available_checkpoints(
                self.projid, self.tstamp, filename
            )
            if name_ == loop_name
        }
        for record in recorded:
            if record.ctx_id in ckpt_ctx:
                with_ckpt.add(record.loop_iteration)
        must = set()
        for i in sorted(selected):
            j = max((k for k in with_ckpt if k <= i - 1), default=-1)
            must.update(range(j + 1, i + 1))
        return must

    def _restore_nearest_checkpoint(
        self,
        filename: str,
        loop_name: str,
        recorded: list[LoopRecord],
        upto_iteration: int,
    ) -> None:
        """Restore the latest checkpoint at or before ``upto_iteration``."""
        candidates = [r for r in recorded if r.loop_iteration <= upto_iteration]
        for record in sorted(candidates, key=lambda r: r.loop_iteration, reverse=True):
            key = CheckpointKey(self.projid, self.tstamp, filename, record.ctx_id, loop_name)
            if self.checkpoints.restore(key):
                self.replay_stats["checkpoints_restored"] += 1
                return

    # -------------------------------------------------------------- iteration
    @contextmanager
    def iteration(self, name: str, index: int | None, value: Any, filename: str | None = None) -> Iterator[Any]:
        """Manually scoped single loop iteration (``flor.iteration`` in Fig. 6).

        Used by long-running processes (web handlers) that need to attribute
        logs to a named entity — e.g. one document — outside a ``for`` loop.
        ``index`` of None auto-increments past the highest recorded iteration
        of this loop within the current run.
        """
        filename = filename or self.current_filename()
        ctx = self._context_for(filename)
        frame = ctx.push_loop(name)
        if index is None:
            if self.mode == RECORD:
                # O(1): the epoch-local counter already accounts for every
                # loop row this session staged under its fresh tstamp — and
                # nobody else can write rows under that tstamp — so neither
                # a flush barrier nor a database scan is needed.
                index = self._loop_iteration_next.get((filename, name), 0)
            else:
                existing = [
                    r.loop_iteration
                    for r in self.loops.by_context(self.projid, self.tstamp, filename)
                    if r.loop_name == name
                ] + self._buffer.staged_loop_iterations(self.tstamp, filename, name)
                index = (max(existing) + 1) if existing else 0
        frame.ctx_id = ctx.allocate_ctx_id()
        frame.iteration = index
        frame.iteration_value = value
        self._buffer.stage_loop(
            self.projid,
            self.tstamp,
            filename,
            frame.ctx_id,
            frame.parent_ctx_id,
            name,
            index,
            stringify_iteration_value(value),
        )
        self._note_loop_iteration(filename, name, index)
        try:
            yield value
        finally:
            ctx.pop_loop(frame)

    # ---------------------------------------------------------- checkpointing
    @contextmanager
    def checkpointing(
        self,
        mapping: Mapping[str, Any] | None = None,
        /,
        filename: str | None = None,
        **objects: Any,
    ) -> Iterator[None]:
        """Register objects for adaptive checkpointing within the block."""
        registered = dict(mapping or {})
        registered.update(objects)
        filename = filename or self.current_filename()
        ctx = self._context_for(filename)
        self.checkpoints.register(registered)
        previous_depth = self._ckpt_block_depth.get(filename)
        self._ckpt_block_depth[filename] = ctx.depth
        try:
            yield
        finally:
            if previous_depth is None:
                self._ckpt_block_depth.pop(filename, None)
            else:
                self._ckpt_block_depth[filename] = previous_depth
            self.checkpoints.clear()

    # ---------------------------------------------------------------- commit
    def flush(self, wait: bool = True) -> None:
        """Drain staged records toward the database.

        With ``wait`` (the default) this is the read-your-writes barrier:
        it returns only once every staged and previously submitted row is
        durable, exactly like the historical synchronous flush.  With
        ``wait=False`` (async sessions only, used at loop iteration
        boundaries) the staged rows are handed to the background flusher
        and the recording thread moves on immediately.

        Each transaction that writes rows bumps the query cache's generation
        counter for this project — from the flusher's thread, *after* the
        commit — so materialized pivot views notice the append on their next
        read (and merge just the delta).
        """
        log_rows, loop_rows = self._buffer.drain_rows()
        if log_rows or loop_rows:
            try:
                self.flusher.submit(log_rows, loop_rows, on_written=self._note_rows_written)
            except FlushCallbackError:
                # The rows are durable (sync/inline write committed before
                # its callback failed); restoring them would duplicate.
                raise
            except Exception:
                # An inline write failed (sync mode, or a flusher already
                # closed): the rows reached neither the queue nor the
                # database, so restore them for a later retry — matching the
                # historical keep-pending-on-failure semantics.
                self._buffer.restore_rows(log_rows, loop_rows)
                raise
        if wait:
            self.flusher.drain()

    def _note_rows_written(self, _count: int) -> None:
        """Invalidation hook run after each transaction that wrote our rows."""
        if self._query_engine is not None:
            self._query_engine.note_write()
        elif self._query_cache is not None:
            # A shared cache must learn about this write even though this
            # session never read through it — another engine on a
            # different database handle sees neither our write_version
            # nor (without this) a generation bump.
            self._query_cache.bump_generation(self.projid)

    def commit(self, message: str = "", root_target: str | None = None) -> str | None:
        """Application-level transaction commit (``flor.commit`` in the paper).

        Flushes buffered records, snapshots tracked files into the version
        store, records the ``ts2vid`` epoch and starts a new timestamp.
        Returns the new version id (or None in replay mode, where commits are
        no-ops beyond flushing).
        """
        self.flush()
        if self.mode == REPLAY:
            return None
        # Checkpoints belonging to this epoch must be durable before the
        # version boundary — the drain barrier of the async writer.
        self.checkpoints.drain()
        ts_end = _timestamps.next()
        commit: Commit = self.repository.commit(message=message, tstamp=self.tstamp)
        self.ts2vid.add(
            Ts2VidRecord(
                projid=self.projid,
                ts_start=self.epoch_start,
                ts_end=ts_end,
                vid=commit.vid,
                root_target=root_target,
            )
        )
        self.tstamp = _timestamps.next()
        self.epoch_start = self.tstamp
        # Fresh timestamp, fresh run: auto-indices restart per epoch.
        self._loop_iteration_next.clear()
        return commit.vid

    # ------------------------------------------------------------- dataframe
    @property
    def query(self) -> "Any":
        """This session's :class:`~repro.query.QueryEngine` (created lazily).

        One engine per session; in the service layer that makes its pivot
        cache the per-shard cache, warm across every request that checks
        out the shard.
        """
        if self._query_engine is None:
            from ..query import QueryEngine

            self._query_engine = QueryEngine(self.db, self.projid, cache=self._query_cache)
        return self._query_engine

    def dataframe(
        self,
        *names: str,
        latest: bool = False,
        tstamp_range: tuple[str | None, str | None] | None = None,
    ):
        """Pivoted view of the requested log names (``flor.dataframe``).

        Served by the query engine: repeated reads hit the materialized
        view, appends since the last read merge incrementally, and
        ``tstamp_range`` pushes an inclusive ``(since, until)`` bound into
        the SQLite scan.  ``latest`` keeps only the newest run's rows.
        """
        self.flush()
        return self.query.dataframe(*names, latest=latest, tstamp_range=tstamp_range)

    def sql(self, query: str, names: Sequence[str] = (), params: Sequence[Any] = ()):
        """Read-only SQL over the context store (the paper's "or SQL" path).

        Without ``names`` the query runs directly against the physical tables
        of Figure 1.  With ``names`` the pivoted view of those log names is
        materialized as a temporary ``pivot`` table first — backed by the
        query engine's cached view — so run-level questions become plain SQL::

            session.sql("SELECT tstamp, MAX(recall) AS best FROM pivot GROUP BY tstamp",
                        names=["recall"])
        """
        self.flush()
        return self.query.sql(query, names=names, params=params)


def _coerce_like(value: Any, default: Any) -> Any:
    """Cast ``value`` to the type of ``default`` when sensible."""
    if default is None or value is None:
        return value
    target = type(default)
    if isinstance(value, target):
        return value
    try:
        if target is bool and isinstance(value, str):
            return value.strip().lower() in {"1", "true", "yes", "on"}
        return target(value)
    except (TypeError, ValueError):
        return value


# --------------------------------------------------------------------------
# Active-session management
# --------------------------------------------------------------------------
#
# The stack lives in a ContextVar so that concurrently replaying threads (the
# hindsight engine's thread pool) each see their own activation, while
# ordinary single-threaded scripts behave like a plain global.

_session_stack: ContextVar[tuple["Session", ...]] = ContextVar("flor_session_stack", default=())
_default_session: Session | None = None
_default_session_factory: Callable[[], Session] | None = None
_atexit_registered = False


def set_default_session_factory(factory: Callable[[], Session] | None) -> None:
    """Override how the implicit default session is created (mainly for tests)."""
    global _default_session_factory, _default_session
    _default_session_factory = factory
    _default_session = None


def get_active_session(create_default: bool = True) -> Session:
    """The session that module-level flor calls should use.

    When no session has been activated and ``create_default`` is True, a
    default record-mode session rooted at the current working directory (or
    ``FLOR_PROJECT_DIR``) is created lazily and kept for the process
    lifetime; its pending records are committed at interpreter exit, which is
    the paper's ``atexit`` behaviour.
    """
    global _atexit_registered, _default_session
    stack = _session_stack.get()
    if stack:
        return stack[-1]
    if not create_default:
        raise RecordingError("no active FlorDB session")
    if _default_session is None:
        factory = _default_session_factory or (lambda: Session(ProjectConfig.discover(os.getcwd())))
        _default_session = factory()
        if not _atexit_registered:
            atexit.register(_commit_default_session)
            _atexit_registered = True
    return _default_session


def _commit_default_session() -> None:  # pragma: no cover - interpreter teardown
    if _default_session is None:
        return
    try:
        if _default_session.pending_records:
            _default_session.commit(message="flor atexit commit")
    except Exception:
        pass


@contextmanager
def active_session(session: Session) -> Iterator[Session]:
    """Make ``session`` the target of module-level flor calls within the block."""
    token = _session_stack.set(_session_stack.get() + (session,))
    try:
        yield session
    finally:
        _session_stack.reset(token)
