"""Runtime context bookkeeping shared by the record and replay engines.

FlorDB stamps every log record with ``(projid, tstamp, filename, ctx_id)``.
The first three identify a run of a script within a version epoch; ``ctx_id``
identifies the innermost ``flor.loop`` iteration active when the record was
emitted (0 when logging outside any loop).  :class:`ContextState` maintains
the loop stack and allocates context ids; :class:`TimestampGenerator`
produces strictly monotonic run timestamps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

#: ctx_id used for records emitted outside any flor.loop.
TOP_LEVEL_CTX = 0


class TimestampGenerator:
    """Produces strictly increasing ISO-8601 timestamps.

    Wall-clock time alone can collide when runs start within the same
    microsecond (common in tests), so a logical counter breaks ties while the
    textual ordering stays consistent with chronological ordering.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._last = 0.0

    def next(self) -> str:
        with self._lock:
            now = time.time()
            if now <= self._last:
                now = self._last + 1e-6
            self._last = now
            whole = time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(now))
            fraction = int(round((now % 1) * 1_000_000))
            if fraction >= 1_000_000:
                fraction = 999_999
            return f"{whole}.{fraction:06d}"


@dataclass
class LoopFrame:
    """One active ``flor.loop`` (or ``flor.iteration``) level.

    A frame is re-pointed at each iteration: ``ctx_id`` and ``iteration``
    change as the loop advances, while ``loop_name`` and ``parent_ctx_id``
    stay fixed for the lifetime of the loop.
    """

    loop_name: str
    parent_ctx_id: int
    ctx_id: int = TOP_LEVEL_CTX
    iteration: int = -1
    iteration_value: Any = None


@dataclass
class ContextState:
    """Loop stack and ctx_id allocation for one executing file.

    ``ctx_id`` values are unique within ``(projid, tstamp, filename)`` and are
    assigned in execution order starting at 1 (0 is the top level).
    """

    filename: str
    next_ctx_id: int = 1
    stack: list[LoopFrame] = field(default_factory=list)

    @property
    def current_ctx_id(self) -> int:
        return self.stack[-1].ctx_id if self.stack else TOP_LEVEL_CTX

    @property
    def current_parent_ctx_id(self) -> int:
        return self.stack[-1].parent_ctx_id if self.stack else TOP_LEVEL_CTX

    @property
    def depth(self) -> int:
        return len(self.stack)

    def allocate_ctx_id(self) -> int:
        ctx_id = self.next_ctx_id
        self.next_ctx_id += 1
        return ctx_id

    def reserve_ctx_id(self, ctx_id: int) -> int:
        """Mark an externally chosen ctx_id (from replay) as used."""
        self.next_ctx_id = max(self.next_ctx_id, ctx_id + 1)
        return ctx_id

    def push_loop(self, loop_name: str) -> LoopFrame:
        frame = LoopFrame(loop_name=loop_name, parent_ctx_id=self.current_ctx_id)
        self.stack.append(frame)
        return frame

    def pop_loop(self, frame: LoopFrame) -> None:
        if not self.stack or self.stack[-1] is not frame:
            # Defensive: generators can be abandoned mid-iteration; unwind to
            # the frame if it is still on the stack, otherwise ignore.
            while self.stack and self.stack[-1] is not frame:
                self.stack.pop()
        if self.stack and self.stack[-1] is frame:
            self.stack.pop()

    def loop_path(self) -> tuple[tuple[str, int], ...]:
        """Current nesting as ``((loop_name, iteration), ...)`` outermost first."""
        return tuple((f.loop_name, f.iteration) for f in self.stack)


def stringify_iteration_value(value: Any, limit: int = 256) -> str | None:
    """Compact textual form of a loop's iteration value for the loops table.

    Only cheap-to-render scalar values are stringified in full; bulky values
    (mini-batches, arrays, arbitrary objects) are summarized by type and
    shape so that recording a training step costs microseconds, not an array
    pretty-print.  The value is informational — replay re-derives the real
    values from the script.
    """
    if value is None:
        return None
    if isinstance(value, (str, int, float, bool)):
        text = str(value)
    elif hasattr(value, "shape"):
        text = f"<{type(value).__name__} shape={getattr(value, 'shape', '?')}>"
    elif isinstance(value, (tuple, list)):
        text = f"<{type(value).__name__} len={len(value)}>"
    elif isinstance(value, dict):
        text = f"<dict keys={list(value)[:8]}>"
    else:
        text = f"<{type(value).__name__}>"
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text
