"""Feature-store role: "feature storage and querying after execution" (§4.1).

A feature here is any value logged inside an entity loop (e.g. per document
and page).  The store offers the two halves of a conventional feature store —
offline materialization (a training frame) and online lookup (features of one
entity) — without requiring any registration before the pipeline ran, which
is exactly the paper's takeaway for featurization contexts.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..core.session import Session
from ..dataframe import DataFrame
from ..relational.queries import latest


class FeatureStore:
    """Query and write per-entity features through a FlorDB session."""

    def __init__(self, session: Session, entity_loop: str = "document", sub_entity_loop: str | None = "page"):
        self.session = session
        self.entity_loop = entity_loop
        self.sub_entity_loop = sub_entity_loop

    # ----------------------------------------------------------------- reads
    def materialize(self, feature_names: Sequence[str], latest_only: bool = True) -> DataFrame:
        """Offline view: one row per entity (and sub-entity) with feature columns."""
        frame = self.session.dataframe(*feature_names)
        if latest_only and not frame.empty:
            frame = latest(frame)
        return frame

    def entities(self, feature_names: Sequence[str]) -> list[Any]:
        """Distinct entity identifiers that have at least one feature recorded."""
        frame = self.session.dataframe(*feature_names)
        column = f"{self.entity_loop}_value"
        if frame.empty or column not in frame:
            return []
        return frame[column].unique()

    def get_features(self, entity: Any, feature_names: Sequence[str]) -> list[dict[str, Any]]:
        """Online view: the latest feature rows for one entity."""
        frame = self.materialize(feature_names, latest_only=False)
        column = f"{self.entity_loop}_value"
        if frame.empty or column not in frame:
            return []
        rows = frame[frame[column] == entity]
        if rows.empty:
            return []
        rows = latest(rows)
        return rows.to_records()

    def feature_names(self) -> list[str]:
        """Every value name ever logged for this project."""
        return self.session.logs.distinct_names(self.session.projid)

    # ---------------------------------------------------------------- writes
    def write_features(self, entity: Any, features: Mapping[str, Any], sub_entity: Any | None = None) -> None:
        """Record features for an entity outside of a pipeline loop.

        Used by serving-time callers (e.g. the feedback app) that compute a
        feature on demand; the write shares the provenance machinery of the
        batch pipeline because it goes through the same ``iteration`` API.
        """
        with self.session.iteration(self.entity_loop, None, entity):
            if sub_entity is not None and self.sub_entity_loop:
                with self.session.iteration(self.sub_entity_loop, None, sub_entity):
                    for name, value in features.items():
                        self.session.log(name, value)
            else:
                for name, value in features.items():
                    self.session.log(name, value)
        self.session.flush()
