"""Exports: CSV/JSON dataframe dumps and TensorBoard-style scalar files.

The paper notes that FlorDB "can be used with TensorBoard to visualize
training metrics" and that metadata should flow into standard tools rather
than a proprietary store.  This module provides the outbound half of that
story: pivoted views export to CSV or JSON Lines for spreadsheets and
notebooks, and metric series export to the simple
``run/<tag>.scalars.json`` layout that scalar-plotting dashboards ingest
(step, wall_time, value triples — the same shape TensorBoard's scalar export
uses).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from ..core.session import Session
from ..dataframe import DataFrame
from .metric_registry import MetricRegistry


def dataframe_to_csv(frame: DataFrame, path: Path | str) -> Path:
    """Write a dataframe to ``path`` as UTF-8 CSV (header + one row per record)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=frame.columns)
        writer.writeheader()
        for row in frame.to_records():
            writer.writerow({k: _cell(v) for k, v in row.items()})
    return path


def dataframe_to_jsonl(frame: DataFrame, path: Path | str) -> Path:
    """Write a dataframe to ``path`` as JSON Lines (one object per row)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for row in frame.to_records():
            handle.write(json.dumps(row, default=str) + "\n")
    return path


def _cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, (list, dict)):
        return json.dumps(value, default=str)
    return str(value)


def export_scalars(
    session: Session,
    metrics: Sequence[str],
    directory: Path | str,
    runs: Sequence[str] | None = None,
) -> dict[str, list[str]]:
    """Export metric series as TensorBoard-style scalar files.

    Layout: ``<directory>/<run index>/<metric>.scalars.json`` where each file
    holds a list of ``{"step", "value", "tstamp"}`` points.  Returns a map
    from run timestamp to the files written for it.
    """
    directory = Path(directory)
    registry = MetricRegistry(session)
    written: dict[str, list[str]] = {}
    for metric in metrics:
        run_ids = registry.runs(metric)
        if runs is not None:
            run_ids = [r for r in run_ids if r in set(runs)]
        for index, tstamp in enumerate(run_ids):
            series = registry.series(metric, tstamp)
            if not series.values:
                continue
            run_dir = directory / f"run_{index:03d}"
            run_dir.mkdir(parents=True, exist_ok=True)
            payload = [
                {"step": step, "value": value, "tstamp": tstamp}
                for step, value in zip(series.steps, series.values)
            ]
            target = run_dir / f"{metric}.scalars.json"
            target.write_text(json.dumps(payload, indent=2))
            written.setdefault(tstamp, []).append(str(target))
    return written
