"""Label-store role: machine and human labels with provenance (§4.4).

The feedback loop of the PDF-parser demo mixes model predictions with expert
corrections submitted through the web UI.  Both kinds of label flow through
``flor.log`` with a source tag, so "who labelled this page, and when?" is a
query rather than a spreadsheet.  ``resolve`` implements the demo's display
rule: prefer the newest human label, fall back to the newest model label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..core.session import Session

SOURCE_HUMAN = "human"
SOURCE_MODEL = "model"


@dataclass(frozen=True)
class LabelRecord:
    """One label for one entity (e.g. one page of one document)."""

    entity: Any
    sub_entity: Any
    name: str
    value: Any
    source: str
    tstamp: str


class LabelStore:
    """Record and resolve labels keyed by (entity, sub-entity)."""

    def __init__(
        self,
        session: Session,
        entity_loop: str = "document",
        sub_entity_loop: str = "page",
        filename: str = "labels",
    ):
        self.session = session
        self.entity_loop = entity_loop
        self.sub_entity_loop = sub_entity_loop
        self.filename = filename

    # ---------------------------------------------------------------- writes
    def record_labels(
        self,
        entity: Any,
        labels: Mapping[Any, Mapping[str, Any]],
        source: str = SOURCE_HUMAN,
    ) -> int:
        """Record labels for several sub-entities of one entity.

        ``labels`` maps sub-entity (e.g. page index) to ``{label_name: value}``.
        Returns the number of label values written.
        """
        written = 0
        with self.session.iteration(self.entity_loop, None, entity, filename=self.filename):
            for sub_entity, values in labels.items():
                with self.session.iteration(self.sub_entity_loop, None, sub_entity, filename=self.filename):
                    for name, value in values.items():
                        self.session.log(name, value, filename=self.filename)
                        self.session.log(f"{name}__source", source, filename=self.filename)
                        written += 1
        self.session.flush()
        return written

    def record_model_labels(self, entity: Any, labels: Mapping[Any, Mapping[str, Any]]) -> int:
        return self.record_labels(entity, labels, source=SOURCE_MODEL)

    # ----------------------------------------------------------------- reads
    def labels(self, name: str) -> list[LabelRecord]:
        """Every recorded label value for ``name`` with its provenance."""
        frame = self.session.dataframe(name, f"{name}__source")
        records: list[LabelRecord] = []
        entity_col = f"{self.entity_loop}_value"
        sub_col = f"{self.sub_entity_loop}_value"
        for row in frame.to_records():
            if row.get(name) is None:
                continue
            records.append(
                LabelRecord(
                    entity=row.get(entity_col),
                    sub_entity=row.get(sub_col),
                    name=name,
                    value=row.get(name),
                    source=row.get(f"{name}__source") or SOURCE_MODEL,
                    tstamp=row.get("tstamp"),
                )
            )
        return records

    def resolve(self, name: str, entity: Any) -> dict[Any, LabelRecord]:
        """Current label per sub-entity of ``entity``.

        Human labels win over model labels; within a source the newest
        timestamp wins.  This is the display logic of the demo UI.
        """
        candidates = [r for r in self.labels(name) if r.entity == entity]
        resolved: dict[Any, LabelRecord] = {}
        for record in candidates:
            key = record.sub_entity
            current = resolved.get(key)
            if current is None or self._wins(record, current):
                resolved[key] = record
        return resolved

    @staticmethod
    def _wins(challenger: LabelRecord, incumbent: LabelRecord) -> bool:
        rank = {SOURCE_HUMAN: 1, SOURCE_MODEL: 0}
        challenger_rank = rank.get(challenger.source, 0)
        incumbent_rank = rank.get(incumbent.source, 0)
        if challenger_rank != incumbent_rank:
            return challenger_rank > incumbent_rank
        return (challenger.tstamp or "") >= (incumbent.tstamp or "")

    def coverage(self, name: str, entities: Sequence[Any]) -> dict[str, float]:
        """Fraction of the given entities that have at least one human label."""
        by_entity = {}
        for record in self.labels(name):
            if record.source == SOURCE_HUMAN:
                by_entity[record.entity] = True
        labelled = sum(1 for e in entities if by_entity.get(e))
        return {
            "entities": float(len(entities)),
            "human_labelled": float(labelled),
            "coverage": labelled / len(entities) if entities else 0.0,
        }
