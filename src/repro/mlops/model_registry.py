"""Model-registry role: checkpoint selection "post-execution" (§4.2).

The paper's inference pipeline asks FlorDB for
``flor.dataframe("acc", "recall")`` and picks the checkpoint with the best
recall — no separate registry service.  This module packages that pattern:
models register themselves (pickled into ``obj_store`` alongside their
metrics), and ``best`` / ``load_best`` answer "which checkpoint should
inference use?" from the recorded history.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Mapping

from ..core.session import Session
from ..dataframe import DataFrame
from ..errors import ReproError
from ..relational.records import ObjectRecord

_MODEL_PREFIX = "model::"


@dataclass(frozen=True)
class RegisteredModel:
    """One registered model version."""

    name: str
    tstamp: str
    filename: str
    metrics: dict[str, float]

    @property
    def key(self) -> tuple[str, str]:
        return (self.tstamp, self.name)


class ModelRegistry:
    """Register, list and select model checkpoints through FlorDB."""

    def __init__(self, session: Session, filename: str = "train.py"):
        self.session = session
        self.filename = filename

    # ------------------------------------------------------------- register
    def register(self, name: str, model: Any, metrics: Mapping[str, float]) -> RegisteredModel:
        """Persist ``model`` plus its evaluation metrics for later selection."""
        tstamp = self.session.tstamp
        payload = self._serialize(model)
        self.session.objects.put(
            ObjectRecord(
                projid=self.session.projid,
                tstamp=tstamp,
                filename=self.filename,
                ctx_id=0,
                value_name=f"{_MODEL_PREFIX}{name}",
                contents=payload,
            )
        )
        for metric, value in metrics.items():
            self.session.log(metric, float(value), filename=self.filename)
        self.session.log("model_name", name, filename=self.filename)
        self.session.flush()
        return RegisteredModel(
            name=name,
            tstamp=tstamp,
            filename=self.filename,
            metrics={k: float(v) for k, v in metrics.items()},
        )

    def _serialize(self, model: Any) -> bytes:
        state_getter = getattr(model, "state_dict", None)
        payload = {"state_dict": state_getter()} if callable(state_getter) else {"object": model}
        payload["class"] = type(model).__name__
        if hasattr(model, "in_features"):
            payload["init"] = {
                "in_features": model.in_features,
                "num_classes": model.num_classes,
                "hidden_sizes": model.hidden_sizes,
            }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    # ---------------------------------------------------------------- query
    def metrics_frame(self, *metric_names: str) -> DataFrame:
        """All recorded metric values across training runs."""
        names = metric_names or ("acc", "recall")
        return self.session.dataframe(*names)

    def list_models(self) -> list[tuple[str, str]]:
        """``(tstamp, model_name)`` of every registered checkpoint."""
        out = []
        for tstamp, filename, _ctx, value_name in self.session.objects.list_keys(self.session.projid):
            if filename == self.filename and value_name.startswith(_MODEL_PREFIX):
                out.append((tstamp, value_name[len(_MODEL_PREFIX):]))
        return sorted(out)

    def best(self, metric: str = "recall") -> dict[str, Any] | None:
        """The run (row) with the highest recorded value for ``metric``."""
        frame = self.session.dataframe(metric)
        if frame.empty or metric not in frame:
            return None
        rows = [r for r in frame.to_records() if r.get(metric) is not None]
        if not rows:
            return None
        return max(rows, key=lambda r: r[metric])

    # ----------------------------------------------------------------- load
    def load(self, tstamp: str, name: str, model_factory=None) -> Any:
        """Rehydrate a registered model.

        When the stored payload is a state dict, ``model_factory`` (or the
        recorded init signature with :class:`repro.ml.MLPClassifier`) builds
        the empty model before the state is loaded into it.
        """
        record = self.session.objects.get(
            self.session.projid, tstamp, self.filename, 0, f"{_MODEL_PREFIX}{name}"
        )
        if record is None:
            raise ReproError(f"no registered model {name!r} at tstamp {tstamp}")
        payload = pickle.loads(record.contents)
        if "object" in payload:
            return payload["object"]
        state = payload["state_dict"]
        if model_factory is not None:
            model = model_factory()
        elif "init" in payload:
            from ..ml.mlp import MLPClassifier

            init = payload["init"]
            model = MLPClassifier(
                in_features=init["in_features"],
                num_classes=init["num_classes"],
                hidden_sizes=tuple(init["hidden_sizes"]),
            )
        else:
            raise ReproError(f"model {name!r} stored as a state dict; pass model_factory to load it")
        model.load_state_dict(state)
        return model

    def load_best(self, metric: str = "recall", model_factory=None) -> tuple[Any, dict[str, Any]] | None:
        """Load the checkpoint of the best run by ``metric`` (model, run-row)."""
        best_row = self.best(metric)
        if best_row is None:
            return None
        tstamp = best_row["tstamp"]
        candidates = [name for ts, name in self.list_models() if ts == tstamp]
        if not candidates:
            return None
        model = self.load(tstamp, candidates[-1], model_factory=model_factory)
        return model, best_row
