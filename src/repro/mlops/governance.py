"""Governance role: "post-hoc governance enforcement" (§4.2).

Policies are declared *after* the runs happened and evaluated against the
recorded context — e.g. "flag any training run whose dataset hash appears on
the poisoned-dataset blocklist" or "flag runs whose accuracy jumped
implausibly between epochs".  Because FlorDB retains every run's logs, the
check is retroactive by construction; when a needed value was never logged,
hindsight logging can backfill it first and the policy re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..core.session import Session
from ..errors import GovernanceError


@dataclass(frozen=True)
class PolicyViolation:
    """One rule violation found in one recorded run (row)."""

    policy: str
    tstamp: str
    detail: str
    row: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)


@dataclass
class GovernanceReport:
    """Outcome of evaluating a set of policies against recorded history."""

    checked_rows: int = 0
    violations: list[PolicyViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violations_by_policy(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.policy] = counts.get(violation.policy, 0) + 1
        return counts


@dataclass
class _Rule:
    name: str
    value_names: tuple[str, ...]
    predicate: Callable[[dict[str, Any]], str | None]


class GovernancePolicy:
    """A collection of retroactive checks over logged values."""

    def __init__(self, session: Session):
        self.session = session
        self._rules: list[_Rule] = []

    # --------------------------------------------------------------- authoring
    def add_rule(
        self,
        name: str,
        value_names: Sequence[str],
        predicate: Callable[[dict[str, Any]], str | None],
    ) -> None:
        """Add a custom rule.

        ``predicate`` receives a pivoted row (run metadata plus the requested
        value columns) and returns a human-readable violation string, or
        ``None`` when the row is compliant.
        """
        if not value_names:
            raise GovernanceError(f"rule {name!r} must name at least one logged value")
        self._rules.append(_Rule(name, tuple(value_names), predicate))

    def add_blocklist_rule(self, name: str, value_name: str, blocked: Sequence[Any]) -> None:
        """Flag rows whose ``value_name`` appears in ``blocked`` (e.g. poisoned dataset hashes)."""
        blocked_set = {str(b) for b in blocked}

        def predicate(row: dict[str, Any]) -> str | None:
            value = row.get(value_name)
            if value is not None and str(value) in blocked_set:
                return f"{value_name}={value!r} is on the blocklist"
            return None

        self.add_rule(name, [value_name], predicate)

    def add_range_rule(
        self, name: str, value_name: str, minimum: float | None = None, maximum: float | None = None
    ) -> None:
        """Flag rows whose numeric ``value_name`` falls outside ``[minimum, maximum]``."""

        def predicate(row: dict[str, Any]) -> str | None:
            value = row.get(value_name)
            if value is None:
                return None
            try:
                numeric = float(value)
            except (TypeError, ValueError):
                return f"{value_name}={value!r} is not numeric"
            if minimum is not None and numeric < minimum:
                return f"{value_name}={numeric} below minimum {minimum}"
            if maximum is not None and numeric > maximum:
                return f"{value_name}={numeric} above maximum {maximum}"
            return None

        self.add_rule(name, [value_name], predicate)

    def add_required_rule(self, name: str, value_name: str) -> None:
        """Flag rows where ``value_name`` was never logged (missing provenance)."""

        def predicate(row: dict[str, Any]) -> str | None:
            if row.get(value_name) is None:
                return f"required value {value_name!r} was not logged"
            return None

        self.add_rule(name, [value_name], predicate)

    # --------------------------------------------------------------- execution
    def evaluate(self) -> GovernanceReport:
        """Evaluate every rule against the recorded history.

        Each violation is reported once per ``(policy, run, detail)``: a
        run-level property broadcast over many loop rows (e.g. a dataset
        hash) yields a single violation for that run, while per-iteration
        values (e.g. an out-of-range metric at several epochs) yield one
        violation per offending value.
        """
        report = GovernanceReport()
        if not self._rules:
            return report
        all_names = sorted({n for rule in self._rules for n in rule.value_names})
        frame = self.session.dataframe(*all_names)
        rows = frame.to_records()
        if not rows:
            # Nothing was ever logged under the requested names: evaluate the
            # rules once per recorded epoch so "required value" checks still
            # surface the gap.
            rows = [
                {"projid": self.session.projid, "tstamp": epoch.ts_start}
                for epoch in self.session.ts2vid.all(self.session.projid)
            ]
        report.checked_rows = len(rows)
        seen: set[tuple[str, str, str]] = set()
        for row in rows:
            for rule in self._rules:
                detail = rule.predicate(row)
                if detail is None:
                    continue
                key = (rule.name, row.get("tstamp", ""), detail)
                if key in seen:
                    continue
                seen.add(key)
                report.violations.append(
                    PolicyViolation(
                        policy=rule.name,
                        tstamp=row.get("tstamp", ""),
                        detail=detail,
                        row=dict(row),
                    )
                )
        return report

    def enforce(self) -> GovernanceReport:
        """Evaluate and raise :class:`GovernanceError` when violations exist."""
        report = self.evaluate()
        if not report.ok:
            summary = ", ".join(f"{k}×{v}" for k, v in sorted(report.violations_by_policy().items()))
            raise GovernanceError(f"governance violations found: {summary}")
        return report
