"""MLOps roles built on the FlorDB context store (Section 4 takeaways).

The paper argues that one context store can replace a collection of bespoke
ML metadata systems.  Each module here is one of those roles, implemented as
a thin facade over the same ``logs`` / ``loops`` / ``obj_store`` tables:

* :mod:`feature_store`    — store and query per-entity features post-execution,
* :mod:`model_registry`   — register checkpoints, pick the best by metric,
* :mod:`metric_registry`  — metric series and summaries (TensorBoard-style),
* :mod:`label_store`      — human and model labels with provenance,
* :mod:`governance`       — retroactive policy checks over recorded runs.
"""

from .export import dataframe_to_csv, dataframe_to_jsonl, export_scalars
from .feature_store import FeatureStore
from .governance import GovernancePolicy, GovernanceReport, PolicyViolation
from .label_store import LabelStore, LabelRecord
from .metric_registry import MetricRegistry, MetricSeries
from .model_registry import ModelRegistry, RegisteredModel

__all__ = [
    "FeatureStore",
    "ModelRegistry",
    "RegisteredModel",
    "MetricRegistry",
    "MetricSeries",
    "LabelStore",
    "LabelRecord",
    "GovernancePolicy",
    "GovernanceReport",
    "PolicyViolation",
    "dataframe_to_csv",
    "dataframe_to_jsonl",
    "export_scalars",
]
