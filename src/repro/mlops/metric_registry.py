"""Metric-registry role: "metric registry and visualization after execution" (§4).

TensorBoard-style access to metrics that were simply ``flor.log``-ged during
training: per-run series, cross-run comparison tables, and text sparklines
for terminal inspection — none of which required configuration before the
runs happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.session import Session
from ..dataframe import DataFrame


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


@dataclass
class MetricSeries:
    """One metric's trajectory within one run."""

    name: str
    tstamp: str
    steps: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def final(self) -> float | None:
        return self.values[-1] if self.values else None

    @property
    def best(self) -> float | None:
        return max(self.values) if self.values else None

    @property
    def worst(self) -> float | None:
        return min(self.values) if self.values else None

    def sparkline(self) -> str:
        """Unicode sparkline of the series (empty string when no data)."""
        if not self.values:
            return ""
        low, high = min(self.values), max(self.values)
        span = (high - low) or 1.0
        return "".join(
            _SPARK_CHARS[int((v - low) / span * (len(_SPARK_CHARS) - 1))] for v in self.values
        )


class MetricRegistry:
    """Query metric series and summaries from recorded runs."""

    def __init__(self, session: Session):
        self.session = session

    def runs(self, metric: str) -> list[str]:
        """Timestamps of runs that recorded ``metric``, oldest first."""
        frame = self.session.dataframe(metric)
        if frame.empty:
            return []
        return sorted(set(frame["tstamp"].dropna().to_list()))

    def series(self, metric: str, tstamp: str | None = None, step_dim: str | None = None) -> MetricSeries:
        """The metric's trajectory within one run (latest run by default).

        ``step_dim`` picks the loop dimension used as the x-axis; when
        omitted the innermost dimension present is used, falling back to the
        record order.
        """
        frame = self.session.dataframe(metric)
        if frame.empty:
            return MetricSeries(name=metric, tstamp=tstamp or "")
        if tstamp is None:
            tstamp = max(frame["tstamp"].dropna().to_list())
        rows = [r for r in frame.to_records() if r.get("tstamp") == tstamp and r.get(metric) is not None]
        dims = [
            c for c in frame.columns
            if c not in {"projid", "tstamp", "filename", metric} and not c.endswith("_value")
        ]
        axis = step_dim if step_dim in dims else (dims[-1] if dims else None)
        series = MetricSeries(name=metric, tstamp=tstamp)
        for i, row in enumerate(rows):
            step = row.get(axis) if axis is not None else i
            series.steps.append(int(step) if step is not None else i)
            series.values.append(float(row[metric]))
        return series

    def compare_runs(self, metrics: Sequence[str]) -> DataFrame:
        """One row per run with the final value of each requested metric."""
        frame = self.session.dataframe(*metrics)
        if frame.empty:
            return frame
        grouped = frame.groupby("tstamp").agg({m: "last" for m in metrics if m in frame})
        return grouped.sort_values("tstamp")

    def summary(self, metric: str) -> dict[str, float | int | None]:
        """Cross-run summary of a metric: runs, points, best/worst/latest final."""
        run_ids = self.runs(metric)
        finals = [self.series(metric, ts).final for ts in run_ids]
        finals = [f for f in finals if f is not None]
        all_points = sum(len(self.series(metric, ts)) for ts in run_ids)
        return {
            "runs": len(run_ids),
            "points": all_points,
            "best_final": max(finals) if finals else None,
            "worst_final": min(finals) if finals else None,
            "latest_final": finals[-1] if finals else None,
        }

    def render(self, metric: str, tstamp: str | None = None) -> str:
        """Terminal-friendly rendering: name, final value and sparkline."""
        series = self.series(metric, tstamp)
        if not series.values:
            return f"{metric}: (no data)"
        return f"{metric}@{series.tstamp}: final={series.final:.4f} {series.sparkline()}"
