"""The worker pool that drains the durable job queue.

A :class:`JobRunner` owns N worker threads polling one :class:`JobStore`.
Each worker claims a job (CAS + lease), marks it running, and hands it to
:func:`~repro.jobs.executor.execute_job`; the outcome maps back onto the
store's state machine:

=====================  ==========================================
executor outcome        store transition
=====================  ==========================================
returns summary         ``finish``  → ``succeeded``
JobCancelled            ``mark_cancelled`` → ``cancelled``
JobInterrupted          ``release`` → ``queued`` (attempt refunded)
JobLeaseLost            none (another worker owns the job now)
any other exception     ``fail`` → ``queued`` w/ backoff, or ``failed``
=====================  ==========================================

A background heartbeat thread renews the lease of every in-flight job at a
fraction of the lease duration — so a version replay that outlives one lease
does not get reclaimed out from under a healthy worker — and propagates
``cancel_requested`` flags to the executing thread between heartbeats.

Sessions come from a pluggable provider: ``repro serve`` passes a closure
over its sharded :class:`~repro.service.pool.DatabasePool` (each version
replay holds the shard lock only for its own duration), while tests and the
CLI drain mode can pass any ``project → Session`` context manager.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..config import FLOR_DIR_NAME, ProjectConfig
from ..core.session import Session
from ..errors import JobError
from .executor import (
    JobCancelled,
    JobInterrupted,
    JobLeaseLost,
    SessionProvider,
    execute_job,
)
from .store import JobStore


@dataclass
class RunnerStats:
    """Lifetime counters of one runner (thread-safe via the runner lock)."""

    claims: int = 0
    succeeded: int = 0
    failed: int = 0
    retried: int = 0
    cancelled: int = 0
    released: int = 0
    lease_lost: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "claims": self.claims,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "retried": self.retried,
            "cancelled": self.cancelled,
            "released": self.released,
            "lease_lost": self.lease_lost,
        }


def pool_session_provider(pool) -> SessionProvider:
    """Adapt a :class:`~repro.service.pool.DatabasePool` to the executor.

    Checkout scope = one version replay, so job execution interleaves with
    HTTP traffic on the same shard instead of starving it.
    """

    @contextmanager
    def open_session(project: str) -> Iterator[Session]:
        with pool.checkout(project) as shard:
            shard.flush()
            yield shard.session

    return open_session


def directory_session_provider(root: Path | str) -> SessionProvider:
    """Open a throwaway session per call for ``<root>/<project>`` (CLI drain).

    Unknown tenants are an error, not a birth: opening a session would
    materialize ``<root>/<project>/.flor`` on disk, so a job submitted with
    a typo'd project name would otherwise run to ``succeeded`` as a silent
    no-op over a freshly created empty project.
    """

    @contextmanager
    def open_session(project: str) -> Iterator[Session]:
        home = Path(root) / project / FLOR_DIR_NAME
        if not home.is_dir():
            raise JobError(f"unknown project {project!r}: no {home} on disk")
        config = ProjectConfig(Path(root) / project, project)
        with Session(config) as session:
            yield session

    return open_session


class JobRunner:
    """N worker threads + one heartbeat thread over a shared job store."""

    def __init__(
        self,
        store: JobStore,
        open_session: SessionProvider,
        *,
        workers: int = 1,
        poll_interval: float = 0.05,
        lease_seconds: float | None = None,
        heartbeat_interval: float | None = None,
        name: str | None = None,
        fair_share: int | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        if fair_share is not None:
            # The runner owns scheduling policy for its store: how often a
            # claim ignores priority for the FIFO head (0 = strict priority).
            if fair_share < 0:
                raise ValueError(f"fair_share must be >= 0, got {fair_share}")
            store.fair_share = fair_share
        self.open_session = open_session
        self.workers = workers
        self.poll_interval = poll_interval
        self.lease_seconds = lease_seconds if lease_seconds is not None else store.lease_seconds
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else max(self.lease_seconds / 3.0, 0.01)
        )
        self.name = name or f"jobs-{os.getpid()}"
        self.stats = RunnerStats()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._heartbeat_thread: threading.Thread | None = None
        #: job_id → (worker_id, cancel_event) for in-flight jobs.
        self._active: dict[int, tuple[str, threading.Event]] = {}

    # -------------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        return bool(self._threads) and not self._stop.is_set()

    def active_jobs(self) -> list[int]:
        with self._lock:
            return sorted(self._active)

    def start(self) -> "JobRunner":
        """Spawn the worker and heartbeat threads (idempotent)."""
        if self._threads:
            return self
        self._stop.clear()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(f"{self.name}-w{i}",),
                name=f"{self.name}-w{i}",
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name=f"{self.name}-hb", daemon=True
        )
        self._heartbeat_thread.start()
        return self

    def stop(self, *, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Drain gracefully: in-flight jobs stop at their next version
        boundary and are *released* back to the queue (progress checkpoints
        make the hand-off cheap); no new jobs are claimed."""
        self._stop.set()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
            if self._heartbeat_thread is not None:
                self._heartbeat_thread.join(timeout=timeout)
        self._threads = []
        self._heartbeat_thread = None

    def run_until_idle(self, *, timeout: float = 120.0) -> bool:
        """Process jobs until none are queued or in flight; True on success.

        Starts the runner if needed and, when it did the starting, stops it
        again before returning — the drain shape used by ``repro jobs run``
        and the T11 benchmark.
        """
        started_here = not self._threads
        if started_here:
            self.start()
        deadline = time.monotonic() + timeout
        idle = False
        try:
            while time.monotonic() < deadline:
                counts = self.store.counts()
                if counts["queued"] + counts["leased"] + counts["running"] == 0:
                    idle = True
                    break
                time.sleep(self.poll_interval)
        finally:
            if started_here:
                self.stop(wait=True)
        return idle

    # ------------------------------------------------------------ worker loop
    def _worker_loop(self, worker_id: str) -> None:
        while not self._stop.is_set():
            job = self.store.claim(worker_id, lease_seconds=self.lease_seconds)
            if job is None:
                self._stop.wait(self.poll_interval)
                continue
            with self._lock:
                self.stats.claims += 1
                cancel_event = threading.Event()
                self._active[job.id] = (worker_id, cancel_event)
                metrics = getattr(self.store, "metrics", None)
                if metrics is not None:
                    metrics.set("jobs.active", len(self._active))
            try:
                self._execute(job, worker_id, cancel_event)
            finally:
                with self._lock:
                    self._active.pop(job.id, None)
                    metrics = getattr(self.store, "metrics", None)
                    if metrics is not None:
                        metrics.set("jobs.active", len(self._active))

    def _execute(self, job, worker_id: str, cancel_event: threading.Event) -> None:
        if job.cancel_requested:
            self.store.mark_cancelled(job.id, worker_id)
            with self._lock:
                self.stats.cancelled += 1
            return
        if not self.store.mark_running(job.id, worker_id):
            with self._lock:
                self.stats.lease_lost += 1
            return
        try:
            summary = execute_job(
                job,
                self.store,
                self.open_session,
                worker=worker_id,
                lease_seconds=self.lease_seconds,
                should_stop=self._stop.is_set,
                should_cancel=cancel_event.is_set,
            )
        except JobCancelled:
            self.store.mark_cancelled(job.id, worker_id)
            with self._lock:
                self.stats.cancelled += 1
        except JobInterrupted as exc:
            self.store.release(job.id, worker_id, reason=str(exc) or "shutdown")
            with self._lock:
                self.stats.released += 1
        except JobLeaseLost:
            with self._lock:
                self.stats.lease_lost += 1
        except Exception as exc:  # noqa: BLE001 - worker errors become job state
            after = self.store.fail(job.id, worker_id, f"{type(exc).__name__}: {exc}")
            with self._lock:
                if after is not None and after.state == "queued":
                    self.stats.retried += 1
                else:
                    self.stats.failed += 1
        else:
            self.store.finish(job.id, worker_id, summary)
            with self._lock:
                self.stats.succeeded += 1

    # -------------------------------------------------------------- heartbeat
    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            with self._lock:
                active = list(self._active.items())
            for job_id, (worker_id, cancel_event) in active:
                try:
                    fresh = self.store.heartbeat(
                        job_id, worker_id, lease_seconds=self.lease_seconds
                    )
                except Exception:  # noqa: BLE001 - a failed beat must not kill the loop
                    continue
                if fresh is not None and fresh.cancel_requested:
                    cancel_event.set()
