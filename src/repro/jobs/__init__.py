"""Durable background job orchestration for hindsight backfill and replay.

The paper's headline capability — multiversion hindsight logging — replays
*every prior version* of a script, which can take minutes.  A production
service cannot run that inline with an HTTP request (the request times out)
or as a bare thread (the work dies with the process).  This package gives
backfills the accept/persist/supervise shape long-running actions need:

* :mod:`repro.jobs.store` — :class:`JobStore`: a SQLite-backed durable
  queue (``jobs`` + ``job_events`` tables from the relational schema) with
  the state machine ``queued → leased → running → succeeded | failed |
  cancelled``, priorities, compare-and-swap claiming that is safe across
  threads *and* processes, heartbeat-renewed leases so a crashed worker's
  job is reclaimed, bounded retries with exponential backoff, and
  per-version progress checkpoints;
* :mod:`repro.jobs.executor` — :func:`execute_job`: turns one claimed job
  into per-version :class:`~repro.core.hindsight.HindsightEngine` replays,
  checkpointing each completed version so a resumed job skips versions
  already replayed;
* :mod:`repro.jobs.runner` — :class:`JobRunner`: a worker-thread pool with
  a background lease heartbeat, graceful drain (in-flight jobs released at
  a version boundary), and a ``run_until_idle`` drain mode.

Quick tour::

    from repro.jobs import JobRunner, JobStore, directory_session_provider

    store = JobStore.open(root)                      # <root>/.flor-jobs.db
    job = store.submit("alpha", "backfill",
                       {"filename": "train.py", "new_source": src})
    runner = JobRunner(store, directory_session_provider(root), workers=2)
    runner.run_until_idle()
    assert store.require(job.id).state == "succeeded"

The service layer exposes the same queue over HTTP
(``POST /projects/<name>/jobs/backfill``, ``GET /jobs/<id>``, …), ``repro
serve --job-workers N`` embeds a runner next to the HTTP server, and the
``repro jobs`` CLI group submits and watches jobs from the shell.
"""

from .executor import (
    JOB_KINDS,
    KIND_BACKFILL,
    KIND_REPLAY,
    JobCancelled,
    JobExecutionError,
    JobInterrupted,
    JobLeaseLost,
    execute_job,
)
from .runner import JobRunner, RunnerStats, directory_session_provider, pool_session_provider
from .store import JOBS_DB_FILENAME, JobStore

__all__ = [
    "JobStore",
    "JobRunner",
    "RunnerStats",
    "execute_job",
    "pool_session_provider",
    "directory_session_provider",
    "JOBS_DB_FILENAME",
    "JOB_KINDS",
    "KIND_BACKFILL",
    "KIND_REPLAY",
    "JobCancelled",
    "JobInterrupted",
    "JobLeaseLost",
    "JobExecutionError",
]
