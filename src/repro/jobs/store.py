"""Durable, SQLite-backed job queue.

The :class:`JobStore` owns the ``jobs`` and ``job_events`` tables (created by
the relational layer's schema) and implements the queue semantics the service
relies on:

* **Submission** — a job is a row: project, kind (``backfill``/``replay``),
  a JSON payload, a priority and a retry budget.  Submitting is durable; the
  HTTP request that carried it can return immediately.
* **Claiming** — workers claim with a compare-and-swap (``UPDATE ... WHERE
  state = 'queued'`` inside one transaction), so two workers — even in two
  *processes* sharing the database file — never own the same job.  Claiming
  orders by priority (higher first), then FIFO — except that every
  ``fair_share``-th claim takes the global FIFO head regardless of
  priority, so low-priority tenants make progress without ever starving
  high-priority work (the QoS scheduling contract; see :mod:`repro.qos`).
* **Lease + heartbeat** — a claimed job carries ``lease_owner`` and
  ``lease_expires``; the runner renews the lease while the job executes.  A
  worker that dies stops renewing, and the next :meth:`claim` reclaims the
  expired lease: the job returns to ``queued`` (or ``failed`` once its
  attempt budget is exhausted).  Combined with per-version progress
  checkpoints (:meth:`checkpoint_version`), a resumed backfill replays only
  the versions the dead worker had not finished.
* **Bounded retries with backoff** — ``attempts`` counts executions started;
  a failed execution re-queues with exponentially growing ``not_before``
  until ``max_attempts`` is reached.
* **Cancellation** — queued jobs cancel immediately; leased/running jobs get
  ``cancel_requested`` set and the executor stops at the next version
  boundary.

Every transition appends a ``job_events`` row, so ``GET /jobs/<id>/events``
(and ``repro jobs watch``) can show the full history of a job without the
worker being reachable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from ..errors import JobError, JobNotFoundError
from ..relational.database import Database
from ..storage.protocols import RelationalStore
from ..relational.records import (
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_LEASED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    JOB_SUCCEEDED,
    JobEventRecord,
    JobRecord,
)

#: Filename of the host-level jobs database under a service root.  The dot
#: prefix keeps it out of the tenant namespace (project names must start
#: with an alphanumeric character).
JOBS_DB_FILENAME = ".flor-jobs.db"

_JOB_COLUMNS_SQL = ", ".join(JobRecord.COLUMNS)

#: Event kinds written by the store itself (executors add 'version' etc.).
EVENT_SUBMITTED = "submitted"
EVENT_LEASED = "leased"
EVENT_RUNNING = "running"
EVENT_SUCCEEDED = "succeeded"
EVENT_FAILED = "failed"
EVENT_RETRY_SCHEDULED = "retry_scheduled"
EVENT_RECLAIMED = "lease_reclaimed"
EVENT_RELEASED = "released"
EVENT_CANCEL_REQUESTED = "cancel_requested"
EVENT_CANCELLED = "cancelled"
EVENT_RETRIED = "retried"
EVENT_VERSION = "version"


class JobStore:
    """Queue operations over one ``jobs``/``job_events`` table pair.

    Parameters
    ----------
    db:
        Database holding the tables.  A service host uses one dedicated
        jobs database per root (see :meth:`open`), shared by every tenant;
        job rows carry the tenant name in ``project``.
    lease_seconds:
        Default lease duration granted by :meth:`claim` and renewed by
        :meth:`heartbeat`.
    retry_backoff:
        Base of the exponential retry delay: attempt *n* re-queues with
        ``not_before = now + retry_backoff * 2**(n-1)``.
    fair_share:
        Weighted-fair claiming: every ``fair_share``-th claim through this
        store takes the *oldest* queued job regardless of priority, so a
        low-priority tenant's backlog drains at a bounded fraction of
        worker capacity instead of starving behind a hot high-priority
        tenant — while the other ``fair_share - 1`` claims still go to the
        highest priority first (high-priority work never starves either).
        ``0`` disables fairness (strict priority order, the pre-QoS
        behaviour).
    clock:
        Unix-time source, injectable so tests control lease expiry.
    """

    def __init__(
        self,
        db: RelationalStore,
        *,
        lease_seconds: float = 30.0,
        retry_backoff: float = 0.5,
        fair_share: int = 4,
        clock: Callable[[], float] = time.time,
    ):
        if lease_seconds <= 0:
            raise JobError(f"lease_seconds must be positive, got {lease_seconds}")
        if fair_share < 0:
            raise JobError(f"fair_share must be >= 0, got {fair_share}")
        self.db = db
        self.lease_seconds = lease_seconds
        self.retry_backoff = retry_backoff
        self.fair_share = fair_share
        self._claim_count = 0
        self._clock = clock
        self._owns_db = False
        # Observability hooks, assigned post-construction by the service:
        # ``metrics`` is a repro.obs.MetricsRegistry (duck-typed); ``on_event``
        # is called with a job id *after* a transition's transaction commits,
        # so a tail subscriber woken by it can already read the new event row.
        self.metrics = None
        self.on_event: Callable[[int], None] | None = None

    def _notify(self, job_id: int) -> None:
        """Post-commit event push; hook failures never fail the transition."""
        if self.on_event is not None:
            try:
                self.on_event(job_id)
            except Exception:  # noqa: BLE001 - observer, not participant
                pass

    def _note_queue_depth(self) -> None:
        if self.metrics is not None:
            row = self.db.query_one(
                "SELECT COUNT(*) FROM jobs WHERE state = ?", (JOB_QUEUED,)
            )
            self.metrics.set("jobs.queue_depth", int(row[0]) if row else 0)

    @classmethod
    def open(cls, root: Path | str, **kwargs: Any) -> "JobStore":
        """Open (creating if needed) the host-level jobs store under ``root``."""
        store = cls(Database(Path(root) / JOBS_DB_FILENAME), **kwargs)
        store._owns_db = True
        return store

    def close(self) -> None:
        if self._owns_db:
            self.db.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------ submission
    def submit(
        self,
        project: str,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        priority: int = 0,
        max_attempts: int = 3,
    ) -> JobRecord:
        """Enqueue a job; returns the durable record (with its id)."""
        if max_attempts < 1:
            raise JobError(f"max_attempts must be >= 1, got {max_attempts}")
        now = self._clock()
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "INSERT INTO jobs (project, kind, payload, state, priority,"
                " max_attempts, created_at, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    project,
                    kind,
                    json.dumps(payload or {}),
                    JOB_QUEUED,
                    priority,
                    max_attempts,
                    now,
                    now,
                ),
            )
            job_id = int(cursor.lastrowid)
            self._append_event(conn, job_id, EVENT_SUBMITTED, {"kind": kind, "project": project}, now)
        if self.metrics is not None:
            self.metrics.inc("jobs.submitted")
        self._note_queue_depth()
        self._notify(job_id)
        return self.require(job_id)

    # --------------------------------------------------------------- lookups
    def get(self, job_id: int) -> JobRecord | None:
        row = self.db.query_one(
            f"SELECT {_JOB_COLUMNS_SQL} FROM jobs WHERE id = ?", (job_id,)
        )
        return None if row is None else JobRecord.from_row(row)

    def require(self, job_id: int) -> JobRecord:
        job = self.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def list_jobs(
        self,
        *,
        project: str | None = None,
        state: str | None = None,
        limit: int = 50,
    ) -> list[JobRecord]:
        """Most recent jobs first, optionally filtered by project/state."""
        if state is not None and state not in JOB_STATES:
            raise JobError(f"unknown job state: {state!r}")
        clauses, params = [], []
        if project is not None:
            clauses.append("project = ?")
            params.append(project)
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self.db.query(
            f"SELECT {_JOB_COLUMNS_SQL} FROM jobs{where} ORDER BY id DESC LIMIT ?",
            (*params, int(limit)),
        )
        return [JobRecord.from_row(row) for row in rows]

    def counts(self) -> dict[str, int]:
        """Row count per state (states with no jobs included as 0)."""
        counts = {state: 0 for state in JOB_STATES}
        for state, n in self.db.query("SELECT state, COUNT(*) FROM jobs GROUP BY state"):
            if state in counts:
                counts[state] = int(n)
        return counts

    # ----------------------------------------------------------------- claim
    def claim(
        self, worker: str, *, lease_seconds: float | None = None
    ) -> JobRecord | None:
        """Atomically take ownership of the best queued job, if any.

        Expired leases are reclaimed first (inside the same transaction), so
        a runner polling ``claim`` doubles as the crash supervisor: a job
        whose worker died becomes claimable as soon as its lease lapses.

        Ordering is weighted-fair (see ``fair_share``): usually best
        priority first then FIFO, but every ``fair_share``-th claim takes
        the global FIFO head so low-priority work keeps a guaranteed
        fraction of throughput.
        """
        lease = self.lease_seconds if lease_seconds is None else lease_seconds
        now = self._clock()
        fair_turn = False
        if self.fair_share > 0:
            # A per-process counter is all fairness needs: each worker
            # process independently dedicates 1/fair_share of its claims to
            # the FIFO head, so the aggregate guarantee holds fleet-wide
            # without cross-process coordination.
            self._claim_count += 1
            fair_turn = self._claim_count % self.fair_share == 0
        order = "id ASC" if fair_turn else "priority DESC, id ASC"
        with self.db.transaction() as conn:
            self._reclaim_expired(conn, now)
            self._finish_cancelled_queued(conn, now)
            row = conn.execute(
                "SELECT id FROM jobs"
                " WHERE state = ? AND not_before <= ? AND cancel_requested = 0"
                f" ORDER BY {order} LIMIT 1",
                (JOB_QUEUED, now),
            ).fetchone()
            if row is None:
                return None
            job_id = int(row[0])
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, lease_owner = ?, lease_expires = ?,"
                " attempts = attempts + 1, updated_at = ?"
                " WHERE id = ? AND state = ?",
                (JOB_LEASED, worker, now + lease, now, job_id, JOB_QUEUED),
            )
            if cursor.rowcount != 1:  # pragma: no cover - CAS under the txn lock
                return None
            self._append_event(conn, job_id, EVENT_LEASED, {"worker": worker}, now)
        if self.metrics is not None:
            self.metrics.inc("jobs.claimed")
        self._note_queue_depth()
        self._notify(job_id)
        return self.require(job_id)

    def _reclaim_expired(self, conn, now: float) -> None:
        """Return expired-lease jobs to the queue (or fail them out of budget)."""
        rows = conn.execute(
            "SELECT id, attempts, max_attempts, lease_owner FROM jobs"
            " WHERE state IN (?, ?) AND lease_expires IS NOT NULL AND lease_expires < ?",
            (JOB_LEASED, JOB_RUNNING, now),
        ).fetchall()
        for job_id, attempts, max_attempts, owner in rows:
            detail = {"worker": owner, "attempts": int(attempts)}
            if int(attempts) >= int(max_attempts):
                conn.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL, lease_expires = NULL,"
                    " error = ?, finished_at = ?, updated_at = ? WHERE id = ?",
                    (
                        JOB_FAILED,
                        f"lease expired after {attempts} attempt(s); worker {owner!r} presumed dead",
                        now,
                        now,
                        int(job_id),
                    ),
                )
                self._append_event(conn, int(job_id), EVENT_FAILED, {**detail, "reason": "lease_expired"}, now)
            else:
                conn.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL, lease_expires = NULL,"
                    " updated_at = ? WHERE id = ?",
                    (JOB_QUEUED, now, int(job_id)),
                )
                self._append_event(conn, int(job_id), EVENT_RECLAIMED, detail, now)
                if self.metrics is not None:
                    self.metrics.inc("jobs.lease_reclaims")

    def _finish_cancelled_queued(self, conn, now: float) -> None:
        """Transition queued rows with a pending cancel to ``cancelled``.

        A running job whose cancel raced a failure, a graceful release or a
        lease reclaim lands back in ``queued`` with ``cancel_requested``
        still set.  Claiming skips such rows, so without this sweep they
        would sit unclaimable forever (and keep drain loops from going
        idle); instead the next claim honors the cancel.
        """
        rows = conn.execute(
            "SELECT id FROM jobs WHERE state = ? AND cancel_requested = 1",
            (JOB_QUEUED,),
        ).fetchall()
        for (job_id,) in rows:
            conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, updated_at = ?"
                " WHERE id = ? AND state = ?",
                (JOB_CANCELLED, now, now, int(job_id), JOB_QUEUED),
            )
            self._append_event(conn, int(job_id), EVENT_CANCELLED, {"from_state": JOB_QUEUED}, now)

    def reclaim_expired(self) -> None:
        """Run the expired-lease sweep outside a claim (e.g. for stats pages)."""
        with self.db.transaction() as conn:
            now = self._clock()
            self._reclaim_expired(conn, now)
            self._finish_cancelled_queued(conn, now)

    # ------------------------------------------------------------- execution
    def heartbeat(
        self, job_id: int, worker: str, *, lease_seconds: float | None = None
    ) -> JobRecord | None:
        """Renew the lease; returns the fresh record, or None if ownership was lost.

        The returned record carries ``cancel_requested``, so the executor's
        heartbeat doubles as its cancellation poll.
        """
        lease = self.lease_seconds if lease_seconds is None else lease_seconds
        now = self._clock()
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires = ?, updated_at = ?"
                " WHERE id = ? AND lease_owner = ? AND state IN (?, ?)",
                (now + lease, now, job_id, worker, JOB_LEASED, JOB_RUNNING),
            )
            if cursor.rowcount != 1:
                return None
        return self.get(job_id)

    def mark_running(self, job_id: int, worker: str) -> bool:
        now = self._clock()
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, started_at = COALESCE(started_at, ?),"
                " updated_at = ? WHERE id = ? AND lease_owner = ? AND state = ?",
                (JOB_RUNNING, now, now, job_id, worker, JOB_LEASED),
            )
            if cursor.rowcount != 1:
                return False
            self._append_event(conn, job_id, EVENT_RUNNING, {"worker": worker}, now)
        self._notify(job_id)
        return True

    def finish(self, job_id: int, worker: str, result: dict[str, Any] | None = None) -> bool:
        """Transition a running job to ``succeeded`` with its result summary."""
        now = self._clock()
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, result = ?, error = NULL,"
                " lease_owner = NULL, lease_expires = NULL, finished_at = ?, updated_at = ?"
                " WHERE id = ? AND lease_owner = ? AND state IN (?, ?)",
                (
                    JOB_SUCCEEDED,
                    json.dumps(result or {}),
                    now,
                    now,
                    job_id,
                    worker,
                    JOB_LEASED,
                    JOB_RUNNING,
                ),
            )
            if cursor.rowcount != 1:
                return False
            self._append_event(conn, job_id, EVENT_SUCCEEDED, result or {}, now)
        if self.metrics is not None:
            self.metrics.inc("jobs.succeeded")
        self._notify(job_id)
        return True

    def fail(self, job_id: int, worker: str, error: str) -> JobRecord | None:
        """Record a failed execution: re-queue with backoff, or fail terminally.

        Returns the post-transition record (state ``queued`` when a retry was
        scheduled, ``failed`` when the attempt budget is spent), or None if
        the worker no longer owned the job.
        """
        now = self._clock()
        with self.db.transaction() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs"
                " WHERE id = ? AND lease_owner = ? AND state IN (?, ?)",
                (job_id, worker, JOB_LEASED, JOB_RUNNING),
            ).fetchone()
            if row is None:
                return None
            attempts, max_attempts = int(row[0]), int(row[1])
            if attempts >= max_attempts:
                conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, lease_owner = NULL,"
                    " lease_expires = NULL, finished_at = ?, updated_at = ? WHERE id = ?",
                    (JOB_FAILED, error, now, now, job_id),
                )
                self._append_event(
                    conn, job_id, EVENT_FAILED, {"error": error, "attempts": attempts}, now
                )
            else:
                delay = self.retry_backoff * (2 ** (attempts - 1))
                conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, lease_owner = NULL,"
                    " lease_expires = NULL, not_before = ?, updated_at = ? WHERE id = ?",
                    (JOB_QUEUED, error, now + delay, now, job_id),
                )
                self._append_event(
                    conn,
                    job_id,
                    EVENT_RETRY_SCHEDULED,
                    {"error": error, "attempts": attempts, "delay_seconds": delay},
                    now,
                )
        if self.metrics is not None:
            self.metrics.inc("jobs.failed_attempts")
        self._notify(job_id)
        return self.get(job_id)

    def release(self, job_id: int, worker: str, reason: str = "shutdown") -> bool:
        """Give a healthy job back to the queue (graceful worker shutdown).

        Unlike :meth:`fail`, releasing does not consume an attempt — the
        execution did not fail, the worker is just going away.  Progress
        checkpoints persist, so the next worker resumes where this one left
        off.
        """
        now = self._clock()
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, lease_owner = NULL, lease_expires = NULL,"
                " attempts = MAX(attempts - 1, 0), updated_at = ?"
                " WHERE id = ? AND lease_owner = ? AND state IN (?, ?)",
                (JOB_QUEUED, now, job_id, worker, JOB_LEASED, JOB_RUNNING),
            )
            if cursor.rowcount != 1:
                return False
            self._append_event(conn, job_id, EVENT_RELEASED, {"worker": worker, "reason": reason}, now)
        self._notify(job_id)
        return True

    # ---------------------------------------------------------- cancellation
    def cancel(self, job_id: int) -> JobRecord:
        """Cancel a job: queued → cancelled now; leased/running → flagged.

        A leased/running job cannot be yanked out from under its worker —
        instead ``cancel_requested`` is set and the executor observes it at
        its next heartbeat/version boundary and calls :meth:`mark_cancelled`.
        Terminal jobs are returned unchanged.
        """
        now = self._clock()
        with self.db.transaction() as conn:
            # Compare-and-swap, not read-then-write: another process (the
            # embedded serve workers and the CLI share the database file)
            # may claim the job between any read and our update, so each
            # branch is guarded by its expected state and the event is
            # only recorded when the matching transition actually applied.
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, cancel_requested = 1, finished_at = ?,"
                " updated_at = ? WHERE id = ? AND state = ?",
                (JOB_CANCELLED, now, now, job_id, JOB_QUEUED),
            )
            if cursor.rowcount == 1:
                self._append_event(conn, job_id, EVENT_CANCELLED, {"from_state": JOB_QUEUED}, now)
            else:
                cursor = conn.execute(
                    "UPDATE jobs SET cancel_requested = 1, updated_at = ?"
                    " WHERE id = ? AND state IN (?, ?)",
                    (now, job_id, JOB_LEASED, JOB_RUNNING),
                )
                if cursor.rowcount == 1:
                    self._append_event(conn, job_id, EVENT_CANCEL_REQUESTED, {}, now)
        self._notify(job_id)
        return self.require(job_id)

    def mark_cancelled(self, job_id: int, worker: str) -> bool:
        """Executor acknowledgment of a cancel request on a running job."""
        now = self._clock()
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, lease_owner = NULL, lease_expires = NULL,"
                " finished_at = ?, updated_at = ? WHERE id = ? AND lease_owner = ?"
                " AND state IN (?, ?)",
                (JOB_CANCELLED, now, now, job_id, worker, JOB_LEASED, JOB_RUNNING),
            )
            if cursor.rowcount != 1:
                return False
            self._append_event(conn, job_id, EVENT_CANCELLED, {"worker": worker}, now)
        self._notify(job_id)
        return True

    def retry(self, job_id: int) -> JobRecord:
        """Re-queue a terminal (failed/cancelled) job with a fresh attempt budget."""
        now = self._clock()
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, attempts = 0, cancel_requested = 0,"
                " error = NULL, result = NULL, not_before = ?, finished_at = NULL,"
                " updated_at = ? WHERE id = ? AND state IN (?, ?)",
                (JOB_QUEUED, now, now, job_id, JOB_FAILED, JOB_CANCELLED),
            )
            if cursor.rowcount != 1:
                job = self.require(job_id)
                raise JobError(
                    f"job {job_id} is {job.state!r}; only failed/cancelled jobs can be retried"
                )
            self._append_event(conn, job_id, EVENT_RETRIED, {}, now)
        self._note_queue_depth()
        self._notify(job_id)
        return self.require(job_id)

    # -------------------------------------------------------------- progress
    def record_event(self, job_id: int, kind: str, payload: dict[str, Any] | None = None) -> None:
        """Append an arbitrary event to a job's trail (executors use this)."""
        now = self._clock()
        with self.db.transaction() as conn:
            self._append_event(conn, job_id, kind, payload or {}, now)
        self._notify(job_id)

    def checkpoint_version(self, job_id: int, vid: str, detail: dict[str, Any] | None = None) -> None:
        """Durably record that one version's replay completed successfully.

        The checkpoint is what makes crash recovery *incremental*: a resumed
        backfill calls :meth:`completed_versions` and skips these vids.
        """
        payload = {"vid": vid, "ok": True, **(detail or {})}
        self.record_event(job_id, EVENT_VERSION, payload)

    def completed_versions(self, job_id: int) -> set[str]:
        """Vids this job has already replayed successfully (across attempts)."""
        done: set[str] = set()
        for event in self.events(job_id):
            if event.kind == EVENT_VERSION and event.payload.get("ok") and event.payload.get("vid"):
                done.add(str(event.payload["vid"]))
        return done

    def events(self, job_id: int, *, after: int = 0, limit: int | None = None) -> list[JobEventRecord]:
        """The job's trail in append order, optionally after a known seq."""
        sql = (
            "SELECT seq, job_id, kind, payload, created_at FROM job_events"
            " WHERE job_id = ? AND seq > ? ORDER BY seq ASC"
        )
        params: list[Any] = [job_id, after]
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [JobEventRecord.from_row(row) for row in self.db.query(sql, params)]

    # -------------------------------------------------------------- plumbing
    @staticmethod
    def _append_event(conn, job_id: int, kind: str, payload: dict[str, Any], now: float) -> None:
        conn.execute(
            "INSERT INTO job_events (job_id, kind, payload, created_at) VALUES (?, ?, ?, ?)",
            (job_id, kind, json.dumps(payload, default=str), now),
        )


def iter_event_payloads(events: Iterable[JobEventRecord], kind: str) -> Iterable[dict]:
    """Payloads of one event kind, in order (CLI/report helper)."""
    for event in events:
        if event.kind == kind:
            yield event.payload
