"""Job execution: one claimed job → per-version replay with checkpoints.

:func:`execute_job` is the bridge between the durable queue and the
hindsight engine.  It resolves the job's payload into a version work-list,
subtracts the versions already checkpointed in ``job_events`` (so a resumed
job — after a crash, a graceful shutdown, or a retry — replays only what is
missing), and then replays one version at a time:

* each completed version appends a ``version`` event *and* a progress
  checkpoint before the next one starts, so progress is durable at version
  granularity;
* the lease is renewed between versions (the runner also renews it from a
  background heartbeat for versions that outlive one lease), and the renewal
  doubles as the cancellation poll;
* sessions are checked out per version, so a multi-minute backfill never
  pins a tenant's shard lock for its whole duration — HTTP reads and writes
  interleave between versions.

Job kinds
---------
``backfill``
    Propagate the payload's ``new_source`` (default: the project's working
    copy of ``filename``) into each historical version and replay it —
    the :class:`~repro.core.hindsight.HindsightEngine` path.
``replay``
    Re-execute each historical version's *recorded* source as-is (no
    propagation), e.g. to regenerate records under a differential plan.
"""

from __future__ import annotations

import time
from typing import Any, Callable, ContextManager

from ..core.hindsight import HindsightEngine
from ..core.replay import ReplayPlan, replay_source
from ..errors import JobError
from ..relational.records import JobRecord
from .store import JobStore

KIND_BACKFILL = "backfill"
KIND_REPLAY = "replay"
JOB_KINDS = (KIND_BACKFILL, KIND_REPLAY)

#: ``open_session(project)`` → context manager yielding a Session bound to
#: that project.  The runner adapts a DatabasePool checkout to this shape.
SessionProvider = Callable[[str], ContextManager[Any]]


class JobCancelled(JobError):
    """The job observed ``cancel_requested`` and stopped at a version boundary."""


class JobInterrupted(JobError):
    """The worker is shutting down; the job should be released, not failed."""


class JobLeaseLost(JobError):
    """The lease was reclaimed mid-run (worker presumed dead, then outlived)."""


class JobExecutionError(JobError):
    """One or more versions failed to replay; the job is eligible for retry."""


def execute_job(
    job: JobRecord,
    store: JobStore,
    open_session: SessionProvider,
    *,
    worker: str,
    lease_seconds: float | None = None,
    should_stop: Callable[[], bool] | None = None,
    should_cancel: Callable[[], bool] | None = None,
) -> dict[str, Any]:
    """Run one claimed backfill/replay job to completion; returns the summary.

    Raises :class:`JobCancelled` / :class:`JobInterrupted` /
    :class:`JobLeaseLost` for the supervision outcomes and
    :class:`JobExecutionError` when version replays failed — the runner maps
    each onto the matching store transition.
    """
    if job.kind not in JOB_KINDS:
        raise JobError(f"unknown job kind: {job.kind!r}")
    payload = job.payload
    filename = payload.get("filename")
    if not filename:
        raise JobError("job payload needs a 'filename'")
    plan = ReplayPlan.from_dict(payload.get("plan"))
    started = time.perf_counter()

    # Inventory pass: resolve the version work-list and the source to
    # propagate.  One short checkout; replays check out per version.
    with open_session(job.project) as session:
        engine = HindsightEngine(session)
        epochs = engine.version_epochs(filename)
        # One epoch per commit, but not one *version* per commit: a no-op
        # commit (content unchanged) maps a fresh epoch to its parent's
        # vid.  Replay per distinct vid — per-epoch replay would run the
        # same version repeatedly and break the checkpoint protocol's
        # exactly-once guarantee (each vid earns exactly one ``version``
        # event, which resumed jobs rely on to skip completed work).
        seen_vids: set[str] = set()
        epochs = [
            (vid, ts)
            for vid, ts in epochs
            if not (vid in seen_vids or seen_vids.add(vid))
        ]
        if payload.get("versions"):
            wanted = {str(v) for v in payload["versions"]}
            epochs = [(vid, ts) for vid, ts in epochs if vid in wanted]
        if not payload.get("include_latest", True) and epochs:
            epochs = epochs[:-1]
        new_source = None
        if job.kind == KIND_BACKFILL:
            new_source = payload.get("new_source")
            if new_source is None:
                path = session.config.root / filename
                if not path.exists():
                    raise JobError(
                        f"no working-copy source for {filename!r} in project"
                        f" {job.project!r}; submit the job with 'new_source'"
                    )
                new_source = path.read_text()

    done = store.completed_versions(job.id)
    remaining = [(vid, ts) for vid, ts in epochs if vid not in done]
    summary: dict[str, Any] = {
        "kind": job.kind,
        "filename": filename,
        "versions_total": len(epochs),
        "versions_checkpointed": len(epochs) - len(remaining),
        "versions_replayed": 0,
        "versions_failed": 0,
        "new_records": 0,
    }

    for vid, tstamp in remaining:
        _supervise(store, job, worker, lease_seconds, should_stop, should_cancel)
        with open_session(job.project) as session:
            entry = _replay_version(session, job, vid, tstamp, filename, new_source, plan)
        event = {
            "vid": vid,
            "tstamp": tstamp,
            "ok": entry["ok"],
            **{k: v for k, v in entry.items() if k not in ("ok",)},
        }
        if entry["ok"]:
            # The checkpoint is the durable resume point: written only after
            # the version's records are flushed by the replay session.
            store.checkpoint_version(job.id, vid, detail=event)
            summary["versions_replayed"] += 1
            summary["new_records"] += int(entry.get("new_records") or 0)
        else:
            store.record_event(job.id, "version", event)
            summary["versions_failed"] += 1

    summary["wall_seconds"] = round(time.perf_counter() - started, 6)
    if summary["versions_failed"]:
        raise JobExecutionError(
            f"{summary['versions_failed']} of {summary['versions_total']} version(s)"
            f" failed to replay for {filename!r}"
        )
    return summary


def _supervise(
    store: JobStore,
    job: JobRecord,
    worker: str,
    lease_seconds: float | None,
    should_stop: Callable[[], bool] | None,
    should_cancel: Callable[[], bool] | None,
) -> None:
    """Version-boundary check: renew the lease, honor cancel/stop signals."""
    if should_stop is not None and should_stop():
        raise JobInterrupted("worker shutting down")
    if should_cancel is not None and should_cancel():
        raise JobCancelled(f"job {job.id} cancelled")
    fresh = store.heartbeat(job.id, worker, lease_seconds=lease_seconds)
    if fresh is None:
        raise JobLeaseLost(f"job {job.id}: lease no longer owned by {worker!r}")
    if fresh.cancel_requested:
        raise JobCancelled(f"job {job.id} cancelled")


def _replay_version(
    session: Any,
    job: JobRecord,
    vid: str,
    tstamp: str,
    filename: str,
    new_source: str | None,
    plan: ReplayPlan,
) -> dict[str, Any]:
    """Replay one version under ``session``; returns the event payload fields."""
    if job.kind == KIND_BACKFILL:
        engine = HindsightEngine(session)
        report = engine.backfill(
            filename, new_source=new_source, versions=[vid], plan=plan
        )
        if not report.versions:
            return {"ok": False, "error": f"version {vid} no longer contains {filename!r}"}
        entry = report.versions[0]
        replay = entry.replay
        return {
            "ok": entry.ok,
            "injected_statements": entry.injected_statements,
            "skipped_statements": entry.skipped_statements,
            "new_records": replay.new_log_records if replay else 0,
            "iterations_executed": replay.iterations_executed if replay else 0,
            "iterations_skipped": replay.iterations_skipped if replay else 0,
            "error": entry.error or (replay.error if replay else None),
        }
    # KIND_REPLAY: run the recorded source as-is under the version's tstamp.
    engine = HindsightEngine(session)
    source = engine.historical_source(vid, filename)
    result = replay_source(
        source,
        config=session.config,
        filename=filename,
        tstamp=tstamp,
        db=session.db,
        plan=plan,
    )
    return {
        "ok": result.ok,
        "injected_statements": 0,
        "skipped_statements": 0,
        "new_records": result.new_log_records,
        "iterations_executed": result.iterations_executed,
        "iterations_skipped": result.iterations_skipped,
        "error": result.error,
    }
