"""Content-addressed version store (the paper's git substrate).

FlorDB relies on git for "change context": every ``flor.commit()`` snapshots
the tracked source files into an immutable version identified by a ``vid``.
This package provides that capability without shelling out to git:

* :mod:`objects` — a content-addressed blob store on disk,
* :mod:`diff` — a from-scratch Myers line diff with patch application,
* :mod:`repository` — commits, history traversal and file checkout.
"""

from .diff import DiffOp, Patch, diff_lines, diff_stats, matching_lines, unified_diff
from .objects import ObjectStore, hash_bytes
from .repository import Commit, Repository

__all__ = [
    "ObjectStore",
    "hash_bytes",
    "DiffOp",
    "Patch",
    "diff_lines",
    "diff_stats",
    "matching_lines",
    "unified_diff",
    "Commit",
    "Repository",
]
