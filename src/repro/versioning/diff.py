"""Line-oriented diffing: a from-scratch Myers O(ND) diff.

The version store uses this for two purposes:

* rendering human-readable unified diffs between file versions, and
* powering cross-version log-statement propagation, which needs to know
  which lines of an old version survived into the new one (the "anchor"
  lines of :mod:`repro.core.propagation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class DiffOp:
    """A single diff operation over line ranges.

    ``tag`` is one of ``equal``, ``delete``, ``insert`` or ``replace``;
    ranges follow Python slice conventions (half-open) on the old (``a``)
    and new (``b``) sequences.
    """

    tag: str
    a_start: int
    a_end: int
    b_start: int
    b_end: int


def _myers_backtrack(a: Sequence[str], b: Sequence[str]) -> list[tuple[int, int]]:
    """Return the list of matched index pairs ``(i, j)`` on a shortest edit script.

    Classic Myers greedy algorithm with trace recording; O((N+M)·D) time and
    O(D^2) space, which is ample for source files.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return []
    max_d = n + m
    # v[k] = furthest x on diagonal k (offset by max_d for indexing)
    v = [0] * (2 * max_d + 1)
    trace: list[list[int]] = []
    found = False
    for d in range(max_d + 1):
        trace.append(list(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[max_d + k - 1] < v[max_d + k + 1]):
                x = v[max_d + k + 1]
            else:
                x = v[max_d + k - 1] + 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[max_d + k] = x
            if x >= n and y >= m:
                found = True
                break
        if found:
            break
    # Backtrack through the trace to recover matched pairs.
    matches: list[tuple[int, int]] = []
    x, y = n, m
    for d in range(len(trace) - 1, 0, -1):
        prev_v = trace[d]
        k = x - y
        if k == -d or (k != d and prev_v[max_d + k - 1] < prev_v[max_d + k + 1]):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = prev_v[max_d + prev_k]
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:
            x -= 1
            y -= 1
            matches.append((x, y))
        x, y = prev_x, prev_y
    # The d == 0 snake (common prefix) was never backtracked through.
    while x > 0 and y > 0:
        x -= 1
        y -= 1
        matches.append((x, y))
    matches.reverse()
    return matches


def matching_lines(a: Sequence[str], b: Sequence[str]) -> list[tuple[int, int]]:
    """Pairs of line indices ``(i, j)`` with ``a[i] == b[j]`` on an optimal alignment."""
    pairs = _myers_backtrack(list(a), list(b))
    return [(i, j) for i, j in pairs if a[i] == b[j]]


def diff_lines(a: Sequence[str], b: Sequence[str]) -> list[DiffOp]:
    """Diff two line sequences into a minimal list of :class:`DiffOp` blocks."""
    a = list(a)
    b = list(b)
    matches = matching_lines(a, b)
    ops: list[DiffOp] = []
    ai = bi = 0

    def emit_gap(a_to: int, b_to: int) -> None:
        nonlocal ai, bi
        if ai < a_to and bi < b_to:
            ops.append(DiffOp("replace", ai, a_to, bi, b_to))
        elif ai < a_to:
            ops.append(DiffOp("delete", ai, a_to, bi, b_to))
        elif bi < b_to:
            ops.append(DiffOp("insert", ai, a_to, bi, b_to))
        ai, bi = a_to, b_to

    idx = 0
    while idx < len(matches):
        mi, mj = matches[idx]
        emit_gap(mi, mj)
        # Extend the equal run as far as it goes.
        run = idx
        while (
            run + 1 < len(matches)
            and matches[run + 1][0] == matches[run][0] + 1
            and matches[run + 1][1] == matches[run][1] + 1
        ):
            run += 1
        equal_a_end = matches[run][0] + 1
        equal_b_end = matches[run][1] + 1
        ops.append(DiffOp("equal", ai, equal_a_end, bi, equal_b_end))
        ai, bi = equal_a_end, equal_b_end
        idx = run + 1
    emit_gap(len(a), len(b))
    return ops


def diff_stats(a: Sequence[str], b: Sequence[str]) -> dict[str, int]:
    """Summary counts: lines added, deleted and unchanged."""
    added = deleted = unchanged = 0
    for op in diff_lines(a, b):
        if op.tag == "equal":
            unchanged += op.a_end - op.a_start
        else:
            deleted += op.a_end - op.a_start
            added += op.b_end - op.b_start
    return {"added": added, "deleted": deleted, "unchanged": unchanged}


def unified_diff(
    a: Sequence[str],
    b: Sequence[str],
    a_label: str = "a",
    b_label: str = "b",
    context: int = 3,
) -> str:
    """Render a unified diff (``---/+++/@@`` format) between two line lists."""
    ops = diff_lines(a, b)
    if all(op.tag == "equal" for op in ops):
        return ""
    lines = [f"--- {a_label}", f"+++ {b_label}"]
    # Group ops into hunks separated by long equal stretches.
    hunks: list[list[DiffOp]] = []
    current: list[DiffOp] = []
    for op in ops:
        if op.tag == "equal" and (op.a_end - op.a_start) > 2 * context and current:
            current.append(DiffOp("equal", op.a_start, op.a_start + context, op.b_start, op.b_start + context))
            hunks.append(current)
            current = [DiffOp("equal", op.a_end - context, op.a_end, op.b_end - context, op.b_end)]
        else:
            current.append(op)
    if current and any(op.tag != "equal" for op in current):
        hunks.append(current)
    for hunk in hunks:
        if not any(op.tag != "equal" for op in hunk):
            continue
        a_start = hunk[0].a_start
        b_start = hunk[0].b_start
        a_len = hunk[-1].a_end - a_start
        b_len = hunk[-1].b_end - b_start
        lines.append(f"@@ -{a_start + 1},{a_len} +{b_start + 1},{b_len} @@")
        for op in hunk:
            if op.tag == "equal":
                lines.extend(" " + a[i] for i in range(op.a_start, op.a_end))
            else:
                lines.extend("-" + a[i] for i in range(op.a_start, op.a_end))
                lines.extend("+" + b[j] for j in range(op.b_start, op.b_end))
    return "\n".join(lines)


class Patch:
    """A reified diff that can rebuild the new text from the old text."""

    def __init__(self, a: Sequence[str], b: Sequence[str]):
        self.ops = diff_lines(a, b)
        self._b = list(b)

    def apply(self, a: Sequence[str]) -> list[str]:
        """Apply this patch to ``a`` (which must equal the original old side)."""
        out: list[str] = []
        for op in self.ops:
            if op.tag == "equal":
                out.extend(a[op.a_start:op.a_end])
            elif op.tag in ("insert", "replace"):
                out.extend(self._b[op.b_start:op.b_end])
            # deletes contribute nothing
        return out
