"""Content-addressed blob storage.

Objects are addressed by the SHA-256 of their contents and stored under
``<objects_dir>/<first two hex chars>/<rest>``, the same fan-out layout git
uses.  Writing is idempotent: storing identical contents twice costs one hash
computation and no extra disk space.

This is the reference implementation of the
:class:`repro.storage.protocols.BlobStore` protocol; the in-memory and
cold-tiered backends live in :mod:`repro.storage`.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterator
from uuid import uuid4

from ..errors import ObjectNotFoundError

_HEX = set("0123456789abcdef")


def hash_bytes(data: bytes) -> str:
    """Stable content address (SHA-256 hex digest) for a byte string."""
    return hashlib.sha256(data).hexdigest()


class ObjectStore:
    """A write-once, content-addressed object store rooted at a directory."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove ``*.tmp`` debris left by writers that crashed mid-put.

        Safe against live writers: each writer's tmp name is unique (uuid),
        so a concurrent ``replace`` can at worst make our ``unlink`` miss —
        which we tolerate.
        """
        for tmp in self.root.glob("??/*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass

    def _path_for(self, object_id: str) -> Path:
        if len(object_id) < 3 or not all(c in _HEX for c in object_id):
            raise ObjectNotFoundError(f"malformed object id: {object_id!r}")
        return self.root / object_id[:2] / object_id[2:]

    def put(self, data: bytes) -> str:
        """Store ``data`` and return its object id (idempotent)."""
        object_id = hash_bytes(data)
        path = self._path_for(object_id)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            # Unique per-writer tmp name: concurrent puts of the same object
            # must not share a staging path, or one writer's replace() can
            # consume (or collide with) the other's half-written file.  The
            # final replace() is atomic, and both writers hold identical
            # bytes, so last-one-wins is correct.
            tmp = path.parent / f"{path.name}.{uuid4().hex}.tmp"
            try:
                tmp.write_bytes(data)
                tmp.replace(path)
            except OSError:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                raise
        return object_id

    def put_text(self, text: str) -> str:
        return self.put(text.encode("utf-8"))

    def get(self, object_id: str) -> bytes:
        path = self._path_for(object_id)
        if not path.exists():
            raise ObjectNotFoundError(f"object {object_id} not found in {self.root}")
        return path.read_bytes()

    def get_text(self, object_id: str) -> str:
        return self.get(object_id).decode("utf-8")

    def exists(self, object_id: str) -> bool:
        try:
            return self._path_for(object_id).exists()
        except ObjectNotFoundError:
            return False

    def delete(self, object_id: str) -> bool:
        """Forget one object; True if it was present (used by tiering GC)."""
        try:
            path = self._path_for(object_id)
        except ObjectNotFoundError:
            return False
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        try:
            path.parent.rmdir()  # drop the fan-out dir if now empty
        except OSError:
            pass
        return True

    def __contains__(self, object_id: str) -> bool:
        return self.exists(object_id)

    def ids(self) -> Iterator[str]:
        """Iterate over every object id currently stored.

        Only two-hex-char fan-out directories are scanned, so sibling
        bookkeeping (archives, indexes, stray files) can never masquerade
        as objects; ``*.tmp`` staging files are excluded defensively even
        though init sweeps them.
        """
        for prefix_dir in sorted(self.root.iterdir()):
            if not prefix_dir.is_dir():
                continue
            name = prefix_dir.name
            if len(name) != 2 or not all(c in _HEX for c in name):
                continue
            for obj in sorted(prefix_dir.iterdir()):
                if obj.suffix == ".tmp":
                    continue
                yield name + obj.name

    def __len__(self) -> int:
        return sum(1 for _ in self.ids())
