"""Content-addressed blob storage.

Objects are addressed by the SHA-256 of their contents and stored under
``<objects_dir>/<first two hex chars>/<rest>``, the same fan-out layout git
uses.  Writing is idempotent: storing identical contents twice costs one hash
computation and no extra disk space.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterator

from ..errors import ObjectNotFoundError


def hash_bytes(data: bytes) -> str:
    """Stable content address (SHA-256 hex digest) for a byte string."""
    return hashlib.sha256(data).hexdigest()


class ObjectStore:
    """A write-once, content-addressed object store rooted at a directory."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path_for(self, object_id: str) -> Path:
        if len(object_id) < 3 or not all(c in "0123456789abcdef" for c in object_id):
            raise ObjectNotFoundError(f"malformed object id: {object_id!r}")
        return self.root / object_id[:2] / object_id[2:]

    def put(self, data: bytes) -> str:
        """Store ``data`` and return its object id (idempotent)."""
        object_id = hash_bytes(data)
        path = self._path_for(object_id)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(data)
            tmp.replace(path)
        return object_id

    def put_text(self, text: str) -> str:
        return self.put(text.encode("utf-8"))

    def get(self, object_id: str) -> bytes:
        path = self._path_for(object_id)
        if not path.exists():
            raise ObjectNotFoundError(f"object {object_id} not found in {self.root}")
        return path.read_bytes()

    def get_text(self, object_id: str) -> str:
        return self.get(object_id).decode("utf-8")

    def exists(self, object_id: str) -> bool:
        try:
            return self._path_for(object_id).exists()
        except ObjectNotFoundError:
            return False

    def __contains__(self, object_id: str) -> bool:
        return self.exists(object_id)

    def ids(self) -> Iterator[str]:
        """Iterate over every object id currently stored."""
        for prefix_dir in sorted(self.root.iterdir()):
            if not prefix_dir.is_dir():
                continue
            for obj in sorted(prefix_dir.iterdir()):
                if obj.suffix == ".tmp":
                    continue
                yield prefix_dir.name + obj.name

    def __len__(self) -> int:
        return sum(1 for _ in self.ids())
