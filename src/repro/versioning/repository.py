"""Commits and history on top of the content-addressed object store.

A :class:`Repository` tracks a set of files under a working directory.
``commit()`` snapshots their current contents into the object store and
appends an immutable :class:`Commit` to a linear history (FlorDB only ever
commits to the tip, so branching is intentionally out of scope).

Persistence is a snapshot (``commits.json``) plus an append-only event
journal (``commits.jsonl``): each ``commit``/``track``/``untrack`` appends
one JSON line instead of rewriting the whole history, so committing stays
O(1) in history length; the journal is folded back into the snapshot once
it grows past :attr:`Repository.COMPACT_EVERY` events.  Snapshotting file
contents is likewise incremental: a ``(mtime_ns, size) → object_id`` cache
skips reading and hashing files that have not changed since the previous
commit, with a git-style "racy mtime" guard (entries whose mtime is too
close to the time they were cached are never trusted) so a same-size edit
within the filesystem's timestamp granularity is still detected.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from ..errors import CommitNotFoundError, VersioningError
from .diff import diff_stats, unified_diff
from .objects import ObjectStore, hash_bytes


@dataclass(frozen=True)
class Commit:
    """An immutable snapshot of tracked files.

    ``files`` maps relative file path to the object id of its contents at
    commit time.  ``vid`` is derived from the file manifest plus parent, so
    identical content always yields the same version id (and committing with
    no changes is detected cheaply).
    """

    vid: str
    parent_vid: str | None
    tstamp: str
    message: str
    files: Mapping[str, str] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "vid": self.vid,
            "parent_vid": self.parent_vid,
            "tstamp": self.tstamp,
            "message": self.message,
            "files": dict(self.files),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "Commit":
        return cls(
            vid=data["vid"],
            parent_vid=data.get("parent_vid"),
            tstamp=data["tstamp"],
            message=data.get("message", ""),
            files=dict(data.get("files", {})),
        )


def _manifest_vid(files: Mapping[str, str], parent_vid: str | None) -> str:
    payload = json.dumps({"files": dict(sorted(files.items())), "parent": parent_vid}, sort_keys=True)
    return hash_bytes(payload.encode("utf-8"))[:16]


#: Don't trust a cached hash whose file mtime is within this window of the
#: moment the cache entry was made: coarse filesystem timestamps could hide
#: a same-size rewrite inside one timestamp tick (git's "racy clean" rule).
#: 2 s covers the coarsest common granularity (FAT/exFAT; HFS+ and some NFS
#: mounts are 1 s) — files untouched for longer than that still hit the
#: cache, which is the per-epoch steady state the cache exists for.
RACY_WINDOW_NS = 2_000_000_000  # 2 s


class Repository:
    """Linear version history over a set of tracked files.

    Storage is pluggable through the :class:`repro.storage.protocols.BlobStore`
    seam: pass ``store`` to supply any backend (in-memory, tiered, …).  When
    ``store`` is omitted, a directory-backed :class:`ObjectStore` is built at
    ``objects_dir``.  When ``objects_dir`` is ``None`` the journal is kept
    purely in memory (no snapshot/log files) — the in-memory service backend
    relies on this to build shards with zero disk I/O.
    """

    JOURNAL_NAME = "commits.json"
    LOG_NAME = "commits.jsonl"
    #: Fold the event journal into the snapshot past this many entries.
    COMPACT_EVERY = 512

    def __init__(
        self,
        objects_dir: "Path | str | None",
        working_dir: Path | str,
        *,
        store=None,
    ):
        if store is None:
            if objects_dir is None:
                raise VersioningError("Repository needs an objects_dir or a store")
            # Default to the tiered store so blobs archived by
            # ``repro gc --tier-cold`` stay readable from every session.
            # The archive directory is created lazily on the first archive
            # pass, so untier-ed projects pay nothing for the wrapper.
            from ..storage.tiering import TieredBlobStore

            store = TieredBlobStore(
                ObjectStore(objects_dir), Path(objects_dir) / "archive"
            )
        self.store = store
        self.working_dir = Path(working_dir)
        if objects_dir is not None:
            self._journal_path: "Path | None" = Path(objects_dir) / self.JOURNAL_NAME
            self._log_path: "Path | None" = Path(objects_dir) / self.LOG_NAME
        else:
            self._journal_path = None
            self._log_path = None
        self._commits: list[Commit] = []
        self._tracked: set[str] = set()
        self._log_entries = 0
        # rel path -> (mtime_ns, size, object_id, verified_at_ns)
        self._hash_cache: dict[str, tuple[int, int, str, int]] = {}
        self.snapshot_stats = {"hits": 0, "misses": 0}
        self._load_journal()

    # ------------------------------------------------------------- journal
    def _load_journal(self) -> None:
        if self._journal_path is None or self._log_path is None:
            return
        if self._journal_path.exists():
            try:
                data = json.loads(self._journal_path.read_text())
            except json.JSONDecodeError as exc:
                raise VersioningError(f"corrupt commit journal at {self._journal_path}") from exc
            self._commits = [Commit.from_json(entry) for entry in data.get("commits", [])]
            self._tracked = set(data.get("tracked", []))
        if self._log_path.exists():
            seen_vids = {c.vid for c in self._commits}
            for line_no, line in enumerate(self._log_path.read_text().splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise VersioningError(
                        f"corrupt commit journal at {self._log_path}:{line_no}"
                    ) from exc
                self._apply_event(event, seen_vids)
                self._log_entries += 1

    def _apply_event(self, event: Mapping, seen_vids: set[str]) -> None:
        op = event.get("op")
        if op == "commit":
            commit = Commit.from_json(event["commit"])
            # Replay must be idempotent: a crash between compaction's
            # snapshot replace and journal truncation leaves events that the
            # snapshot already folded in.  Linear, content-addressed history
            # never holds two distinct commits with one vid (an unchanged
            # manifest reuses the head instead of re-committing), so
            # skipping seen vids is safe.
            if commit.vid not in seen_vids:
                seen_vids.add(commit.vid)
                self._commits.append(commit)
        elif op == "track":
            self._tracked.update(event.get("paths", []))
        elif op == "untrack":
            self._tracked.difference_update(event.get("paths", []))
        else:
            raise VersioningError(f"unknown journal op {op!r} in {self._log_path}")

    def _append_event(self, event: dict) -> None:
        """Persist one state change in O(1): append a line, compact rarely.

        The event has already been applied to the in-memory state, so
        compaction (which serializes that state wholesale) subsumes it.
        """
        if self._log_path is None or self._journal_path is None:
            return
        if self._log_entries >= self.COMPACT_EVERY:
            self._save_snapshot()
            return
        self._log_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._log_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._log_entries += 1

    def _save_snapshot(self) -> None:
        """Write the full state to ``commits.json`` and truncate the journal."""
        if self._journal_path is None or self._log_path is None:
            return
        payload = {
            "commits": [c.to_json() for c in self._commits],
            "tracked": sorted(self._tracked),
        }
        self._journal_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._journal_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(self._journal_path)
        if self._log_path.exists():
            self._log_path.unlink()
        self._log_entries = 0

    # -------------------------------------------------------------- tracking
    def track(self, *paths: str | Path) -> None:
        """Add files (relative to the working directory) to the tracked set."""
        added = []
        for path in paths:
            rel = str(Path(path))
            if rel not in self._tracked:
                self._tracked.add(rel)
                added.append(rel)
        if added:
            self._append_event({"op": "track", "paths": added})

    def untrack(self, *paths: str | Path) -> None:
        removed = []
        for path in paths:
            rel = str(Path(path))
            if rel in self._tracked:
                self._tracked.discard(rel)
                removed.append(rel)
        if removed:
            self._append_event({"op": "untrack", "paths": removed})

    @property
    def tracked(self) -> list[str]:
        return sorted(self._tracked)

    def _snapshot_files(self) -> dict[str, str]:
        """Object ids for the current contents of every tracked file.

        An unchanged file — same ``(mtime_ns, size)`` as when its hash was
        cached, and an mtime old enough to be outside the racy window —
        reuses the cached object id without being read or hashed, making a
        per-epoch commit O(changed bytes) instead of O(tracked bytes).
        """
        manifest: dict[str, str] = {}
        for rel in sorted(self._tracked):
            path = self.working_dir / rel
            try:
                stat = path.stat()
            except OSError:
                continue
            cached = self._hash_cache.get(rel)
            if (
                cached is not None
                and cached[0] == stat.st_mtime_ns
                and cached[1] == stat.st_size
                and stat.st_mtime_ns + RACY_WINDOW_NS < cached[3]
            ):
                self.snapshot_stats["hits"] += 1
                manifest[rel] = cached[2]
                continue
            object_id = self.store.put(path.read_bytes())
            self._hash_cache[rel] = (stat.st_mtime_ns, stat.st_size, object_id, time.time_ns())
            self.snapshot_stats["misses"] += 1
            manifest[rel] = object_id
        return manifest

    # --------------------------------------------------------------- commits
    def commit(self, message: str = "", tstamp: str | None = None) -> Commit:
        """Snapshot tracked files and append a commit; returns the new commit.

        Committing an unchanged manifest returns the existing head commit
        instead of creating an empty commit — several FlorDB epochs can
        therefore map to the same version id, exactly like re-running a
        pipeline without touching the code.
        """
        files = self._snapshot_files()
        parent = self._commits[-1] if self._commits else None
        parent_vid = parent.vid if parent else None
        if parent is not None and dict(parent.files) == files:
            return parent
        vid = _manifest_vid(files, parent_vid)
        commit = Commit(
            vid=vid,
            parent_vid=parent_vid,
            tstamp=tstamp or time.strftime("%Y-%m-%dT%H:%M:%S"),
            message=message,
            files=files,
        )
        self._commits.append(commit)
        self._append_event({"op": "commit", "commit": commit.to_json()})
        return commit

    def log(self) -> list[Commit]:
        """All commits, oldest first."""
        return list(self._commits)

    def head(self) -> Commit | None:
        return self._commits[-1] if self._commits else None

    def get(self, vid: str) -> Commit:
        for commit in self._commits:
            if commit.vid == vid:
                return commit
        raise CommitNotFoundError(f"no commit with vid {vid!r}")

    def __contains__(self, vid: str) -> bool:
        return any(c.vid == vid for c in self._commits)

    def __len__(self) -> int:
        return len(self._commits)

    # ----------------------------------------------------------- file access
    def read_file(self, vid: str, filename: str) -> str:
        """Contents of ``filename`` as of version ``vid``."""
        commit = self.get(vid)
        if filename not in commit.files:
            raise VersioningError(f"file {filename!r} is not part of version {vid}")
        return self.store.get_text(commit.files[filename])

    def file_exists(self, vid: str, filename: str) -> bool:
        try:
            commit = self.get(vid)
        except CommitNotFoundError:
            return False
        return filename in commit.files

    def checkout(self, vid: str, destination: Path | str) -> list[str]:
        """Materialize every file of version ``vid`` under ``destination``."""
        commit = self.get(vid)
        destination = Path(destination)
        written: list[str] = []
        for filename, object_id in commit.files.items():
            target = destination / filename
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(self.store.get(object_id))
            written.append(filename)
        return sorted(written)

    # ------------------------------------------------------------------ diff
    def diff(self, old_vid: str, new_vid: str, filename: str) -> str:
        """Unified diff of one file between two versions."""
        old = self.read_file(old_vid, filename).splitlines() if self.file_exists(old_vid, filename) else []
        new = self.read_file(new_vid, filename).splitlines() if self.file_exists(new_vid, filename) else []
        return unified_diff(old, new, f"{filename}@{old_vid}", f"{filename}@{new_vid}")

    def change_summary(self, old_vid: str, new_vid: str) -> dict[str, dict[str, int]]:
        """Per-file added/deleted/unchanged line counts between two versions."""
        old_commit = self.get(old_vid)
        new_commit = self.get(new_vid)
        summary: dict[str, dict[str, int]] = {}
        for filename in sorted(set(old_commit.files) | set(new_commit.files)):
            old_lines = (
                self.store.get_text(old_commit.files[filename]).splitlines()
                if filename in old_commit.files
                else []
            )
            new_lines = (
                self.store.get_text(new_commit.files[filename]).splitlines()
                if filename in new_commit.files
                else []
            )
            summary[filename] = diff_stats(old_lines, new_lines)
        return summary
