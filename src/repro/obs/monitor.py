"""Terminal rendering for the live telemetry feed (``repro monitor``).

The service (and the fleet router) emit self-contained cumulative
snapshots — see :func:`repro.service.stats.telemetry_payload` and the
router's fan-in.  This module turns one snapshot (plus, optionally, the
previous one) into a compact text frame: gauges and tail state verbatim,
counters annotated with per-second rates differenced from the previous
frame.  Pure functions over dicts, so the renderer is testable without a
socket in sight.
"""

from __future__ import annotations

from typing import Any

#: Counters surfaced first, in this order; everything else follows
#: alphabetically.  Keeps the hot numbers (ingest and tail throughput)
#: at a fixed position on every frame.
_LEAD_COUNTERS = (
    "flush.rows",
    "flush.transactions",
    "tail.rows",
    "http.requests",
    "http.errors",
)


def counter_rates(
    current: dict[str, float], previous: dict[str, float] | None, elapsed: float | None
) -> dict[str, float]:
    """Per-second deltas between two cumulative counter snapshots.

    Counters that went *backwards* (a worker restarted and its registry
    reset) report no rate rather than a huge negative one.
    """
    if previous is None or not elapsed or elapsed <= 0:
        return {}
    rates: dict[str, float] = {}
    for key, value in current.items():
        delta = value - previous.get(key, 0)
        if delta >= 0:
            rates[key] = delta / elapsed
    return rates


def _ordered_counters(counters: dict[str, float]) -> list[str]:
    lead = [key for key in _LEAD_COUNTERS if key in counters]
    rest = sorted(key for key in counters if key not in _LEAD_COUNTERS)
    return lead + rest


def _format_number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return f"{int(value)}"


def render_frame(
    snapshot: dict[str, Any],
    *,
    previous: dict[str, Any] | None = None,
    elapsed: float | None = None,
) -> str:
    """One telemetry frame as printable text.

    Accepts both payload shapes: a single service's snapshot (with
    ``histograms`` and ``uptime_seconds``) and the router's fan-in
    (with ``role: router``, summed counters/gauges, per-worker blocks).
    """
    lines: list[str] = []
    role = snapshot.get("role", "service")
    header = f"[{role}]"
    if "uptime_seconds" in snapshot:
        header += f" up {snapshot['uptime_seconds']:.0f}s"
    fleet = snapshot.get("fleet")
    if isinstance(fleet, dict):
        header += f" workers {fleet.get('alive', '?')}/{fleet.get('registered', '?')}"
    if "open_shards" in snapshot:
        header += f" shards {snapshot['open_shards']}"
    lines.append(header)

    jobs = snapshot.get("jobs") or {}
    if jobs:
        lines.append(
            "jobs: " + "  ".join(f"{state}={count}" for state, count in sorted(jobs.items()))
        )
    tail = snapshot.get("tail") or {}
    if tail:
        lines.append(
            f"tail: subscribers={tail.get('subscribers', 0)}"
            f" streams={tail.get('streams', 0)}"
            f" subscribed_total={tail.get('subscribed_total', 0)}"
            f" evicted_total={tail.get('evicted_total', 0)}"
        )

    counters = snapshot.get("counters") or {}
    rates = counter_rates(
        counters, (previous or {}).get("counters"), elapsed
    )
    for key in _ordered_counters(counters):
        line = f"  {key:<24} {_format_number(counters[key]):>12}"
        if key in rates:
            line += f"  ({rates[key]:+.1f}/s)"
        lines.append(line)

    gauges = snapshot.get("gauges") or {}
    for key in sorted(gauges):
        lines.append(f"  {key:<24} {_format_number(gauges[key]):>12}  (gauge)")

    histograms = snapshot.get("histograms") or {}
    for key in sorted(histograms):
        h = histograms[key]
        lines.append(
            f"  {key:<24} p50={h.get('p50', 0):.2f} p95={h.get('p95', 0):.2f}"
            f" p99={h.get('p99', 0):.2f} (n={h.get('count', 0)})"
        )

    workers = snapshot.get("workers") or {}
    for worker_id in sorted(workers):
        block = workers[worker_id]
        if "error" in block:
            lines.append(f"  worker {worker_id}: ERROR {block['error']}")
        else:
            w_tail = block.get("tail") or {}
            lines.append(
                f"  worker {worker_id}: shards={block.get('open_shards', '?')}"
                f" subscribers={w_tail.get('subscribers', 0)}"
            )
    return "\n".join(lines)
