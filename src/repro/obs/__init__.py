"""repro.obs — the live observability plane.

Three small pieces that together replace poll-the-stats-route
observability with push:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and ring-buffer latency histograms; threaded through the hot
  paths (flusher, pool, pivot cache, jobs, admission) and served by
  ``GET /service/telemetry``.
* :mod:`repro.obs.tail` — :class:`TailBroker`, turning post-commit
  flusher callbacks into per-project subscriber wakeups with bounded
  fan-out and slow-consumer eviction; backs ``GET /projects/<name>/tail``.
* :mod:`repro.obs.access` — :class:`AccessLog`, the sampled structured
  access log behind ``repro serve --access-log``.

See ``docs/observability.md`` for the wire protocol and metric catalog.
"""

from .access import AccessLog, stderr_emitter, tenant_of
from .metrics import DEFAULT_WINDOW, Counter, Gauge, Histogram, MetricsRegistry
from .tail import TailBroker, TailSubscription

__all__ = [
    "AccessLog",
    "Counter",
    "DEFAULT_WINDOW",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TailBroker",
    "TailSubscription",
    "stderr_emitter",
    "tenant_of",
]
