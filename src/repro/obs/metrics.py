"""Low-overhead process metrics: counters, gauges, ring-buffer histograms.

The observability plane needs numbers from the hottest paths in the system
— the background flusher's per-transaction latency, the pool's hit/miss
churn, admission verdicts — so the recording side must cost almost nothing
and never block.  Three instrument kinds cover everything the telemetry
feed serves:

* :class:`Counter` — monotone float/int accumulator (``rows_written``,
  ``admitted``).  Rates are the *reader's* job: the telemetry feed emits
  snapshots, and consumers (the ``repro monitor`` CLI) difference
  successive snapshots against wall-clock.
* :class:`Gauge` — last-write-wins level (``queue_depth``).
* :class:`Histogram` — a fixed-size ring buffer of recent observations.
  ``observe`` is O(1) (overwrite a slot, bump two scalars); percentiles
  (p50/p95/p99) are computed lazily at snapshot time from a copy of the
  window, so the hot path never sorts.  The window covers the *recent*
  distribution — exactly what a live dashboard wants — while ``count``
  and ``sum`` stay lifetime-accurate.

Instruments are created on first use and held forever (the registry is a
bounded vocabulary of code-site names, not per-request data).  Every
consumer takes ``metrics: MetricsRegistry | None`` and guards each record
with ``if metrics is not None`` — a service running without the
observability plane pays a single attribute test per would-be sample.
"""

from __future__ import annotations

import threading
import time
from typing import Any

#: Default histogram window: big enough that p99 over a busy second is
#: meaningful, small enough that snapshotting (copy + sort) stays cheap.
DEFAULT_WINDOW = 1024


class Counter:
    """A monotone accumulator.  ``inc`` never goes backwards."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Ring buffer of the most recent ``window`` observations.

    ``observe`` overwrites the oldest slot; ``summary`` copies the filled
    window and computes nearest-rank percentiles.  Lifetime ``count`` and
    ``sum`` ride alongside so throughput/mean survive the window rolling.
    """

    __slots__ = ("_lock", "_buffer", "_window", "count", "sum")

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"histogram window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._buffer: list[float] = [0.0] * window
        self._window = window
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._buffer[self.count % self._window] = float(value)
            self.count += 1
            self.sum += value

    def summary(self) -> dict[str, float]:
        with self._lock:
            filled = min(self.count, self._window)
            window = sorted(self._buffer[:filled])
            count, total = self.count, self.sum
        if not window:
            return {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

        def rank(p: float) -> float:
            return window[min(len(window) - 1, int(p * len(window)))]

        return {
            "count": count,
            "sum": round(total, 6),
            "p50": rank(0.50),
            "p95": rank(0.95),
            "p99": rank(0.99),
            "max": window[-1],
        }


class MetricsRegistry:
    """Name → instrument table shared by every instrumented component.

    One registry per service process (the :class:`~repro.service.app.
    FlorService` owns it); ``snapshot()`` is what ``GET /service/telemetry``
    serves, and the sequence number it carries lets SSE consumers detect a
    restarted process (the sequence resets).
    """

    def __init__(self, *, histogram_window: int = DEFAULT_WINDOW):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._histogram_window = histogram_window
        self.started_at = time.time()

    # -------------------------------------------------------- get-or-create
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(self._histogram_window)
            return instrument

    # ----------------------------------------------------------- convenience
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> dict[str, Any]:
        """A point-in-time view of every instrument, JSON-ready."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(histograms.items())},
        }
