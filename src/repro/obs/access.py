"""Structured access logging as a wrapper around any ``handle``-able app.

:class:`AccessLog` sits between the socket layer and the framework app —
``make_server(AccessLog(app, metrics))`` — timing every dispatch.  Two
outputs, both cheap:

* **Registry** (always, when a registry is given): ``http.requests`` /
  ``http.errors`` counters and an ``http.request_ms`` latency histogram,
  so request latency percentiles show up in ``GET /service/telemetry``
  without any log parsing.
* **Log lines** (only when ``emit`` is set, i.e. ``serve --access-log``):
  ``method path status latency_ms tenant`` — one space-separated line per
  *sampled* request.  Sampling is deterministic (every Nth request, not
  random) so tests and load analysis are reproducible; the default of 1
  logs everything once the flag is on.

The tenant column is parsed from ``/projects/<name>/...`` paths — the
same notion of tenant the QoS layer keys on — and ``-`` otherwise.
Streaming responses are timed to *first byte* (handler return), not
stream completion: a tail connection held open for an hour is not a
one-hour request.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from ..webapp.framework import Request, Response
from .metrics import MetricsRegistry


def tenant_of(path: str) -> str:
    """Extract the tenant (project name) from a request path, ``-`` if none."""
    parts = path.strip("/").split("/")
    if len(parts) >= 2 and parts[0] == "projects" and parts[1]:
        return parts[1]
    return "-"


class AccessLog:
    """Wrap an app's ``handle`` with timing, metrics, and sampled log lines."""

    def __init__(
        self,
        app,
        metrics: MetricsRegistry | None = None,
        *,
        emit: Callable[[str], None] | None = None,
        sample: int = 1,
    ):
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.app = app
        self.metrics = metrics
        self.emit = emit
        self.sample = sample
        self._seen = 0

    def handle(self, request: Request) -> Response:
        start = time.perf_counter()
        try:
            response = self.app.handle(request)
            status = response.status
            return response
        except Exception:
            status = 500
            raise
        finally:
            latency_ms = (time.perf_counter() - start) * 1000.0
            self._record(request, status, latency_ms)

    def _record(self, request: Request, status: int, latency_ms: float) -> None:
        if self.metrics is not None:
            self.metrics.inc("http.requests")
            if status >= 500:
                self.metrics.inc("http.errors")
            self.metrics.observe("http.request_ms", latency_ms)
        if self.emit is None:
            return
        self._seen += 1
        if (self._seen - 1) % self.sample:
            return
        line = (
            f"{request.method} {request.path} {status} "
            f"{latency_ms:.2f} {tenant_of(request.path)}"
        )
        self.emit(line)


def stderr_emitter(line: str) -> None:
    """Default ``--access-log`` sink: one line to stderr, immediately flushed."""
    print(line, file=sys.stderr, flush=True)
