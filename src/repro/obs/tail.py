"""TailBroker: turn post-commit write notifications into subscriber wakeups.

The tail routes never push rows through the broker — rows live in the
relational store, whose ``logs.seq`` (and ``job_events.seq``) columns are
already a total order with a durable cursor.  What a subscriber needs from
the write path is only a *wakeup*: "stream X has new committed rows".  The
broker holds that fan-out:

* :meth:`TailBroker.publish` is called from the flusher's ``on_written``
  hook (post-commit, on the flusher thread) — it must never block, so it
  only bumps a per-stream row counter and notifies a condition variable.
* :meth:`TailBroker.subscribe` registers a cursor-carrying subscription;
  the SSE generator loop alternates "fetch rows past my cursor from the
  store" with :meth:`TailSubscription.wait`.
* **Slow-consumer eviction**: each subscription's lag is the stream's
  published-row counter minus what the consumer has acknowledged via
  :meth:`TailSubscription.advance`.  A subscriber whose lag exceeds
  ``max_lag`` — a client whose socket stopped draining while ingest keeps
  committing — is marked evicted at publish time; its generator emits one
  final ``event: evicted`` frame and ends, and the client reconnects with
  its ``Last-Event-ID`` to backfill from the store.  Eviction therefore
  never loses data, it only sheds the *connection*.
* **Bounded subscribers**: past ``max_subscribers`` the broker refuses new
  subscriptions (:class:`~repro.errors.TailBackpressureError` → the route
  answers 503 + Retry-After) instead of growing without bound.

Everything is in-process and lock-cheap: one mutex, held for dictionary
and counter updates only — never across a fetch or a socket write.
"""

from __future__ import annotations

import threading
from itertools import count
from typing import Any, Iterator

from ..errors import TailBackpressureError

_subscription_ids = count(1)


class TailSubscription:
    """One subscriber's cursor into one stream."""

    def __init__(self, broker: "TailBroker", stream: str, cursor: int, baseline: float):
        self.id = next(_subscription_ids)
        self.broker = broker
        self.stream = stream
        #: The highest store sequence number already delivered; the SSE
        #: generator fetches rows with ``seq > cursor`` and advances it.
        self.cursor = cursor
        #: Stream row-counter value at subscribe time (rows published
        #: before we arrived can never count as our lag).
        self.baseline = baseline
        self.delivered = 0.0
        self.evicted: str | None = None
        self.closed = False
        self._cond = threading.Condition()
        self._signal = False

    # ------------------------------------------------------------- consumer
    def wait(self, timeout: float) -> bool:
        """Block until new data is published (or ``timeout``); True if woken."""
        with self._cond:
            if not self._signal:
                self._cond.wait(timeout)
            woken, self._signal = self._signal, False
            return woken

    def advance(self, cursor: int, rows: int) -> None:
        """Record that ``rows`` rows up to ``cursor`` reached the consumer."""
        self.cursor = cursor
        with self._cond:
            self.delivered += rows

    def lag(self) -> float:
        """Published-but-undelivered rows (the eviction trigger)."""
        published = self.broker.published(self.stream)
        with self._cond:
            return max(0.0, published - self.baseline - self.delivered)

    # ------------------------------------------------------------- producer
    def notify(self) -> None:
        with self._cond:
            self._signal = True
            self._cond.notify_all()

    def evict(self, reason: str) -> None:
        with self._cond:
            if self.evicted is None:
                self.evicted = reason
            self._signal = True
            self._cond.notify_all()

    def close(self) -> None:
        self.broker.unsubscribe(self)


class TailBroker:
    """Per-stream subscriber registry with bounded fan-out.

    Parameters
    ----------
    max_subscribers:
        Hard cap on concurrent subscriptions across all streams; beyond
        it :meth:`subscribe` raises :class:`TailBackpressureError`.
    max_lag:
        Rows a subscriber may fall behind the stream's published counter
        before it is evicted (the slow-consumer bound).
    """

    def __init__(self, *, max_subscribers: int = 1024, max_lag: int = 100_000):
        if max_subscribers < 1:
            raise ValueError(f"max_subscribers must be >= 1, got {max_subscribers}")
        if max_lag < 1:
            raise ValueError(f"max_lag must be >= 1, got {max_lag}")
        self.max_subscribers = max_subscribers
        self.max_lag = max_lag
        self._lock = threading.Lock()
        self._streams: dict[str, list[TailSubscription]] = {}
        self._published: dict[str, float] = {}
        self._closed = False
        self.evicted_total = 0
        self.subscribed_total = 0

    # ----------------------------------------------------------- subscribers
    def subscribe(self, stream: str, cursor: int = 0) -> TailSubscription:
        with self._lock:
            if self._closed:
                raise TailBackpressureError("tail broker is closed")
            if sum(len(subs) for subs in self._streams.values()) >= self.max_subscribers:
                raise TailBackpressureError(
                    f"too many tail subscribers (max {self.max_subscribers})"
                )
            subscription = TailSubscription(
                self, stream, cursor, self._published.get(stream, 0.0)
            )
            self._streams.setdefault(stream, []).append(subscription)
            self.subscribed_total += 1
            return subscription

    def unsubscribe(self, subscription: TailSubscription) -> None:
        with self._lock:
            subscription.closed = True
            subs = self._streams.get(subscription.stream)
            if subs is not None:
                try:
                    subs.remove(subscription)
                except ValueError:
                    pass
                if not subs:
                    self._streams.pop(subscription.stream, None)

    # -------------------------------------------------------------- producer
    def publish(self, stream: str, rows: int = 1) -> int:
        """Post-commit notification: ``rows`` new rows are readable.

        Called from writer threads (the background flusher's ``on_written``
        hook), so it does bounded work under the lock and never touches a
        socket or the store.  Returns the number of subscribers woken.
        Publishing also runs the slow-consumer check: any subscription
        whose lag now exceeds ``max_lag`` is evicted instead of woken.
        """
        with self._lock:
            self._published[stream] = self._published.get(stream, 0.0) + rows
            subs = list(self._streams.get(stream, ()))
        woken = 0
        for subscription in subs:
            if subscription.evicted is not None:
                continue
            if subscription.lag() > self.max_lag:
                subscription.evict(f"lagging more than {self.max_lag} rows")
                with self._lock:
                    self.evicted_total += 1
                continue
            subscription.notify()
            woken += 1
        return woken

    def published(self, stream: str) -> float:
        with self._lock:
            return self._published.get(stream, 0.0)

    # ------------------------------------------------------------ lifecycle
    def subscriptions(self, stream: str | None = None) -> Iterator[TailSubscription]:
        with self._lock:
            if stream is not None:
                subs = list(self._streams.get(stream, ()))
            else:
                subs = [s for group in self._streams.values() for s in group]
        return iter(subs)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            per_stream = {name: len(subs) for name, subs in sorted(self._streams.items())}
            return {
                "streams": len(per_stream),
                "subscribers": sum(per_stream.values()),
                "subscribed_total": self.subscribed_total,
                "evicted_total": self.evicted_total,
                "max_subscribers": self.max_subscribers,
                "max_lag": self.max_lag,
                "per_stream": per_stream,
            }

    def close(self) -> None:
        """Evict every subscriber (their generators end) and refuse new ones."""
        with self._lock:
            self._closed = True
            subs = [s for group in self._streams.values() for s in group]
            self._streams.clear()
        for subscription in subs:
            subscription.evict("service shutting down")
