"""Exception hierarchy for the FlorDB reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing unrelated
bugs (``except ReproError`` instead of a bare ``except Exception``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Raised when project configuration is missing or inconsistent."""


class DataFrameError(ReproError):
    """Raised by the mini dataframe engine."""


class ColumnNotFoundError(DataFrameError):
    """Raised when a requested column does not exist in a DataFrame."""

    def __init__(self, column: str, available: tuple[str, ...] = ()):
        self.column = column
        self.available = tuple(available)
        message = f"column {column!r} not found"
        if available:
            message += f"; available columns: {', '.join(available)}"
        super().__init__(message)


class LengthMismatchError(DataFrameError):
    """Raised when columns of differing lengths are combined."""


class DatabaseError(ReproError):
    """Raised by the relational storage layer."""


class SchemaError(DatabaseError):
    """Raised when the on-disk schema is incompatible with this version."""


class VersioningError(ReproError):
    """Raised by the content-addressed version store."""


class ObjectNotFoundError(VersioningError):
    """Raised when an object id is not present in the store."""


class CommitNotFoundError(VersioningError):
    """Raised when a version id does not name a commit."""


class RecordingError(ReproError):
    """Raised by the recording runtime (flor.log / flor.loop misuse)."""


class ReplayError(ReproError):
    """Raised by the replay engine."""


class CheckpointError(ReproError):
    """Raised when checkpoint state cannot be saved or restored."""


class PropagationError(ReproError):
    """Raised when log statements cannot be propagated across versions."""


class BuildError(ReproError):
    """Raised by the Make-like build substrate."""


class MakefileError(BuildError):
    """Raised when a Makefile cannot be parsed.

    Carries the offending line number so CLI users get ``Makefile:7: ...``
    style messages, matching what GNU make prints.
    """

    def __init__(self, message: str, lineno: int | None = None, path: str | None = None):
        self.lineno = lineno
        self.path = path
        location = f"{path or 'Makefile'}:{lineno}: " if lineno is not None else ""
        super().__init__(f"{location}{message}")


class CycleError(BuildError):
    """Raised when the dependency graph contains a cycle."""

    def __init__(self, cycle: tuple[str, ...] = ()):
        self.cycle = tuple(cycle)
        message = "dependency graph contains a cycle"
        if self.cycle:
            message += ": " + " -> ".join(self.cycle)
        super().__init__(message)


class TargetNotFoundError(BuildError):
    """Raised when a requested build target is not defined."""

    def __init__(self, target: str, known: tuple[str, ...] = ()):
        self.target = target
        self.known = tuple(known)
        message = f"no rule to make target {target!r}"
        if known:
            message += f"; known targets: {', '.join(known)}"
        super().__init__(message)


class PipelineError(ReproError):
    """Raised by high-level pipeline orchestration helpers."""


class ModelError(ReproError):
    """Raised by the NumPy ML substrate."""


class WebAppError(ReproError):
    """Raised by the minimal web framework."""


class RouteNotFoundError(WebAppError):
    """Raised when a request path has no registered handler."""

    def __init__(self, path: str, method: str = "GET"):
        self.path = path
        self.method = method
        super().__init__(f"no route for {method} {path}")


class GovernanceError(ReproError):
    """Raised when a governance policy check fails hard."""


class JobError(ReproError):
    """Raised by the durable job orchestration layer (repro.jobs)."""


class JobNotFoundError(JobError):
    """Raised when a job id does not exist in the store."""

    def __init__(self, job_id: int):
        self.job_id = job_id
        super().__init__(f"no such job: {job_id}")


class QosError(ReproError):
    """Raised by the admission-control / multi-tenant QoS layer (repro.qos)."""


class PolicyConflictError(QosError):
    """A policy write was rejected at write time (shadowed or contradictory).

    Carries a structured ``detail`` dict so the HTTP layer can return a
    machine-readable conflict body instead of prose only:

    * ``code`` — ``"shadowed"``, ``"shadows"`` or ``"contradiction"``;
    * ``selector`` — the selector of the rejected rule;
    * ``by`` — for shadow conflicts, the selector of the other rule involved;
    * ``field`` — for contradictions, the offending field.
    """

    def __init__(self, message: str, *, code: str, selector: str, by: str | None = None, field: str | None = None):
        self.code = code
        self.selector = selector
        self.by = by
        self.field = field
        super().__init__(message)

    def as_dict(self) -> dict:
        detail = {"code": self.code, "selector": self.selector}
        if self.by is not None:
            detail["by"] = self.by
        if self.field is not None:
            detail["field"] = self.field
        return detail


class ObsError(ReproError):
    """Raised by the observability plane (repro.obs)."""


class TailBackpressureError(ObsError):
    """A tail subscription was refused or shed to protect the service.

    Raised when the broker is at its subscriber cap (the HTTP layer maps
    this to ``503`` + ``Retry-After``) or closed during shutdown.
    """


class FleetError(ReproError):
    """Raised by the multi-process worker fleet (repro.fleet)."""


class TransportError(FleetError):
    """Raised when an HTTP request to a fleet peer cannot be completed."""
