"""The end-to-end document-intelligence pipeline of the PDF-parser demo (§4).

One class, five stages — the same stages as the demo's Makefile (Figure 4):

``process_pdfs`` → ``featurize`` → ``train`` → ``infer`` → ``serve``

Each stage is an ordinary Python method that uses the substrates in this
repository (synthetic corpus, NumPy classifier, feedback web app) and logs
its context through the FlorDB session, so the pipeline doubles as the
integration fixture for tests and as the workload behind the F2/F4
benchmarks.  The Make-like executor binds each Makefile target to one of
these methods via :class:`repro.build.executor.CallableRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .core.session import Session
from .docs.corpus import DocumentCorpus, generate_corpus
from .docs.featurize import PageFeatures, feature_vector, featurize_corpus
from .errors import PipelineError
from .ml.dataset import Dataset, train_test_split
from .ml.metrics import accuracy, recall
from .ml.mlp import MLPClassifier
from .ml.optim import Adam
from .mlops.model_registry import ModelRegistry
from .webapp.pdf_app import PdfParserApp

#: Filenames stamped on each stage's records (matches the demo's scripts).
DEMUX_FILE = "pdf_demux.py"
FEATURIZE_FILE = "featurize.py"
TRAIN_FILE = "train.py"
INFER_FILE = "infer.py"
APP_FILE = "app.py"


@dataclass
class PipelineState:
    """Artifacts carried between pipeline stages."""

    corpus: DocumentCorpus | None = None
    features: list[PageFeatures] = field(default_factory=list)
    model: MLPClassifier | None = None
    predictions: dict[tuple[str, int], int] = field(default_factory=dict)
    app: PdfParserApp | None = None


class PdfPipeline:
    """The demo pipeline bound to one FlorDB session."""

    def __init__(
        self,
        session: Session,
        *,
        documents: int = 4,
        max_pages: int = 6,
        epochs: int = 2,
        hidden: int = 16,
        seed: int = 0,
    ):
        self.session = session
        self.documents = documents
        self.max_pages = max_pages
        self.epochs = epochs
        self.hidden = hidden
        self.seed = seed
        self.state = PipelineState()
        self.registry = ModelRegistry(session, filename=TRAIN_FILE)

    # ------------------------------------------------------------------ demux
    def process_pdfs(self) -> DocumentCorpus:
        """Stage 1: "split PDFs into per-page documents" (synthetic corpus)."""
        corpus = generate_corpus(
            num_documents=self.documents,
            min_pages=2,
            max_pages=self.max_pages,
            seed=self.seed,
        )
        self.state.corpus = corpus
        self.session.log("num_documents", len(corpus), filename=DEMUX_FILE)
        self.session.log("num_pages", corpus.total_pages, filename=DEMUX_FILE)
        return corpus

    # -------------------------------------------------------------- featurize
    def featurize(self) -> list[PageFeatures]:
        """Stage 2: the Figure 3 featurization loop over every page."""
        corpus = self._require_corpus()
        for doc_name in self.session.loop("document", corpus.document_names(), filename=FEATURIZE_FILE):
            document = corpus.get(doc_name)
            for page_index in self.session.loop("page", range(len(document)), filename=FEATURIZE_FILE):
                from .docs.ocr import read_page

                extraction = read_page(document, page_index, seed=corpus.seed)
                text_src, page_text = extraction.as_tuple()
                self.session.log("text_src", text_src, filename=FEATURIZE_FILE)
                self.session.log("page_text", page_text[:200], filename=FEATURIZE_FILE)
                from .docs.featurize import extract_features

                features = extract_features(document, page_index, extraction)
                self.session.log("headings", features.headings, filename=FEATURIZE_FILE)
                self.session.log("page_numbers", features.page_numbers, filename=FEATURIZE_FILE)
                self.session.log("first_page", int(document.pages[page_index].is_first_page), filename=FEATURIZE_FILE)
                self.state.features.append(features)
        self.session.flush()
        return self.state.features

    # ------------------------------------------------------------------ train
    def train(self) -> MLPClassifier:
        """Stage 3: the Figure 5 training loop over labelled page features."""
        features = self.state.features or self.featurize()
        corpus = self._require_corpus()
        X = np.stack([feature_vector(f) for f in features])
        y = np.array(
            [1 if corpus.get(f.document).pages[f.page_index].is_first_page else 0 for f in features],
            dtype=np.int64,
        )
        dataset = Dataset(X, y)
        if len(dataset) < 4:
            raise PipelineError("not enough featurized pages to train on")
        train_data, test_data = train_test_split(dataset, test_fraction=0.25, seed=self.seed)
        if test_data.y.size == 0:
            train_data, test_data = dataset, dataset

        hidden = self.session.arg("hidden", self.hidden, filename=TRAIN_FILE)
        num_epochs = self.session.arg("epochs", self.epochs, filename=TRAIN_FILE)
        learning_rate = self.session.arg("lr", 1e-2, filename=TRAIN_FILE)
        seed = self.session.arg("seed", self.seed, filename=TRAIN_FILE)

        net = MLPClassifier(dataset.num_features, 2, hidden_sizes=(hidden,), seed=seed)
        optimizer = Adam(net, lr=learning_rate)
        acc = rec = 0.0
        with self.session.checkpointing(model=net, optimizer=optimizer, filename=TRAIN_FILE):
            for _epoch in self.session.loop("epoch", range(num_epochs), filename=TRAIN_FILE):
                for start in self.session.loop("step", range(0, len(train_data), 16), filename=TRAIN_FILE):
                    batch = slice(start, start + 16)
                    optimizer.zero_grad()
                    loss = net.loss_and_backward(train_data.X[batch], train_data.y[batch])
                    self.session.log("loss", loss, filename=TRAIN_FILE)
                    optimizer.step()
                predictions = net.predict(test_data.X)
                acc = accuracy(test_data.y, predictions)
                rec = recall(test_data.y, predictions, positive_class=1)
                self.session.log("acc", acc, filename=TRAIN_FILE)
                self.session.log("recall", rec, filename=TRAIN_FILE)
        self.registry.register("first_page_classifier", net, {"acc": acc, "recall": rec})
        self.state.model = net
        return net

    # ------------------------------------------------------------------ infer
    def infer(self) -> dict[tuple[str, int], int]:
        """Stage 4: predict with the best recorded checkpoint (model registry role)."""
        corpus = self._require_corpus()
        loaded = self.registry.load_best("recall")
        if loaded is not None:
            model, best_row = loaded
            self.session.log("selected_model_tstamp", best_row["tstamp"], filename=INFER_FILE)
        elif self.state.model is not None:
            model = self.state.model
        else:
            raise PipelineError("no trained model available; run the train stage first")
        features = self.state.features or list(featurize_corpus(corpus, use_flor=False))
        predictions: dict[tuple[str, int], int] = {}
        for doc_name in self.session.loop("document", corpus.document_names(), filename=INFER_FILE):
            document = corpus.get(doc_name)
            doc_features = [f for f in features if f.document == doc_name]
            for page_index in self.session.loop("page", range(len(document)), filename=INFER_FILE):
                matching = [f for f in doc_features if f.page_index == page_index]
                if not matching:
                    continue
                vector = feature_vector(matching[0]).reshape(1, -1)
                predicted = int(model.predict(vector)[0])
                self.session.log("pred_first_page", predicted, filename=INFER_FILE)
                predictions[(doc_name, page_index)] = predicted
        self.session.flush()
        self.state.predictions = predictions
        return predictions

    # ------------------------------------------------------------------ serve
    def serve(self) -> PdfParserApp:
        """Stage 5: the feedback web application over the processed corpus."""
        corpus = self._require_corpus()
        self.state.app = PdfParserApp(self.session, corpus)
        return self.state.app

    # -------------------------------------------------------------- utilities
    def run_all(self, commit: bool = True) -> PipelineState:
        """Run every stage in order; optionally commit at the end."""
        self.process_pdfs()
        self.featurize()
        self.train()
        self.infer()
        self.serve()
        if commit:
            self.session.commit("pipeline run")
        return self.state

    def feedback_round(self, corrections: dict[str, list[int]]) -> int:
        """Simulate experts posting corrected page colors through the app."""
        app = self.state.app or self.serve()
        client = app.test_client()
        saved = 0
        for pdf_name, colors in corrections.items():
            response = client.post("/save_colors", json_body={"pdf_name": pdf_name, "colors": colors})
            if not response.ok:
                raise PipelineError(f"feedback submission failed: {response.body}")
            saved += response.json()["count"]
        return saved

    def _require_corpus(self) -> DocumentCorpus:
        if self.state.corpus is None:
            return self.process_pdfs()
        return self.state.corpus


__all__ = ["PdfPipeline", "PipelineState"]
