"""Asynchronous checkpoint serialization and object-store writes.

:class:`~repro.core.checkpoint.CheckpointManager` snapshots registered state
on the recording thread (cheap, bounded by a deep copy); this worker then
pickles the snapshot and writes it to the ``obj_store`` table off-thread.
The training loop's per-checkpoint cost becomes the snapshot alone, which is
what the adaptive policy should be (and now is) charged with.

``drain()`` is the ordering barrier: ``restore()``, ``commit()`` and
``close()`` take it before depending on stored checkpoints, so a replay that
skips to iteration *k* always finds the checkpoint saved at *k-1* even if it
was still in flight moments earlier.  Worker failures (an unpicklable
object, a broken store) are wrapped as :class:`CheckpointError` and
re-raised on the recording thread at the next ``submit``/``drain``/``close``.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import CheckpointError
from ..relational.records import ObjectRecord
from ..relational.repositories import ObjectRepository


@dataclass
class CheckpointWriteStats:
    """Counters for one writer's lifetime behaviour."""

    submitted: int = 0
    written: int = 0
    errors: int = 0
    backpressure_waits: int = 0
    pickle_seconds: float = 0.0
    write_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "submitted": self.submitted,
            "written": self.written,
            "errors": self.errors,
            "backpressure_waits": self.backpressure_waits,
            "pickle_seconds": self.pickle_seconds,
            "write_seconds": self.write_seconds,
        }


class AsyncCheckpointWriter:
    """Pickle checkpoint payloads and write them to the store off-thread.

    ``key`` objects are duck-typed: anything carrying ``projid``, ``tstamp``,
    ``filename``, ``ctx_id`` and ``value_name`` attributes works (the
    manager passes its :class:`~repro.core.checkpoint.CheckpointKey`), which
    keeps this module free of a dependency on :mod:`repro.core`.

    Memory is bounded: each queued checkpoint holds a full deep-copied
    state snapshot, so :meth:`submit` blocks once ``max_pending`` snapshots
    are queued or in flight — a store slower than the checkpoint rate slows
    the loop down instead of accumulating model copies without limit.
    """

    def __init__(
        self,
        objects: ObjectRepository,
        name: str = "flor-ckpt-writer",
        max_pending: int = 4,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._objects = objects
        self.name = name
        self.max_pending = max_pending
        self.stats = CheckpointWriteStats()
        self._cond = threading.Condition()
        self._queue: "deque[tuple[Any, Any, Callable[[float, float], None] | None]]" = deque()
        self._inflight = 0
        self._thread: threading.Thread | None = None
        self._stop = False
        self._closed = False
        self._error: BaseException | None = None

    # ----------------------------------------------------------------- submit
    def submit(
        self,
        key: Any,
        state: Any,
        on_written: "Callable[[float, float], None] | None" = None,
    ) -> None:
        """Queue one checkpoint; ``on_written(pickle_s, write_s)`` runs after.

        Blocks while ``max_pending`` snapshots are already queued or in
        flight (bounded memory).  Deferred worker errors surface here too —
        before this submission is queued, so nothing is lost to the raise.
        """
        with self._cond:
            self._raise_pending_locked()
            if self._closed:
                raise CheckpointError("checkpoint writer is closed")
            blocked = False
            while len(self._queue) + self._inflight >= self.max_pending:
                if not blocked:
                    self.stats.backpressure_waits += 1
                    blocked = True
                self._cond.wait(0.1)
                self._raise_pending_locked()
                if self._closed:
                    raise CheckpointError("checkpoint writer is closed")
            self._queue.append((key, state, on_written))
            self.stats.submitted += 1
            self._ensure_worker_locked()
            self._cond.notify_all()

    # ------------------------------------------------------------------ drain
    def drain(self) -> None:
        """Block until every submitted checkpoint is stored (or failed)."""
        with self._cond:
            while self._queue or self._inflight:
                self._cond.wait(0.1)
            self._raise_pending_locked()

    def close(self) -> None:
        with self._cond:
            if self._closed:
                self._raise_pending_locked()
                return
            self._closed = True
            self._stop = True
            thread = self._thread
            self._cond.notify_all()
        if thread is not None and thread.is_alive():
            thread.join()
        with self._cond:
            self._raise_pending_locked()

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._queue) + self._inflight

    # ----------------------------------------------------------------- worker
    def _ensure_worker_locked(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(target=self._run, name=self.name, daemon=True)
            self._thread.start()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if not self._queue and self._stop:
                    return
                key, state, on_written = self._queue.popleft()
                self._inflight = 1
            try:
                self._store(key, state, on_written)
            except BaseException as exc:  # noqa: BLE001 - surfaces on the recording thread
                with self._cond:
                    self.stats.errors += 1
                    if self._error is None:
                        self._error = exc
            finally:
                with self._cond:
                    self._inflight = 0
                    self._cond.notify_all()

    def _store(self, key: Any, state: Any, on_written: "Callable[[float, float], None] | None") -> None:
        started = time.perf_counter()
        try:
            payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(f"cannot serialize checkpoint objects: {exc}") from exc
        pickled = time.perf_counter()
        self._objects.put(
            ObjectRecord(
                projid=key.projid,
                tstamp=key.tstamp,
                filename=key.filename,
                ctx_id=key.ctx_id,
                value_name=key.value_name,
                contents=payload,
            )
        )
        wrote = time.perf_counter()
        self.stats.written += 1
        self.stats.pickle_seconds += pickled - started
        self.stats.write_seconds += wrote - pickled
        if on_written is not None:
            on_written(pickled - started, wrote - pickled)

    # ----------------------------------------------------------------- errors
    def _raise_pending_locked(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error
