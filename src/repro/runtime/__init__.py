"""Record-path runtime: the machinery that takes write I/O off the hot loop.

The paper's pitch is that hindsight logging is cheap enough to leave on
everywhere.  This package is where that promise is enforced mechanically:

* :class:`~repro.runtime.buffer.RecordBuffer` — per-call staging for
  ``flor.log``/``flor.loop``.  A log call appends one tuple; value encoding
  (``encode_value`` / JSON) is deferred to drain time so the training thread
  never pays serialization costs inside the loop.
* :class:`~repro.runtime.flusher.BackgroundFlusher` — a double-buffered
  writer thread that drains staged rows to SQLite in single transactions,
  coalescing every batch queued since its last wakeup.  Memory is bounded:
  submitters block (backpressure) once ``max_pending_rows`` rows are in
  flight.  A ``sync`` mode executes submissions inline on the caller's
  thread, preserving the pre-runtime semantics for replay sandboxes and
  tests.
* :class:`~repro.runtime.checkpoint_writer.AsyncCheckpointWriter` — moves
  checkpoint pickling and object-store writes to a worker thread; the
  recording thread only snapshots registered state.  ``drain()`` is the
  barrier that ``restore()``/``commit()``/``close()`` take before relying
  on stored checkpoints.

Layering: this package depends only on :mod:`repro.relational` and
:mod:`repro.errors`; :mod:`repro.core.session` and
:mod:`repro.service.ingest` build on top of it.
"""

from .buffer import RecordBuffer
from .checkpoint_writer import AsyncCheckpointWriter, CheckpointWriteStats
from .flusher import ASYNC, SYNC, BackgroundFlusher, FlushCallbackError, FlushStats

__all__ = [
    "ASYNC",
    "SYNC",
    "AsyncCheckpointWriter",
    "BackgroundFlusher",
    "CheckpointWriteStats",
    "FlushCallbackError",
    "FlushStats",
    "RecordBuffer",
]
