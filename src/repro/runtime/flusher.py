"""Double-buffered background writer for staged log/loop rows.

One :class:`BackgroundFlusher` serves one :class:`~repro.relational.database.
Database` handle.  Producers call :meth:`submit` with insert-ready row tuples
(from :meth:`~repro.runtime.buffer.RecordBuffer.drain_rows` or
``record.as_row()``); the worker thread wakes, takes *every* batch queued
since its last transaction (the double-buffer swap), and writes them all in
a single SQLite transaction.  Under a flush-heavy workload this coalescing
collapses N small transactions into a handful of large ones, which is where
the T10 speedup comes from — SQLite's per-transaction bookkeeping dwarfs the
marginal cost of an extra ``executemany`` row.

Semantics:

* **sync mode** executes each submission inline on the caller's thread in
  one transaction — byte-for-byte the pre-runtime behaviour, used by replay
  sandboxes, tests, and anyone passing ``flush_mode="sync"``.
* **drain()** is the read-your-writes barrier: it returns only once every
  submitted row is durable (or raises the error that prevented it).
* **backpressure**: submitters block once ``max_pending_rows`` rows are
  queued or in flight, bounding memory under a writer that cannot keep up.
* **errors** raised by the worker (or by ``on_written`` callbacks) are
  captured and re-raised on the *recording* thread at the next ``drain`` or
  ``close`` (never from an async ``submit`` — a submit that raised after
  accepting its batch, or before queueing it, would leave the caller unable
  to tell whether those rows are owed a retry).  The rows of the failed
  transaction are dropped — by then the producer has moved on, so
  requeueing could only retry forever.
* **on_written** callbacks run after their batch's transaction commits (the
  query cache's invalidation hook relies on this ordering).
* **close()** drains outstanding batches, stops the worker, and downgrades
  the flusher to inline-sync so late stragglers (atexit commits) still land.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import ReproError
from ..storage.protocols import RelationalStore
from ..relational.repositories import INSERT_LOG_SQL, INSERT_LOOP_SQL

SYNC = "sync"
ASYNC = "async"


class FlushCallbackError(ReproError):
    """An ``on_written`` callback raised *after* its transaction committed.

    Distinct from a write failure so callers (the ingestion queue) know the
    rows are durable — retrying the write would duplicate them.
    """

#: One queued submission: (log_rows, loop_rows, on_written, row_count).
_Batch = tuple[Sequence[tuple], Sequence[tuple], "Callable[[int], None] | None", int]


@dataclass
class FlushStats:
    """Counters describing a flusher's lifetime behaviour."""

    submitted_batches: int = 0
    submitted_rows: int = 0
    transactions: int = 0
    written_rows: int = 0
    max_coalesced_batches: int = 0
    backpressure_waits: int = 0
    write_retries: int = 0
    dropped_batches: int = 0
    dropped_rows: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted_batches": self.submitted_batches,
            "submitted_rows": self.submitted_rows,
            "transactions": self.transactions,
            "written_rows": self.written_rows,
            "max_coalesced_batches": self.max_coalesced_batches,
            "backpressure_waits": self.backpressure_waits,
            "write_retries": self.write_retries,
            "dropped_batches": self.dropped_batches,
            "dropped_rows": self.dropped_rows,
        }


class BackgroundFlusher:
    """Drain staged rows to SQLite off the recording thread.

    Parameters
    ----------
    db:
        Destination database.  The worker writes through the same handle the
        session reads from, so ``Database.write_version`` staleness probes
        keep working.
    mode:
        ``"async"`` (background worker, lazily started) or ``"sync"``
        (inline execution on the submitting thread).
    max_pending_rows:
        Backpressure bound: submit blocks while this many rows are already
        queued or in flight.
    write_retries / retry_backoff:
        The worker retries a failed transaction this many times (after
        ``retry_backoff`` seconds each) before dropping the batch and
        recording the error — a transient ``SQLITE_BUSY`` from a concurrent
        process should not cost acknowledged rows.  Callback failures are
        never retried (their transaction already committed).
    """

    def __init__(
        self,
        db: RelationalStore,
        *,
        mode: str = ASYNC,
        max_pending_rows: int = 100_000,
        write_retries: int = 2,
        retry_backoff: float = 0.05,
        name: str = "flor-flusher",
    ):
        if mode not in (SYNC, ASYNC):
            raise ValueError(f"unknown flusher mode: {mode!r}")
        if max_pending_rows < 1:
            raise ValueError(f"max_pending_rows must be >= 1, got {max_pending_rows}")
        if write_retries < 0:
            raise ValueError(f"write_retries must be >= 0, got {write_retries}")
        self.db = db
        self.mode = mode
        self.max_pending_rows = max_pending_rows
        self.write_retries = write_retries
        self.retry_backoff = retry_backoff
        self.name = name
        self.stats = FlushStats()
        # Optional observability hook (repro.obs.MetricsRegistry); assigned
        # post-construction by whoever owns a registry (the service's pool).
        # Duck-typed rather than imported so the recording runtime carries no
        # dependency on the observability plane.
        self.metrics = None
        self._cond = threading.Condition()
        self._queue: "deque[_Batch]" = deque()
        self._pending_rows = 0  # queued + in-flight rows (memory bound)
        self._inflight = 0
        self._thread: threading.Thread | None = None
        self._stop = False
        self._closed = False
        self._error: BaseException | None = None

    # ------------------------------------------------------------- inspection
    @property
    def pending_rows(self) -> int:
        """Rows submitted but not yet durable (0 in sync mode)."""
        with self._cond:
            return self._pending_rows

    @property
    def closed(self) -> bool:
        return self._closed

    # ----------------------------------------------------------------- submit
    def submit(
        self,
        log_rows: Sequence[tuple] = (),
        loop_rows: Sequence[tuple] = (),
        on_written: "Callable[[int], None] | None" = None,
    ) -> int:
        """Hand a batch of rows to the writer; returns the row count.

        Async mode returns as soon as the batch is queued (or after blocking
        on backpressure) and never raises deferred worker errors — those
        surface at :meth:`drain`/:meth:`close`, where no batch is in hand to
        be lost or double-submitted.  Sync mode — and any submit after
        :meth:`close` — writes inline, raising this batch's own failure at
        the call site.
        """
        count = len(log_rows) + len(loop_rows)
        if self.mode == SYNC or self._closed:
            self._raise_pending()
            if count:
                self.stats.submitted_batches += 1
                self.stats.submitted_rows += count
                self._write([(log_rows, loop_rows, on_written, count)])
            return count
        with self._cond:
            if not count:
                return 0
            blocked = False
            while self._pending_rows and self._pending_rows + count > self.max_pending_rows:
                if not blocked:
                    self.stats.backpressure_waits += 1
                    blocked = True
                # The timeout is a safety net only; the worker notifies after
                # every transaction (including failed ones, which free rows).
                self._cond.wait(0.1)
            self._queue.append((log_rows, loop_rows, on_written, count))
            self._pending_rows += count
            self.stats.submitted_batches += 1
            self.stats.submitted_rows += count
            self._ensure_worker_locked()
            self._cond.notify_all()
        return count

    # ------------------------------------------------------------------ drain
    def drain(self) -> None:
        """Block until every submitted row is durable; re-raise worker errors."""
        if self.mode == SYNC or self._closed:
            self._raise_pending()
            return
        with self._cond:
            while self._queue or self._inflight:
                self._cond.wait(0.1)
            self._raise_pending_locked()

    def close(self) -> None:
        """Drain, stop the worker, and fall back to inline writes thereafter."""
        with self._cond:
            if self._closed:
                self._raise_pending_locked()
                return
            self._closed = True
            self._stop = True
            thread = self._thread
            self._cond.notify_all()
        if thread is not None and thread.is_alive():
            thread.join()
        self._raise_pending()

    # ----------------------------------------------------------------- worker
    def _ensure_worker_locked(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(target=self._run, name=self.name, daemon=True)
            self._thread.start()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if not self._queue and self._stop:
                    return
                # Double-buffer swap: take everything queued since the last
                # transaction and write it in one go.
                batches = list(self._queue)
                self._queue.clear()
                self._inflight = sum(batch[3] for batch in batches)
            try:
                attempts = 0
                while True:
                    try:
                        self._write(batches)
                        break
                    except FlushCallbackError as exc:
                        # The transaction committed; retrying would duplicate
                        # every row.  Record the callback failure and move on.
                        with self._cond:
                            if self._error is None:
                                self._error = exc
                        break
                    except BaseException as exc:  # noqa: BLE001 - retried, then surfaced
                        attempts += 1
                        if attempts > self.write_retries:
                            with self._cond:
                                if self._error is None:
                                    self._error = exc
                                # Monotone drop counters, bumped before the
                                # rows are released below: the deferred error
                                # is consumed by whichever drain surfaces it
                                # first, but any observer (the service's
                                # /stats endpoint, the chaos harness's seal
                                # protocol) can still tell that acknowledged
                                # rows were lost on this handle.
                                self.stats.dropped_batches += len(batches)
                                self.stats.dropped_rows += sum(
                                    batch[3] for batch in batches
                                )
                            if self.metrics is not None:
                                self.metrics.inc(
                                    "flush.dropped_rows",
                                    sum(batch[3] for batch in batches),
                                )
                            break
                        self.stats.write_retries += 1
                        time.sleep(self.retry_backoff)
            finally:
                with self._cond:
                    self._pending_rows -= self._inflight
                    self._inflight = 0
                    self._cond.notify_all()

    def _write(self, batches: "list[_Batch]") -> None:
        log_rows = [row for batch in batches for row in batch[0]]
        loop_rows = [row for batch in batches for row in batch[1]]
        if log_rows or loop_rows:
            started = time.perf_counter()
            with self.db.transaction() as connection:
                if log_rows:
                    connection.executemany(INSERT_LOG_SQL, log_rows)
                if loop_rows:
                    connection.executemany(INSERT_LOOP_SQL, loop_rows)
            self.stats.transactions += 1
            self.stats.written_rows += len(log_rows) + len(loop_rows)
            self.stats.max_coalesced_batches = max(self.stats.max_coalesced_batches, len(batches))
            metrics = self.metrics
            if metrics is not None:
                metrics.observe("flush.ms", (time.perf_counter() - started) * 1000.0)
                metrics.inc("flush.rows", len(log_rows) + len(loop_rows))
                metrics.inc("flush.transactions")
                metrics.set("flush.pending_rows", self.pending_rows)
        # Every batch's callback runs even if an earlier one raised: a skipped
        # callback is a skipped query-cache invalidation for rows that *did*
        # commit, which would serve stale views indefinitely.  The first
        # error is re-raised afterwards, wrapped so callers can tell "write
        # failed" (retryable) from "post-commit callback failed" (not).
        callback_error: BaseException | None = None
        for _logs, _loops, on_written, count in batches:
            if on_written is not None and count:
                try:
                    on_written(count)
                except BaseException as exc:  # noqa: BLE001 - isolate callbacks
                    if callback_error is None:
                        callback_error = exc
        if callback_error is not None:
            raise FlushCallbackError(
                f"on_written callback failed after commit: {callback_error}"
            ) from callback_error

    # ----------------------------------------------------------------- errors
    def _raise_pending(self) -> None:
        with self._cond:
            self._raise_pending_locked()

    def _raise_pending_locked(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def __enter__(self) -> "BackgroundFlusher":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
