"""Cheap tuple staging for the ``flor.log`` hot path.

The original record path allocated a frozen :class:`LogRecord` dataclass and
ran :func:`~repro.relational.records.encode_value` on every call — two costs
paid inside the user's training loop.  :class:`RecordBuffer` stages raw
tuples instead and defers encoding to drain time (i.e. onto the flush path,
which in async mode runs on the background writer's schedule).

Snapshot semantics: scalars are immutable, so deferring their encoding is
free.  Mutable values (dicts, lists, arbitrary objects) are encoded eagerly
at stage time — a caller that logs a dict and then mutates it must still see
the value *as logged*, exactly as before this optimization.
"""

from __future__ import annotations

from ..relational.records import LogRecord, LoopRecord, encode_value

#: Sentinel ``value_type`` marking a staged log whose value is an immutable
#: scalar still awaiting :func:`encode_value` (applied at drain time).
_DEFERRED = object()

#: Immutable types whose encoding can safely be deferred past the log call.
_SCALARS = (str, int, float, bool, type(None))


class RecordBuffer:
    """Stages log and loop rows as tuples; materializes them on drain.

    Not thread-safe — each :class:`~repro.core.session.Session` owns one
    buffer and stages from its recording thread only.  Thread-safety begins
    at the :class:`~repro.runtime.flusher.BackgroundFlusher` boundary.
    """

    __slots__ = ("_logs", "_loops")

    def __init__(self) -> None:
        self._logs: list[tuple] = []
        self._loops: list[tuple] = []

    # ---------------------------------------------------------------- staging
    def stage_log(
        self,
        projid: str,
        tstamp: str,
        filename: str,
        ctx_id: int,
        value_name: str,
        value: object,
    ) -> None:
        """Stage one ``logs`` row; encoding is deferred for scalar values."""
        if isinstance(value, _SCALARS):
            self._logs.append((projid, tstamp, filename, ctx_id, value_name, value, _DEFERRED))
        else:
            text, value_type = encode_value(value)
            self._logs.append((projid, tstamp, filename, ctx_id, value_name, text, value_type))

    def stage_loop(
        self,
        projid: str,
        tstamp: str,
        filename: str,
        ctx_id: int,
        parent_ctx_id: int | None,
        loop_name: str,
        loop_iteration: int,
        iteration_value: str | None,
    ) -> None:
        """Stage one ``loops`` row (``iteration_value`` already stringified)."""
        self._loops.append(
            (projid, tstamp, filename, ctx_id, parent_ctx_id, loop_name, loop_iteration, iteration_value)
        )

    # ------------------------------------------------------------- inspection
    @property
    def pending(self) -> int:
        return len(self._logs) + len(self._loops)

    @property
    def pending_logs(self) -> int:
        return len(self._logs)

    @property
    def pending_loops(self) -> int:
        return len(self._loops)

    def staged_loop_iterations(self, tstamp: str, filename: str, loop_name: str) -> list[int]:
        """Iteration indices staged for one loop (``flor.iteration`` auto-index)."""
        return [
            row[6]
            for row in self._loops
            if row[1] == tstamp and row[2] == filename and row[5] == loop_name
        ]

    # ----------------------------------------------------------------- drain
    def drain_rows(self) -> tuple[list[tuple], list[tuple]]:
        """Take everything staged as insert-ready row tuples.

        This is where deferred scalar encoding happens — once per record, off
        the logging call, in whatever thread is flushing.
        """
        logs, self._logs = self._logs, []
        loops, self._loops = self._loops, []
        log_rows: list[tuple] = []
        for projid, tstamp, filename, ctx_id, value_name, value, value_type in logs:
            if value_type is _DEFERRED:
                value, value_type = encode_value(value)
            log_rows.append((projid, tstamp, filename, ctx_id, value_name, value, value_type))
        return log_rows, loops

    def drain_records(self) -> tuple[list[LogRecord], list[LoopRecord]]:
        """Take everything staged as record objects (collect-only replay)."""
        log_rows, loop_rows = self.drain_rows()
        return [LogRecord(*row) for row in log_rows], [LoopRecord(*row) for row in loop_rows]

    def restore_rows(self, log_rows: list[tuple], loop_rows: list[tuple]) -> None:
        """Put drained rows back at the front of the buffer.

        Used when an inline write fails after :meth:`drain_rows`: the
        already-encoded rows re-enter the staging area (an encoded row is a
        valid staged row) so a later flush retries them, ahead of anything
        staged meanwhile.
        """
        self._logs = log_rows + self._logs
        self._loops = loop_rows + self._loops
