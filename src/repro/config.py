"""Project configuration and on-disk layout.

FlorDB keeps all of its state under a single ``.flor`` directory at the root
of a project, mirroring the paper's design of one metadata home per project:

* ``flor.db``       — the SQLite database holding the relational data model,
* ``objects/``      — the content-addressed version store,
* ``checkpoints/``  — serialized loop checkpoints,
* ``staging/``      — files tracked for the next :func:`flor.commit`.

A :class:`ProjectConfig` is cheap to construct and carries no open handles;
subsystems open their own resources from the paths it exposes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from .errors import ConfigError

FLOR_DIR_NAME = ".flor"
DB_FILE_NAME = "flor.db"
OBJECTS_DIR_NAME = "objects"
CHECKPOINTS_DIR_NAME = "checkpoints"
STAGING_DIR_NAME = "staging"

_DEFAULT_PROJECT_ENV = "FLOR_PROJECT_DIR"


def _sanitize_project_name(name: str) -> str:
    """Normalize a project name to a filesystem- and SQL-friendly token."""
    cleaned = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name.strip())
    if not cleaned:
        raise ConfigError(f"invalid project name: {name!r}")
    return cleaned


@dataclass(frozen=True)
class ProjectConfig:
    """Resolved locations of a FlorDB project.

    Parameters
    ----------
    root:
        Directory that contains (or will contain) the ``.flor`` home.
    projid:
        Project identifier recorded on every log record.  Defaults to the
        name of the root directory.
    """

    root: Path
    projid: str = field(default="")

    def __post_init__(self) -> None:
        root = Path(self.root).expanduser().resolve()
        object.__setattr__(self, "root", root)
        projid = self.projid or root.name or "project"
        object.__setattr__(self, "projid", _sanitize_project_name(projid))

    @property
    def flor_dir(self) -> Path:
        return self.root / FLOR_DIR_NAME

    @property
    def db_path(self) -> Path:
        return self.flor_dir / DB_FILE_NAME

    @property
    def objects_dir(self) -> Path:
        return self.flor_dir / OBJECTS_DIR_NAME

    @property
    def checkpoints_dir(self) -> Path:
        return self.flor_dir / CHECKPOINTS_DIR_NAME

    @property
    def staging_dir(self) -> Path:
        return self.flor_dir / STAGING_DIR_NAME

    def ensure_layout(self) -> "ProjectConfig":
        """Create the on-disk directory layout if it does not exist."""
        for directory in (
            self.flor_dir,
            self.objects_dir,
            self.checkpoints_dir,
            self.staging_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    @classmethod
    def discover(cls, start: Path | str | None = None, projid: str | None = None) -> "ProjectConfig":
        """Locate the enclosing project, walking up from ``start``.

        If no ``.flor`` directory is found, the starting directory itself is
        treated as a fresh project root.  The ``FLOR_PROJECT_DIR`` environment
        variable overrides discovery entirely, which keeps tests hermetic.
        """
        env_root = os.environ.get(_DEFAULT_PROJECT_ENV)
        if env_root:
            return cls(Path(env_root), projid or "")
        current = Path(start) if start is not None else Path.cwd()
        current = current.expanduser().resolve()
        for candidate in (current, *current.parents):
            if (candidate / FLOR_DIR_NAME).is_dir():
                return cls(candidate, projid or "")
        return cls(current, projid or "")
