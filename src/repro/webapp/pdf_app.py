"""The PDF-parser feedback application (Figure 6 of the paper).

Three routes mirror the paper's Flask app:

* ``/``             — home page listing the corpus documents,
* ``/view-pdf``     — per-document view showing pages with their current
  "page colors" (the demo's visual grouping of pages into logical documents),
* ``/save_colors``  — POST endpoint where a domain expert submits corrected
  colors; the handler records them with ``iteration``/``loop``/``log`` and
  commits, so the human feedback carries the same provenance as pipeline
  output.

``get_colors`` reproduces the figure's fallback logic: read the latest
``first_page`` / ``page_color`` view, and when no expert colors exist yet,
derive colors from the cumulative sum of the first-page flags.
"""

from __future__ import annotations

from typing import Any

from ..core.session import Session
from ..docs.corpus import DocumentCorpus
from ..errors import WebAppError
from ..relational.queries import latest
from .framework import HttpError, JsonResponse, Request, TestClient, WebApp

#: Filename stamped on records produced by the web application.
APP_FILENAME = "app.py"

_INDEX_TEMPLATE = """<html><body>
<h1>PDF Parser</h1>
<ul>
{{ items }}
</ul>
</body></html>"""

_VIEW_TEMPLATE = """<html><body>
<h1>{{ name }}</h1>
<p>{{ pages }} pages</p>
<ol>
{{ rows }}
</ol>
</body></html>"""


class PdfParserApp:
    """Application object bundling the web app, the corpus and the session."""

    def __init__(self, session: Session, corpus: DocumentCorpus):
        self.session = session
        self.corpus = corpus
        self.web = WebApp("pdf_parser")
        self.web.register_template("index.html", _INDEX_TEMPLATE)
        self.web.register_template("view.html", _VIEW_TEMPLATE)
        self._register_routes()

    # ------------------------------------------------------------------ data
    @property
    def pdf_names(self) -> list[str]:
        return self.corpus.document_names()

    def get_colors(self, pdf_name: str) -> list[int]:
        """Current page colors for a document (expert labels or derived).

        Mirrors ``get_colors`` in Figure 6: query the pivoted
        ``first_page``/``page_color`` view restricted to the document, keep
        the latest run, and when any page color is missing derive colors by
        cumulatively numbering first-page flags.
        """
        if pdf_name not in self.pdf_names:
            raise WebAppError(f"unknown document {pdf_name!r}")
        infer = self.session.dataframe("first_page", "page_color")
        if infer.empty or "document_value" not in infer:
            return self._derived_colors(pdf_name)
        infer = infer[infer.document_value == pdf_name]
        if infer.empty:
            return self._derived_colors(pdf_name)
        infer = latest(infer)
        if "page" in infer:
            infer = infer.sort_values("page")
        if "page_color" not in infer or infer.page_color.isna().any():
            if "first_page" in infer and not infer.first_page.isna().all():
                color = infer["first_page"].fillna(0).astype(int).cumsum()
                infer["page_color"] = (color - 1).to_list()
            else:
                return self._derived_colors(pdf_name)
        return [int(c) for c in infer["page_color"].fillna(0).to_list()]

    def _derived_colors(self, pdf_name: str) -> list[int]:
        """Colors derived from document structure when nothing was logged yet."""
        document = self.corpus.get(pdf_name)
        colors: list[int] = []
        color = -1
        for page in document.pages:
            if page.is_first_page or page.heading is not None:
                color += 1
            colors.append(max(color, 0))
        return colors

    def save_colors(self, pdf_name: str, colors: list[int]) -> int:
        """Record expert-corrected colors (the body of ``/save_colors``)."""
        if pdf_name not in self.pdf_names:
            raise WebAppError(f"unknown document {pdf_name!r}")
        with self.session.iteration("document", None, pdf_name, filename=APP_FILENAME):
            for i in self.session.loop("page", range(len(colors)), filename=APP_FILENAME):
                self.session.log("page_color", int(colors[i]), filename=APP_FILENAME)
                self.session.log("page_color__source", "human", filename=APP_FILENAME)
        self.session.commit("expert feedback: page colors")
        return len(colors)

    # ---------------------------------------------------------------- routes
    def _register_routes(self) -> None:
        app = self.web

        @app.route("/")
        def home(_request: Request) -> str:
            items = "\n".join(
                f'<li><a href="/view-pdf?name={name}">{name}</a></li>' for name in self.pdf_names
            )
            return app.render_template("index.html", items=items)

        @app.route("/view-pdf")
        def view_pdf(request: Request) -> str:
            name = request.arg("name")
            if not name or name not in self.pdf_names:
                raise HttpError(404, f"unknown document {name!r}")
            colors = self.get_colors(name)
            document = self.corpus.get(name)
            rows = "\n".join(
                f"<li>page {page.number}: color {color}</li>"
                for page, color in zip(document.pages, colors)
            )
            return app.render_template("view.html", name=name, pages=len(document), rows=rows)

        @app.route("/save_colors", methods=("POST",))
        def save_colors(request: Request):
            payload = request.get_json()
            colors = payload.get("colors", [])
            pdf_name = payload.get("pdf_name") or (self.pdf_names[-1] if self.pdf_names else None)
            if pdf_name is None:
                raise HttpError(400, "no document to save colors for")
            if not isinstance(colors, list) or not all(isinstance(c, (int, float)) for c in colors):
                raise HttpError(400, "colors must be a list of numbers")
            saved = self.save_colors(pdf_name, [int(c) for c in colors])
            return JsonResponse({"message": "Colors saved", "count": saved}), 200

    # ----------------------------------------------------------------- client
    def test_client(self) -> TestClient:
        return TestClient(self.web)


def create_app(session: Session, corpus: DocumentCorpus) -> PdfParserApp:
    """Factory mirroring the usual Flask ``create_app`` convention."""
    return PdfParserApp(session, corpus)
