"""A minimal in-process web framework (Flask substitute).

Provides exactly the surface the feedback application needs:

* :class:`Router` / :class:`WebApp` — decorator-based route registration
  with ``<param>`` path segments and per-method dispatch,
* :class:`Request` / :class:`Response` / :class:`JsonResponse` — typed
  request/response objects with JSON helpers,
* :class:`TestClient` — drives the app without sockets, which keeps the
  examples, tests and benchmarks hermetic and fast.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs, urlsplit

from ..errors import RouteNotFoundError, WebAppError


@dataclass
class Request:
    """An HTTP-like request delivered to a handler."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    path_params: dict[str, str] = field(default_factory=dict)

    def get_json(self) -> Any:
        """Parse the body as JSON (empty body yields an empty dict)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise WebAppError(f"request body is not valid JSON: {exc}") from exc

    def arg(self, name: str, default: str | None = None) -> str | None:
        return self.query.get(name, default)


@dataclass
class Response:
    """An HTTP-like response returned by a handler."""

    body: str = ""
    status: int = 200
    headers: dict[str, str] = field(default_factory=lambda: {"Content-Type": "text/html"})

    def json(self) -> Any:
        return json.loads(self.body)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class JsonResponse(Response):
    """Response whose body is JSON-encoded from a Python object."""

    def __init__(self, payload: Any, status: int = 200, headers: Mapping[str, str] | None = None):
        merged = {"Content-Type": "application/json"}
        if headers:
            merged.update(headers)
        super().__init__(body=json.dumps(payload), status=status, headers=merged)


class HttpError(WebAppError):
    """Raise inside a handler to produce a non-200 response.

    ``detail`` (a JSON-serializable object) is merged into the error body so
    handlers can return structured, machine-readable errors — e.g. a policy
    conflict's ``{"code": "shadowed", "by": ...}`` — and ``headers`` are
    added to the response, which is how ``429`` carries ``Retry-After``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        detail: Any = None,
        headers: Mapping[str, str] | None = None,
    ):
        self.status = status
        self.detail = detail
        self.headers = dict(headers) if headers else {}
        super().__init__(message)


@dataclass(frozen=True)
class _Route:
    method: str
    segments: tuple[str, ...]
    handler: Callable[..., Any]

    def match(self, method: str, path_segments: tuple[str, ...]) -> dict[str, str] | None:
        if method != self.method or len(path_segments) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for pattern, actual in zip(self.segments, path_segments):
            if pattern.startswith("<") and pattern.endswith(">"):
                params[pattern[1:-1]] = actual
            elif pattern != actual:
                return None
        return params


def _split_path(path: str) -> tuple[str, ...]:
    return tuple(segment for segment in path.strip("/").split("/") if segment) or ("",)


class Router:
    """Registers routes and dispatches requests to handlers."""

    def __init__(self) -> None:
        self._routes: list[_Route] = []

    def add(self, path: str, handler: Callable[..., Any], methods: tuple[str, ...] = ("GET",)) -> None:
        for method in methods:
            self._routes.append(_Route(method.upper(), _split_path(path), handler))

    def resolve(self, method: str, path: str) -> tuple[Callable[..., Any], dict[str, str]]:
        segments = _split_path(path)
        for route in self._routes:
            params = route.match(method.upper(), segments)
            if params is not None:
                return route.handler, params
        raise RouteNotFoundError(path, method)

    def routes(self) -> list[tuple[str, str]]:
        return sorted({(r.method, "/" + "/".join(r.segments).strip("/")) for r in self._routes})


class WebApp:
    """A small application object with Flask-like ``route`` decorators."""

    def __init__(self, name: str = "app"):
        self.name = name
        self.router = Router()
        self.templates: dict[str, str] = {}

    # ----------------------------------------------------------- registration
    def route(self, path: str, methods: tuple[str, ...] = ("GET",)):
        def decorator(handler: Callable[..., Any]) -> Callable[..., Any]:
            self.router.add(path, handler, methods)
            return handler

        return decorator

    def register_template(self, name: str, content: str) -> None:
        self.templates[name] = content

    def render_template(self, template_name: str, **context: Any) -> str:
        """Very small ``{{ placeholder }}`` substitution renderer."""
        if template_name not in self.templates:
            raise WebAppError(f"unknown template {template_name!r}")
        rendered = self.templates[template_name]
        for key, value in context.items():
            rendered = rendered.replace("{{ " + key + " }}", str(value))
            rendered = rendered.replace("{{" + key + "}}", str(value))
        return rendered

    # -------------------------------------------------------------- dispatch
    def handle(self, request: Request) -> Response:
        try:
            handler, params = self.router.resolve(request.method, request.path)
        except RouteNotFoundError as exc:
            return JsonResponse({"error": str(exc)}, status=404)
        request.path_params = params
        try:
            result = handler(request, **params) if params else handler(request)
        except HttpError as exc:
            payload: dict[str, Any] = {"error": str(exc)}
            if exc.detail is not None:
                payload["detail"] = exc.detail
            return JsonResponse(payload, status=exc.status, headers=exc.headers)
        return self._normalize(result)

    @staticmethod
    def _normalize(result: Any) -> Response:
        if isinstance(result, Response):
            return result
        if isinstance(result, tuple) and len(result) == 2 and isinstance(result[1], int):
            payload, status = result
            if isinstance(payload, Response):
                payload.status = status
                return payload
            if isinstance(payload, str):
                return Response(body=payload, status=status)
            return JsonResponse(payload, status=status)
        if isinstance(result, str):
            return Response(body=result)
        return JsonResponse(result)


class TestClient:
    """Drive a :class:`WebApp` in-process (no sockets, no threads)."""

    #: Not a pytest test class despite the name (same convention Flask uses).
    __test__ = False

    def __init__(self, app: WebApp):
        self.app = app

    def _request(self, method: str, url: str, json_body: Any = None, body: bytes = b"") -> Response:
        parts = urlsplit(url)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
        request = Request(method=method.upper(), path=parts.path or "/", query=query, body=body)
        return self.app.handle(request)

    def get(self, url: str) -> Response:
        return self._request("GET", url)

    def post(self, url: str, json_body: Any = None, body: bytes = b"") -> Response:
        return self._request("POST", url, json_body=json_body, body=body)

    def put(self, url: str, json_body: Any = None, body: bytes = b"") -> Response:
        return self._request("PUT", url, json_body=json_body, body=body)

    def delete(self, url: str) -> Response:
        return self._request("DELETE", url)
