"""A minimal in-process web framework (Flask substitute).

Provides exactly the surface the feedback application needs:

* :class:`Router` / :class:`WebApp` — decorator-based route registration
  with ``<param>`` path segments and per-method dispatch,
* :class:`Request` / :class:`Response` / :class:`JsonResponse` — typed
  request/response objects with JSON helpers,
* :class:`TestClient` — drives the app without sockets, which keeps the
  examples, tests and benchmarks hermetic and fast.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping
from urllib.parse import parse_qs, urlsplit

from ..errors import RouteNotFoundError, WebAppError


@dataclass
class Request:
    """An HTTP-like request delivered to a handler."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    path_params: dict[str, str] = field(default_factory=dict)

    def get_json(self) -> Any:
        """Parse the body as JSON (empty body yields an empty dict)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise WebAppError(f"request body is not valid JSON: {exc}") from exc

    def arg(self, name: str, default: str | None = None) -> str | None:
        return self.query.get(name, default)


@dataclass
class Response:
    """An HTTP-like response returned by a handler."""

    body: str = ""
    status: int = 200
    headers: dict[str, str] = field(default_factory=lambda: {"Content-Type": "text/html"})

    def json(self) -> Any:
        return json.loads(self.body)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class JsonResponse(Response):
    """Response whose body is JSON-encoded from a Python object."""

    def __init__(self, payload: Any, status: int = 200, headers: Mapping[str, str] | None = None):
        merged = {"Content-Type": "application/json"}
        if headers:
            merged.update(headers)
        super().__init__(body=json.dumps(payload), status=status, headers=merged)


class StreamingResponse(Response):
    """A response whose body is produced incrementally by an iterator.

    ``chunks`` yields ``str`` (or ``bytes``) fragments that the transport
    writes — and flushes — one at a time, which is what lets the stdlib
    server hold a long-lived connection (an SSE tail, a telemetry feed)
    without buffering the whole body.  ``body`` stays empty; the socket
    bridge in :mod:`repro.service.server` sends these with chunked
    transfer encoding, and :class:`TestClient` iterates them in-process.

    The iterator's ``close()`` is the disconnect signal: the transport
    calls it when the client goes away (or the guard in
    :meth:`SSEStream.events` trips), so handlers can release their
    subscription in a ``finally`` block.
    """

    def __init__(
        self,
        chunks: Iterable[str | bytes],
        *,
        status: int = 200,
        headers: Mapping[str, str] | None = None,
        content_type: str = "text/event-stream",
    ):
        merged = {"Content-Type": content_type, "Cache-Control": "no-cache"}
        if headers:
            merged.update(headers)
        super().__init__(body="", status=status, headers=merged)
        self.chunks = iter(chunks)

    def close(self) -> None:
        close = getattr(self.chunks, "close", None)
        if close is not None:
            close()


def sse_event(
    data: Any,
    *,
    event: str | None = None,
    id: int | str | None = None,  # noqa: A002 - SSE field name
) -> str:
    """Format one server-sent event (``event:``/``id:``/``data:`` + blank line).

    ``data`` that is not already a string is JSON-encoded; multi-line data
    is split into one ``data:`` line per line, per the SSE spec.  The
    ``id`` becomes the browser-standard ``Last-Event-ID`` a reconnecting
    client presents — FlorDB tails use the row's ``logs.seq`` (or a job
    event's ``seq``) so a resumed stream starts exactly after the last
    delivered row.
    """
    text = data if isinstance(data, str) else json.dumps(data)
    lines = []
    if event is not None:
        lines.append(f"event: {event}")
    if id is not None:
        lines.append(f"id: {id}")
    for part in (text.split("\n") if text else [""]):
        lines.append(f"data: {part}")
    return "\n".join(lines) + "\n\n"


def sse_comment(text: str = "keepalive") -> str:
    """A ``: comment`` frame — ignored by SSE parsers, keeps the socket warm."""
    return f": {text}\n\n"


@dataclass(frozen=True)
class SSEEvent:
    """One parsed server-sent event."""

    data: str
    event: str | None = None
    id: str | None = None

    def json(self) -> Any:
        return json.loads(self.data)


def iter_sse_events(chunks: Iterable[str | bytes]) -> Iterator[SSEEvent]:
    """Parse a chunk stream into :class:`SSEEvent` frames.

    Chunk boundaries need not align with event boundaries (a socket read
    may split an event, or deliver several at once); comments and blank
    keepalive frames are skipped.
    """
    buffer = ""
    for chunk in chunks:
        if isinstance(chunk, bytes):
            chunk = chunk.decode("utf-8")
        buffer += chunk
        while "\n\n" in buffer:
            frame, buffer = buffer.split("\n\n", 1)
            event = _parse_sse_frame(frame)
            if event is not None:
                yield event


def _parse_sse_frame(frame: str) -> SSEEvent | None:
    event_type: str | None = None
    event_id: str | None = None
    data_lines: list[str] = []
    for line in frame.split("\n"):
        if not line or line.startswith(":"):
            continue
        field_name, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field_name == "event":
            event_type = value
        elif field_name == "id":
            event_id = value
        elif field_name == "data":
            data_lines.append(value)
    if event_type is None and event_id is None and not data_lines:
        return None  # pure comment / empty frame
    return SSEEvent(data="\n".join(data_lines), event=event_type, id=event_id)


class SSEStream:
    """Iterate a streaming response's SSE events with a stop guard.

    Wraps any chunk iterator (an in-process :class:`StreamingResponse`
    body, or a socket read loop) and exposes :meth:`events`, which stops
    after ``max_events`` events or ``timeout`` seconds — whichever comes
    first — then closes the underlying stream.  The timeout is checked
    between chunks, so it is only as granular as the producer's keepalive
    cadence; FlorDB's tail routes take a ``keepalive`` knob precisely so
    tests can bound every wait.
    """

    def __init__(self, chunks: Iterable[str | bytes], *, headers: Mapping[str, str] | None = None, status: int = 200):
        self._chunks = chunks
        self.headers = dict(headers or {})
        self.status = status
        self.closed = False

    def events(
        self, *, max_events: int | None = None, timeout: float | None = None
    ) -> Iterator[SSEEvent]:
        deadline = None if timeout is None else time.monotonic() + timeout
        produced = 0
        try:
            for event in iter_sse_events(self._guarded_chunks(deadline)):
                yield event
                produced += 1
                if max_events is not None and produced >= max_events:
                    return
        finally:
            self.close()

    def collect(
        self, *, max_events: int | None = None, timeout: float | None = None
    ) -> list[SSEEvent]:
        return list(self.events(max_events=max_events, timeout=timeout))

    def _guarded_chunks(self, deadline: float | None) -> Iterator[str | bytes]:
        for chunk in self._chunks:
            yield chunk
            if deadline is not None and time.monotonic() >= deadline:
                return

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        close = getattr(self._chunks, "close", None)
        if close is not None:
            try:
                close()
            except (ValueError, RuntimeError):  # pragma: no cover - generator mid-run
                pass

    def __enter__(self) -> "SSEStream":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


class HttpError(WebAppError):
    """Raise inside a handler to produce a non-200 response.

    ``detail`` (a JSON-serializable object) is merged into the error body so
    handlers can return structured, machine-readable errors — e.g. a policy
    conflict's ``{"code": "shadowed", "by": ...}`` — and ``headers`` are
    added to the response, which is how ``429`` carries ``Retry-After``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        detail: Any = None,
        headers: Mapping[str, str] | None = None,
    ):
        self.status = status
        self.detail = detail
        self.headers = dict(headers) if headers else {}
        super().__init__(message)


@dataclass(frozen=True)
class _Route:
    method: str
    segments: tuple[str, ...]
    handler: Callable[..., Any]

    def match(self, method: str, path_segments: tuple[str, ...]) -> dict[str, str] | None:
        if method != self.method or len(path_segments) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for pattern, actual in zip(self.segments, path_segments):
            if pattern.startswith("<") and pattern.endswith(">"):
                params[pattern[1:-1]] = actual
            elif pattern != actual:
                return None
        return params


def _split_path(path: str) -> tuple[str, ...]:
    return tuple(segment for segment in path.strip("/").split("/") if segment) or ("",)


class Router:
    """Registers routes and dispatches requests to handlers."""

    def __init__(self) -> None:
        self._routes: list[_Route] = []

    def add(self, path: str, handler: Callable[..., Any], methods: tuple[str, ...] = ("GET",)) -> None:
        for method in methods:
            self._routes.append(_Route(method.upper(), _split_path(path), handler))

    def resolve(self, method: str, path: str) -> tuple[Callable[..., Any], dict[str, str]]:
        segments = _split_path(path)
        for route in self._routes:
            params = route.match(method.upper(), segments)
            if params is not None:
                return route.handler, params
        raise RouteNotFoundError(path, method)

    def routes(self) -> list[tuple[str, str]]:
        return sorted({(r.method, "/" + "/".join(r.segments).strip("/")) for r in self._routes})


class WebApp:
    """A small application object with Flask-like ``route`` decorators."""

    def __init__(self, name: str = "app"):
        self.name = name
        self.router = Router()
        self.templates: dict[str, str] = {}

    # ----------------------------------------------------------- registration
    def route(self, path: str, methods: tuple[str, ...] = ("GET",)):
        def decorator(handler: Callable[..., Any]) -> Callable[..., Any]:
            self.router.add(path, handler, methods)
            return handler

        return decorator

    def register_template(self, name: str, content: str) -> None:
        self.templates[name] = content

    def render_template(self, template_name: str, **context: Any) -> str:
        """Very small ``{{ placeholder }}`` substitution renderer."""
        if template_name not in self.templates:
            raise WebAppError(f"unknown template {template_name!r}")
        rendered = self.templates[template_name]
        for key, value in context.items():
            rendered = rendered.replace("{{ " + key + " }}", str(value))
            rendered = rendered.replace("{{" + key + "}}", str(value))
        return rendered

    # -------------------------------------------------------------- dispatch
    def handle(self, request: Request) -> Response:
        try:
            handler, params = self.router.resolve(request.method, request.path)
        except RouteNotFoundError as exc:
            return JsonResponse({"error": str(exc)}, status=404)
        request.path_params = params
        try:
            result = handler(request, **params) if params else handler(request)
        except HttpError as exc:
            payload: dict[str, Any] = {"error": str(exc)}
            if exc.detail is not None:
                payload["detail"] = exc.detail
            return JsonResponse(payload, status=exc.status, headers=exc.headers)
        return self._normalize(result)

    @staticmethod
    def _normalize(result: Any) -> Response:
        if isinstance(result, Response):
            return result
        if isinstance(result, tuple) and len(result) == 2 and isinstance(result[1], int):
            payload, status = result
            if isinstance(payload, Response):
                payload.status = status
                return payload
            if isinstance(payload, str):
                return Response(body=payload, status=status)
            return JsonResponse(payload, status=status)
        if isinstance(result, str):
            return Response(body=result)
        return JsonResponse(result)


class _StreamingBody:
    """Adapt a :class:`StreamingResponse` to the chunk-iterable-with-close
    shape :class:`SSEStream` consumes, delegating ``close`` to the full
    response (mirroring what the socket server does in its ``finally``)."""

    def __init__(self, response: StreamingResponse):
        self._response = response

    def __iter__(self) -> Iterator[str | bytes]:
        return self._response.chunks

    def close(self) -> None:
        self._response.close()


class TestClient:
    """Drive a :class:`WebApp` in-process (no sockets, no threads)."""

    #: Not a pytest test class despite the name (same convention Flask uses).
    __test__ = False

    def __init__(self, app: WebApp):
        self.app = app

    def _request(
        self,
        method: str,
        url: str,
        json_body: Any = None,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        parts = urlsplit(url)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
        request = Request(
            method=method.upper(),
            path=parts.path or "/",
            query=query,
            headers=dict(headers or {}),
            body=body,
        )
        return self.app.handle(request)

    def get(self, url: str, headers: Mapping[str, str] | None = None) -> Response:
        return self._request("GET", url, headers=headers)

    def sse(self, url: str, headers: Mapping[str, str] | None = None) -> SSEStream:
        """GET a streaming route and wrap its body for guarded iteration.

        The returned :class:`SSEStream` iterates events in-process (no
        sockets, no threads) with ``max_events``/``timeout`` stop guards,
        which is how tail routes are unit-tested.  Non-streaming responses
        (an error JSON body, say) still wrap cleanly — their whole body is
        treated as one chunk — so callers can inspect ``status``.
        """
        response = self._request("GET", url, headers=headers)
        if isinstance(response, StreamingResponse):
            # Wrap the whole response, not just its chunk iterator: closing
            # must run the response's close() — which handlers may extend
            # with cleanup beyond the generator (releasing a tail broker
            # subscription) that a never-started generator's skipped
            # ``finally`` would otherwise leak.
            return SSEStream(
                _StreamingBody(response), headers=response.headers, status=response.status
            )
        return SSEStream(iter([response.body]), headers=response.headers, status=response.status)

    def post(self, url: str, json_body: Any = None, body: bytes = b"") -> Response:
        return self._request("POST", url, json_body=json_body, body=body)

    def put(self, url: str, json_body: Any = None, body: bytes = b"") -> Response:
        return self._request("PUT", url, json_body=json_body, body=body)

    def delete(self, url: str) -> Response:
        return self._request("DELETE", url)
