"""Minimal web framework + the PDF-parser feedback application (§4.4).

Flask is deliberately not a dependency: :mod:`framework` implements the
little that the demo needs — route registration with path parameters, JSON
request/response objects and an in-process test client — and
:mod:`pdf_app` builds the paper's three routes (``/``, ``/view-pdf``,
``/save_colors``) on top of it, wiring expert feedback into FlorDB through
``flor.iteration`` / ``flor.loop`` / ``flor.log`` / ``flor.commit`` exactly
as in Figure 6.
"""

from .framework import HttpError, JsonResponse, Request, Response, Router, TestClient, WebApp
from .pdf_app import PdfParserApp, create_app

__all__ = [
    "WebApp",
    "Router",
    "Request",
    "Response",
    "JsonResponse",
    "HttpError",
    "TestClient",
    "PdfParserApp",
    "create_app",
]
