"""The storage seam: what a backend must provide, and nothing else.

Every layer of FlorDB above this module — repositories, the query engine,
the runtime flusher, the service pool, the job store — talks to storage
through two small structural interfaces:

* :class:`RelationalStore` — the transactional row store holding the
  physical tables of the paper's Figure 1 (``logs``, ``loops``, ``ts2vid``,
  ``obj_store``, ``build_deps``, ``jobs``/``job_events``).  The reference
  implementation is :class:`repro.relational.database.Database` (one SQLite
  connection); :class:`repro.storage.memory.MemoryRelationalStore` backs
  tests and benchmarks with zero disk I/O, and
  :class:`repro.storage.replica.ReplicatedDatabase` adds snapshot-shipped
  read replicas behind the same interface.
* :class:`BlobStore` — the content-addressed blob store holding version
  snapshots.  The reference implementation is
  :class:`repro.versioning.objects.ObjectStore` (git-style fan-out
  directory); :class:`repro.storage.memory.MemoryBlobStore` is the
  dict-backed test double and :class:`repro.storage.tiering.TieredBlobStore`
  layers epoch-based cold archives with an LRU cache on top of any hot
  store.

The protocols are :func:`typing.runtime_checkable` so the conformance suite
(``tests/storage/test_store_contract.py``) can assert that every backend
actually satisfies the seam, and ``tools/check_storage_seam.py`` keeps
``sqlite3`` imports from leaking past ``repro.storage``/``repro.relational``.

Contract highlights every backend must honour (proved by the conformance
suite):

* ``transaction()`` is atomic — raising inside the block rolls back every
  statement issued through the yielded connection;
* ``write_version`` is monotonic — it never decreases, advances on every
  committed write, and never advances on reads;
* ``put`` is idempotent — storing identical bytes twice returns the same
  object id and stores one copy.
"""

from __future__ import annotations

from typing import Any, ContextManager, Iterator, Protocol, Sequence, runtime_checkable


@runtime_checkable
class RelationalStore(Protocol):
    """Transactional row storage for the FlorDB schema.

    Structural: any object with these members is a RelationalStore —
    backends never subclass this.
    """

    @property
    def write_version(self) -> int:
        """Monotonic count of committed writes through this store.

        Reads never advance it; every committed INSERT/UPDATE/DELETE does.
        The query engine's pivot-view cache uses it as a zero-cost
        staleness probe.
        """
        ...

    def transaction(self) -> ContextManager[Any]:
        """Run a block atomically; roll back on any exception.

        Yields a DB-API-shaped connection (``execute``/``executemany``).
        """
        ...

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:
        """Execute one statement and commit; returns a cursor-like object."""
        ...

    def executemany(self, sql: str, rows: Sequence[Sequence[Any]]) -> None:
        """Execute one statement per row inside a single commit."""
        ...

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        """Run a read and return every row."""
        ...

    def query_one(self, sql: str, params: Sequence[Any] = ()) -> tuple | None:
        """Run a read and return the first row, or None."""
        ...

    def count(self, table: str) -> int:
        """Row count of one schema table."""
        ...

    def close(self) -> None:
        """Release the backend's resources; the store is unusable after."""
        ...


@runtime_checkable
class BlobStore(Protocol):
    """Write-once, content-addressed blob storage.

    Object ids are SHA-256 hex digests of the contents, so ``put`` is
    idempotent by construction and ``get`` can verify integrity.
    """

    def put(self, data: bytes) -> str:
        """Store ``data`` and return its object id (idempotent)."""
        ...

    def put_text(self, text: str) -> str:
        """Store UTF-8 encoded text."""
        ...

    def get(self, object_id: str) -> bytes:
        """Return the stored bytes; raise ObjectNotFoundError when absent."""
        ...

    def get_text(self, object_id: str) -> str:
        """Return the stored bytes decoded as UTF-8."""
        ...

    def exists(self, object_id: str) -> bool:
        """Whether ``object_id`` is retrievable (malformed ids are False)."""
        ...

    def delete(self, object_id: str) -> bool:
        """Forget one object; True if it was present."""
        ...

    def ids(self) -> Iterator[str]:
        """Iterate over every retrievable object id."""
        ...

    def __contains__(self, object_id: str) -> bool:
        ...

    def __len__(self) -> int:
        ...
