"""In-memory storage backends: zero disk I/O behind the same seam.

Tests and benchmarks that only exercise record/query logic pay a real cost
for touching the filesystem — directory layout, WAL journals, fsync-ish
page writes.  These backends satisfy the :mod:`repro.storage.protocols`
contracts entirely in memory:

* :class:`MemoryRelationalStore` — the full FlorDB schema on an SQLite
  ``:memory:`` connection (so every consumer's SQL keeps working verbatim,
  including the query engine's pushdown scans), but no file, no WAL, no
  directory.
* :class:`MemoryBlobStore` — a dict of ``object_id -> bytes`` with the same
  content-addressing and idempotency rules as the directory-backed
  :class:`~repro.versioning.objects.ObjectStore`.

``DatabasePool(backend="memory")`` builds whole service shards on these —
the T12 benchmark drives ingest/read cycles through them to isolate
storage-seam costs from disk costs.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ObjectNotFoundError
from ..relational.database import Database
from ..versioning.objects import hash_bytes


class MemoryRelationalStore(Database):
    """The FlorDB relational schema on an ephemeral ``:memory:`` database.

    A thin subclass rather than a re-implementation: the protocol contract
    (atomic transactions, monotonic ``write_version``) is inherited from the
    SQLite implementation, while the ``:memory:`` path guarantees the
    backend never touches disk.  Closing discards all data.
    """

    def __init__(self) -> None:
        super().__init__(":memory:")


class MemoryBlobStore:
    """Content-addressed blob storage in a plain dict.

    Mirrors :class:`~repro.versioning.objects.ObjectStore` semantics —
    SHA-256 ids, idempotent ``put``, ``ObjectNotFoundError`` on missing or
    malformed ids — without a filesystem.  Not thread-safe for concurrent
    mutation of the *same* id beyond what dict assignment gives (which is
    enough: ``put`` is idempotent, so racing writers store equal bytes).
    """

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def _validate(self, object_id: str) -> str:
        if len(object_id) < 3 or not all(c in "0123456789abcdef" for c in object_id):
            raise ObjectNotFoundError(f"malformed object id: {object_id!r}")
        return object_id

    def put(self, data: bytes) -> str:
        object_id = hash_bytes(data)
        if object_id not in self._blobs:
            self._blobs[object_id] = bytes(data)
        return object_id

    def put_text(self, text: str) -> str:
        return self.put(text.encode("utf-8"))

    def get(self, object_id: str) -> bytes:
        self._validate(object_id)
        try:
            return self._blobs[object_id]
        except KeyError:
            raise ObjectNotFoundError(f"object {object_id} not found in memory store") from None

    def get_text(self, object_id: str) -> str:
        return self.get(object_id).decode("utf-8")

    def exists(self, object_id: str) -> bool:
        try:
            return self._validate(object_id) in self._blobs
        except ObjectNotFoundError:
            return False

    def delete(self, object_id: str) -> bool:
        return self._blobs.pop(object_id, None) is not None

    def __contains__(self, object_id: str) -> bool:
        return self.exists(object_id)

    def ids(self) -> Iterator[str]:
        yield from sorted(self._blobs)

    def __len__(self) -> int:
        return len(self._blobs)
