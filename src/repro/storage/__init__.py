"""Pluggable storage backends behind the :mod:`repro.storage.protocols` seam.

Import the protocols eagerly (they are pure typing, no dependencies) and the
backends lazily: the backend modules import from :mod:`repro.relational` and
:mod:`repro.versioning`, which themselves may type-reference this package —
eager imports here would create a cycle.
"""

from __future__ import annotations

from .protocols import BlobStore, RelationalStore

__all__ = [
    "BlobStore",
    "RelationalStore",
    "FaultyBlobStore",
    "FaultyRelationalStore",
    "MemoryBlobStore",
    "MemoryRelationalStore",
    "ReplicatedDatabase",
    "Replica",
    "ReplicaStats",
    "TieredBlobStore",
    "select_cold_ids",
]

_LAZY = {
    "FaultyBlobStore": ".faults",
    "FaultyRelationalStore": ".faults",
    "MemoryBlobStore": ".memory",
    "MemoryRelationalStore": ".memory",
    "ReplicatedDatabase": ".replica",
    "Replica": ".replica",
    "ReplicaStats": ".replica",
    "TieredBlobStore": ".tiering",
    "select_cold_ids": ".tiering",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
