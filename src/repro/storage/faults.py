"""Fault-injecting wrappers over the storage protocols.

These wrappers thread a :class:`repro.testing.chaos.FaultPlan` through the
:class:`~repro.storage.protocols.RelationalStore` and
:class:`~repro.storage.protocols.BlobStore` seams: every call site first
asks the plan whether to stall (slow I/O) or fail (``database is locked``),
then delegates to the wrapped backend.  Because they satisfy the same
runtime-checkable protocols, a fault-wrapped store drops into any layer
that accepts the seam — a :class:`~repro.core.session.Session` via ``db=``,
a :class:`~repro.versioning.repository.Repository` via ``store=``, a
service shard via ``DatabasePool(shard_factory=...)``.

This module lives under ``repro.storage`` (not ``repro.testing``) because
it must import :mod:`sqlite3` to raise the backend's native contention
error, and ``tools/check_storage_seam.py`` confines that import to
``repro.storage``/``repro.relational``.  Error surfacing mirrors the real
backend: faults raised from ``transaction()`` are raw
``sqlite3.OperationalError`` (what a genuinely locked database raises
through :meth:`repro.relational.database.Database.transaction`), while
faults from ``execute``/``executemany`` arrive wrapped in
:class:`~repro.errors.DatabaseError` exactly as ``Database`` wraps them.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from ..errors import DatabaseError

__all__ = ["FaultyBlobStore", "FaultyRelationalStore"]


def _locked_error() -> sqlite3.OperationalError:
    return sqlite3.OperationalError("database is locked")


class FaultyRelationalStore:
    """A :class:`RelationalStore` that injects contention and stalls.

    Write entry points (``transaction``, ``execute``, ``executemany``) may
    raise ``database is locked`` *before* touching the backend, so an
    injected failure never leaves a partial transaction behind — it models
    the moment SQLite refuses the lock, which is exactly what the
    background flusher's retry loop exists to absorb.  Reads only stall.
    """

    def __init__(self, inner, plan, *, site: str = "relational"):
        self.inner = inner
        self.plan = plan
        self.site = site

    # -------------------------------------------------------------- faulting
    def _stall(self, op: str) -> None:
        self.plan.maybe_sleep(f"{self.site}.{op}")

    def _write_fault(self, op: str, *, wrapped: bool) -> None:
        self._stall(op)
        if self.plan.decide("locked", f"{self.site}.{op}"):
            error = _locked_error()
            if wrapped:
                raise DatabaseError(f"SQL error: {error}") from error
            raise error

    # -------------------------------------------------------------- protocol
    @property
    def write_version(self) -> int:
        return self.inner.write_version

    @contextmanager
    def transaction(self) -> Iterator[Any]:
        self._write_fault("transaction", wrapped=False)
        with self.inner.transaction() as connection:
            yield connection

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:
        self._write_fault("execute", wrapped=True)
        return self.inner.execute(sql, params)

    def executemany(self, sql: str, rows: Sequence[Sequence[Any]]) -> None:
        self._write_fault("executemany", wrapped=True)
        self.inner.executemany(sql, rows)

    def query(self, sql: str, params: Sequence[Any] = ()) -> list:
        self._stall("query")
        return self.inner.query(sql, params)

    def query_one(self, sql: str, params: Sequence[Any] = ()):
        self._stall("query")
        return self.inner.query_one(sql, params)

    def count(self, table: str) -> int:
        return self.inner.count(table)

    def close(self) -> None:
        self.inner.close()

    def __getattr__(self, name: str):
        # Backend extras beyond the protocol (e.g. snapshot_into) pass
        # through un-faulted; only the seam's members inject.
        return getattr(self.inner, name)


class FaultyBlobStore:
    """A :class:`BlobStore` whose ``put``/``get`` paths may stall.

    Blob storage has no lock to contend on — its failure mode under load
    is latency — so the wrapper injects slow I/O only.  Extras beyond the
    protocol (``archive``, ``verify``, ``stats`` on the tiered store) pass
    through via ``__getattr__`` so a wrapped store still composes with
    ``repro gc --tier-cold``.
    """

    def __init__(self, inner, plan, *, site: str = "blob"):
        self.inner = inner
        self.plan = plan
        self.site = site

    def put(self, data: bytes) -> str:
        self.plan.maybe_sleep(f"{self.site}.put")
        return self.inner.put(data)

    def put_text(self, text: str) -> str:
        self.plan.maybe_sleep(f"{self.site}.put")
        return self.inner.put_text(text)

    def get(self, object_id: str) -> bytes:
        self.plan.maybe_sleep(f"{self.site}.get")
        return self.inner.get(object_id)

    def get_text(self, object_id: str) -> str:
        self.plan.maybe_sleep(f"{self.site}.get")
        return self.inner.get_text(object_id)

    def exists(self, object_id: str) -> bool:
        return self.inner.exists(object_id)

    def delete(self, object_id: str) -> bool:
        return self.inner.delete(object_id)

    def ids(self):
        return self.inner.ids()

    def __contains__(self, object_id: str) -> bool:
        return object_id in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
