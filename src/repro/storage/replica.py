"""Snapshot-shipped read replicas behind the :class:`RelationalStore` seam.

SQLite gives a shard exactly one writer, and FlorDB's :class:`~repro.
relational.database.Database` serializes *everything* — reads included —
behind one connection lock.  Under concurrent ingest, readers therefore
queue behind write transactions even though they never conflict logically.
:class:`ReplicatedDatabase` breaks that coupling the way a production
deployment would: the primary keeps sole ownership of writes, and reads are
routed round-robin across N **replica handles**, each a full in-memory copy
of the shard refreshed by shipping a database snapshot (SQLite's backup
API — the page-level equivalent of shipping the WAL) from the writer.

Freshness is *bounded staleness*, not read-your-writes:

* every snapshot records the replica's ``logs.seq`` **watermark** (and the
  primary's ``write_version`` at copy time), which callers expose in
  responses so clients know exactly how fresh their read was;
* a read re-ships a snapshot only when the primary has advanced **and** the
  replica's snapshot is older than ``max_staleness`` seconds — the
  watermark cadence.  Between refreshes, reads cost zero primary-lock time.
* ``max_staleness=0`` degenerates to read-your-writes (every read that
  finds the primary advanced re-syncs first); the conformance suite runs
  the backend in this mode to prove the protocol semantics hold.

Writes (``execute``/``executemany``/``transaction``) always go straight to
the primary — single-owner per shard, exactly as before.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from ..relational.database import Database


@dataclass
class ReplicaStats:
    """Counters describing a replicated store's lifetime behaviour."""

    syncs: int = 0
    replica_reads: int = 0
    primary_writes: int = 0
    skipped_syncs: int = 0  # reads served within the staleness bound

    def as_dict(self) -> dict[str, int]:
        return {
            "syncs": self.syncs,
            "replica_reads": self.replica_reads,
            "primary_writes": self.primary_writes,
            "skipped_syncs": self.skipped_syncs,
        }


class Replica:
    """One read handle: an in-memory database refreshed from the primary."""

    def __init__(self, index: int):
        self.index = index
        self.db = Database(":memory:")
        self.lock = threading.Lock()
        #: Primary ``write_version`` the last snapshot corresponds to.
        self.synced_version = -1
        #: Monotonic time of the last snapshot.
        self.synced_at = float("-inf")
        #: ``MAX(logs.seq)`` visible on this replica (the staleness bound
        #: callers surface to clients).
        self.watermark = 0

    def close(self) -> None:
        self.db.close()


class ReplicatedDatabase:
    """A :class:`RelationalStore` that scales reads across snapshot replicas.

    Parameters
    ----------
    primary:
        The single-owner writer handle.  Not closed by :meth:`close` —
        its owner (the session) manages its lifecycle.
    replicas:
        Number of read handles.
    max_staleness:
        Seconds a replica snapshot may lag the primary before a read
        forces a refresh.  ``0`` means every read is fresh.
    clock:
        Monotonic time source, injectable for deterministic staleness
        tests.
    on_sync:
        Called with the replica index after each snapshot ship — the
        service pool hooks per-replica query-cache invalidation here, so
        materialized pivot views notice that the page-level copy (which
        bypasses SQL and therefore ``write_version``) changed the data
        underneath them.
    """

    def __init__(
        self,
        primary: Database,
        *,
        replicas: int = 2,
        max_staleness: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
        on_sync: "Callable[[int], None] | None" = None,
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if max_staleness < 0:
            raise ValueError(f"max_staleness must be >= 0, got {max_staleness}")
        self.primary = primary
        self.max_staleness = max_staleness
        self.clock = clock
        self.on_sync = on_sync
        self.stats = ReplicaStats()
        self.replicas = [Replica(i) for i in range(replicas)]
        self._round_robin = 0
        self._rr_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------- writes
    @property
    def path(self) -> str:
        return self.primary.path

    @property
    def write_version(self) -> int:
        return self.primary.write_version

    def transaction(self):
        self.stats.primary_writes += 1
        return self.primary.transaction()

    def execute(self, sql: str, params: Sequence[Any] = ()):
        self.stats.primary_writes += 1
        return self.primary.execute(sql, params)

    def executemany(self, sql: str, rows: Sequence[Sequence[Any]]) -> None:
        self.stats.primary_writes += 1
        self.primary.executemany(sql, rows)

    # -------------------------------------------------------------- reads
    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        with self.checkout_replica() as replica:
            return replica.db.query(sql, params)

    def query_one(self, sql: str, params: Sequence[Any] = ()) -> tuple | None:
        with self.checkout_replica() as replica:
            return replica.db.query_one(sql, params)

    def count(self, table: str) -> int:
        with self.checkout_replica() as replica:
            return replica.db.count(table)

    @contextmanager
    def checkout_replica(self) -> Iterator[Replica]:
        """Yield a replica no staler than the bound, round-robin.

        Several readers may hold the same replica concurrently — its
        :class:`~repro.relational.database.Database` lock serializes the
        actual SQLite calls; the replica's own lock only serializes
        snapshot refreshes.
        """
        with self._rr_lock:
            replica = self.replicas[self._round_robin % len(self.replicas)]
            self._round_robin += 1
        self._ensure_fresh(replica)
        self.stats.replica_reads += 1
        yield replica

    def _ensure_fresh(self, replica: Replica) -> None:
        version = self.primary.write_version
        if replica.synced_version == version:
            return
        if (
            replica.synced_version >= 0
            and self.clock() - replica.synced_at < self.max_staleness
        ):
            self.stats.skipped_syncs += 1
            return
        self._sync(replica)

    def _sync(self, replica: Replica) -> None:
        with replica.lock:
            version = self.primary.write_version
            if replica.synced_version == version:
                return
            # snapshot_into holds the primary's lock for the duration of
            # the page copy, so the snapshot and the version it returns are
            # mutually consistent (no write can land in between).
            replica.synced_version = self.primary.snapshot_into(replica.db)
            row = replica.db.query_one("SELECT COALESCE(MAX(seq), 0) FROM logs")
            replica.watermark = int(row[0]) if row else 0
            replica.synced_at = self.clock()
            self.stats.syncs += 1
        if self.on_sync is not None:
            self.on_sync(replica.index)

    def refresh(self) -> None:
        """Ship a fresh snapshot to every replica now (quiesce barrier)."""
        for replica in self.replicas:
            self._sync(replica)

    def min_watermark(self) -> int:
        """The oldest ``logs.seq`` any replica would currently serve."""
        return min(replica.watermark for replica in self.replicas)

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the replica handles.  The primary stays open (not owned)."""
        if self._closed:
            return
        self._closed = True
        for replica in self.replicas:
            replica.close()

    def __enter__(self) -> "ReplicatedDatabase":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
