"""Cold blob tiering: epoch-based archives with a local LRU cache.

A long-lived FlorDB project accumulates version snapshots for every commit,
but the working set is sharply recency-skewed: checkouts and hindsight
queries overwhelmingly touch the last few epochs, while older blobs exist
only for occasional backfill replay.  :class:`TieredBlobStore` moves those
cold blobs off the hot content-addressed directory:

* ``archive(ids)`` packs the named blobs into an **append-only pack file**
  (``archive/pack-NNNN.bin``) and records ``id -> (pack, offset, length)``
  in a JSON index (``archive/index.json``), then deletes them from the hot
  store.  Packs are never rewritten — a new archive pass appends a new pack.
* Reads check hot first, then the archive; archive hits go through a
  bounded **LRU byte cache**, so a warm cold read costs one dict hit
  instead of a seek into the pack.
* ``put`` always lands in the hot store.  If the bytes already live in the
  archive the put is a no-op id return — content addressing makes the two
  tiers referentially identical.

Epoch selection is policy, not mechanism: :func:`select_cold_ids` maps a
commit journal and a ``keep_epochs`` threshold to the id set whose *only*
references are older commits.  ``repro gc --tier-cold`` wires the two
together.

Integrity: every id is a SHA-256 of its contents, so unpacked bytes are
re-hashable; :meth:`TieredBlobStore.verify` recomputes digests across the
archive index.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from ..errors import ObjectNotFoundError
from ..versioning.objects import hash_bytes

INDEX_FILENAME = "index.json"
DEFAULT_CACHE_BYTES = 8 * 1024 * 1024


class _LRUBytesCache:
    """A byte-budgeted LRU of ``object_id -> bytes``."""

    def __init__(self, max_bytes: int):
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._size = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, object_id: str) -> bytes | None:
        with self._lock:
            data = self._entries.get(object_id)
            if data is None:
                self.misses += 1
                return None
            self._entries.move_to_end(object_id)
            self.hits += 1
            return data

    def add(self, object_id: str, data: bytes) -> None:
        if len(data) > self.max_bytes:
            return
        with self._lock:
            if object_id in self._entries:
                self._entries.move_to_end(object_id)
                return
            self._entries[object_id] = data
            self._size += len(data)
            while self._size > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._size -= len(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._size = 0

    def __len__(self) -> int:
        return len(self._entries)


class TieredBlobStore:
    """A :class:`BlobStore` layering cold pack-file archives over a hot store.

    Parameters
    ----------
    hot:
        Any object satisfying the :class:`~repro.storage.protocols.BlobStore`
        protocol (duck-typed; typically the directory-backed
        :class:`~repro.versioning.objects.ObjectStore`).
    archive_dir:
        Directory holding pack files and the JSON index.  Created lazily on
        the first :meth:`archive` call, so a project that never tiers pays
        nothing.
    cache_bytes:
        Budget for the warm LRU cache fronting archive reads.
    """

    def __init__(
        self,
        hot: Any,
        archive_dir: Path | str,
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ):
        self.hot = hot
        self.archive_dir = Path(archive_dir)
        self.cache = _LRUBytesCache(cache_bytes)
        self._lock = threading.Lock()
        self._index: dict[str, tuple[str, int, int]] = {}
        self._load_index()

    # --------------------------------------------------------------- index
    @property
    def _index_path(self) -> Path:
        return self.archive_dir / INDEX_FILENAME

    def _load_index(self) -> None:
        if not self._index_path.exists():
            return
        raw = json.loads(self._index_path.read_text("utf-8"))
        self._index = {
            object_id: (entry["pack"], int(entry["offset"]), int(entry["length"]))
            for object_id, entry in raw.items()
        }

    def _save_index(self) -> None:
        payload = {
            object_id: {"pack": pack, "offset": offset, "length": length}
            for object_id, (pack, offset, length) in sorted(self._index.items())
        }
        tmp = self._index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2), "utf-8")
        tmp.replace(self._index_path)

    def _next_pack_name(self) -> str:
        existing = sorted(self.archive_dir.glob("pack-*.bin"))
        if not existing:
            return "pack-0000.bin"
        last = int(existing[-1].stem.split("-")[1])
        return f"pack-{last + 1:04d}.bin"

    # ------------------------------------------------------------- archive
    def archive(self, ids: Iterable[str]) -> int:
        """Pack ``ids`` into a new append-only archive; returns count moved.

        Ids already archived or absent from the hot store are skipped, so
        the operation is idempotent.  The pack file is fully written and the
        index durably replaced *before* hot copies are deleted — a crash in
        between leaves the blob readable from both tiers, never neither.
        """
        with self._lock:
            to_move: list[str] = []
            for object_id in ids:
                if object_id in self._index or not self.hot.exists(object_id):
                    continue
                to_move.append(object_id)
            if not to_move:
                return 0
            self.archive_dir.mkdir(parents=True, exist_ok=True)
            pack_name = self._next_pack_name()
            pack_path = self.archive_dir / pack_name
            offset = 0
            entries: dict[str, tuple[str, int, int]] = {}
            with open(pack_path, "wb") as pack:
                for object_id in to_move:
                    data = self.hot.get(object_id)
                    pack.write(data)
                    entries[object_id] = (pack_name, offset, len(data))
                    offset += len(data)
            self._index.update(entries)
            self._save_index()
            for object_id in to_move:
                self.hot.delete(object_id)
            return len(to_move)

    def _read_archived(self, object_id: str) -> bytes:
        cached = self.cache.get(object_id)
        if cached is not None:
            return cached
        with self._lock:
            entry = self._index.get(object_id)
        if entry is None:
            raise ObjectNotFoundError(
                f"object {object_id} not found in archive {self.archive_dir}"
            )
        pack_name, offset, length = entry
        with open(self.archive_dir / pack_name, "rb") as pack:
            pack.seek(offset)
            data = pack.read(length)
        if len(data) != length:
            raise ObjectNotFoundError(
                f"archived object {object_id} truncated in {pack_name}"
            )
        self.cache.add(object_id, data)
        return data

    def verify(self) -> list[str]:
        """Re-hash every archived blob; return the ids that fail."""
        bad = []
        with self._lock:
            ids = list(self._index)
        for object_id in ids:
            try:
                data = self._read_archived(object_id)
            except ObjectNotFoundError:
                bad.append(object_id)
                continue
            if hash_bytes(data) != object_id:
                bad.append(object_id)
        return bad

    def stats(self) -> dict[str, int]:
        return {
            "archived": len(self._index),
            "cache_entries": len(self.cache),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
        }

    # ---------------------------------------------------------- BlobStore
    def put(self, data: bytes) -> str:
        object_id = hash_bytes(data)
        with self._lock:
            if object_id in self._index:
                return object_id
        return self.hot.put(data)

    def put_text(self, text: str) -> str:
        return self.put(text.encode("utf-8"))

    def get(self, object_id: str) -> bytes:
        if self.hot.exists(object_id):
            try:
                return self.hot.get(object_id)
            except ObjectNotFoundError:
                # A concurrent archive pass deleted the hot copy between the
                # exists check and the read.  The index is durably replaced
                # before hot copies are dropped, so the archive has it.
                pass
        return self._read_archived(object_id)

    def get_text(self, object_id: str) -> str:
        return self.get(object_id).decode("utf-8")

    def exists(self, object_id: str) -> bool:
        if self.hot.exists(object_id):
            return True
        with self._lock:
            return object_id in self._index

    def delete(self, object_id: str) -> bool:
        """Forget one object from whichever tier holds it.

        Archived bytes stay in their pack (packs are append-only); only the
        index entry and any cached copy are dropped.
        """
        if self.hot.delete(object_id):
            return True
        with self._lock:
            if object_id not in self._index:
                return False
            del self._index[object_id]
            self._save_index()
        self.cache.clear()
        return True

    def __contains__(self, object_id: str) -> bool:
        return self.exists(object_id)

    def ids(self) -> Iterator[str]:
        seen = set()
        for object_id in self.hot.ids():
            seen.add(object_id)
            yield object_id
        with self._lock:
            archived = sorted(self._index)
        for object_id in archived:
            if object_id not in seen:
                yield object_id

    def __len__(self) -> int:
        return sum(1 for _ in self.ids())


def select_cold_ids(
    commits: Sequence[Any],
    *,
    keep_epochs: int,
) -> tuple[set[str], set[str]]:
    """Split a commit journal's blob ids into (hot, cold) sets by epoch.

    Each commit is one epoch; the newest ``keep_epochs`` commits define the
    hot set.  A blob is cold only if *no* hot commit references it — shared
    blobs (unchanged files across epochs) always stay hot, so checkouts of
    recent commits never touch the archive.

    Commits may be mapping-like (``{"files": {name: object_id}}``) or
    objects with a ``files`` attribute.
    """
    if keep_epochs < 0:
        raise ValueError(f"keep_epochs must be >= 0, got {keep_epochs}")

    def files_of(commit: Any) -> dict[str, str]:
        if isinstance(commit, dict):
            return commit.get("files", {})
        return getattr(commit, "files", {}) or {}

    split = max(len(commits) - keep_epochs, 0)
    hot: set[str] = set()
    for commit in commits[split:]:
        hot.update(files_of(commit).values())
    cold: set[str] = set()
    for commit in commits[:split]:
        cold.update(files_of(commit).values())
    return hot, cold - hot
