"""The build dependency graph behind the demo pipeline (Figure 2's DAG).

A :class:`BuildGraph` is a thin, validated view over parsed Makefile rules.
Nodes are build *targets* (have a rule) and *sources* (plain files that only
appear as prerequisites); edges point from a target to what it depends on.
The graph is validated eagerly — constructing one over a cyclic Makefile
raises :class:`~repro.errors.CycleError` — so every consumer downstream
(executor, scheduler, benchmarks) can assume a DAG.

The shape follows ACORN-style control-plane DAG abstractions: the graph only
answers reachability/ordering questions; execution policy (staleness,
parallelism) lives in :mod:`repro.build.executor` and
:mod:`repro.build.scheduler`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import CycleError, TargetNotFoundError
from .makefile import Makefile, Rule


class BuildGraph:
    """Dependency DAG over Makefile rules.

    Accepts either a parsed :class:`~repro.build.makefile.Makefile` or any
    iterable of :class:`~repro.build.makefile.Rule` objects.  Declaration
    order is preserved everywhere: ``dependencies()`` returns prerequisites
    as written, and topological orders are deterministic.
    """

    def __init__(self, rules: Makefile | Iterable[Rule]):
        if isinstance(rules, Makefile):
            rules = list(rules)
        else:
            rules = list(rules)
        self._rules: dict[str, Rule] = {rule.target: rule for rule in rules}
        self._deps: dict[str, tuple[str, ...]] = {
            rule.target: rule.prerequisites for rule in rules
        }
        self._dependents: dict[str, list[str]] = {target: [] for target in self._rules}
        for rule in rules:
            for dep in rule.prerequisites:
                self._dependents.setdefault(dep, []).append(rule.target)
        self._check_acyclic()

    # ------------------------------------------------------------- inspection
    @property
    def targets(self) -> list[str]:
        """Every node with a rule, in declaration order."""
        return list(self._rules)

    def rule(self, target: str) -> Rule:
        try:
            return self._rules[target]
        except KeyError:
            raise TargetNotFoundError(target, tuple(self._rules)) from None

    def is_target(self, node: str) -> bool:
        return node in self._rules

    def __contains__(self, node: str) -> bool:
        return node in self._dependents

    def sources(self) -> list[str]:
        """Plain-file nodes: prerequisites that no rule builds."""
        return [node for node in self._dependents if node not in self._rules]

    def dependencies(self, node: str) -> list[str]:
        """Direct prerequisites of ``node``, in declaration order.

        Source nodes have no prerequisites; an unknown node raises
        :class:`~repro.errors.TargetNotFoundError`.
        """
        if node in self._rules:
            return list(self._deps[node])
        if node in self._dependents:
            return []
        raise TargetNotFoundError(node, tuple(self._rules))

    def dependents(self, node: str) -> list[str]:
        """Targets that directly depend on ``node``."""
        if node not in self._dependents:
            raise TargetNotFoundError(node, tuple(self._rules))
        return list(self._dependents[node])

    def leaves(self) -> list[str]:
        """Targets nothing depends on — the build's final goals (e.g. ``run``)."""
        return [target for target in self._rules if not self._dependents[target]]

    # --------------------------------------------------------------- ordering
    def closure(self, goal: str) -> set[str]:
        """Every node (targets and sources) reachable from ``goal``."""
        if goal not in self._dependents and goal not in self._rules:
            raise TargetNotFoundError(goal, tuple(self._rules))
        seen: set[str] = set()
        stack = [goal]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._deps.get(node, ()))
        return seen

    def topological_order(self, goal: str | None = None) -> list[str]:
        """Dependencies-first order of ``goal``'s closure (or the whole graph).

        Sources sort before the targets that consume them; ties follow
        declaration order, so repeated calls return identical lists.
        """
        if goal is None:
            roots = list(self._rules)
        else:
            if goal not in self._dependents and goal not in self._rules:
                raise TargetNotFoundError(goal, tuple(self._rules))
            roots = [goal]
        order: list[str] = []
        seen: set[str] = set()
        for root in roots:
            self._postorder(root, seen, order)
        return order

    def __iter__(self) -> Iterator[str]:
        return iter(self.topological_order())

    def _postorder(self, node: str, seen: set[str], order: list[str]) -> None:
        """Iterative DFS post-order (deep Makefile chains must not blow the stack)."""
        stack: list[tuple[str, Iterator[str]]] = [(node, iter(self._deps.get(node, ())))]
        if node in seen:
            return
        on_stack = {node}
        while stack:
            current, children = stack[-1]
            advanced = False
            for child in children:
                if child in seen or child in on_stack:
                    continue
                stack.append((child, iter(self._deps.get(child, ()))))
                on_stack.add(child)
                advanced = True
                break
            if not advanced:
                stack.pop()
                on_stack.discard(current)
                if current not in seen:
                    seen.add(current)
                    order.append(current)

    # ------------------------------------------------------------- validation
    def _check_acyclic(self) -> None:
        """Depth-first cycle check; raises :class:`CycleError` with the path."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in self._dependents}
        for start in self._rules:
            if color[start] != WHITE:
                continue
            path: list[str] = []
            stack: list[tuple[str, Iterator[str]]] = [(start, iter(self._deps.get(start, ())))]
            color[start] = GRAY
            path.append(start)
            while stack:
                current, children = stack[-1]
                advanced = False
                for child in children:
                    if color.get(child, WHITE) == GRAY:
                        cycle_start = path.index(child)
                        raise CycleError(tuple(path[cycle_start:]) + (child,))
                    if color.get(child, WHITE) == WHITE:
                        color[child] = GRAY
                        path.append(child)
                        stack.append((child, iter(self._deps.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    path.pop()
                    color[current] = BLACK


__all__ = ["BuildGraph"]
