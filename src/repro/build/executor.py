"""Incremental, optionally parallel execution of Makefile targets.

The executor is the runtime half of the paper's Figure 2 workflow: a
Make-driven ML pipeline whose per-version dependency DAG lands in the
``build_deps`` table.  It differs from ``make`` in two deliberate ways:

* **Staleness is stateful, not marker-file based.**  Instead of comparing a
  target file's mtime against its prerequisites', the executor persists a
  fingerprint of every prerequisite (mtime + size + content hash by default)
  in ``.repro-build-state.json`` under the work directory.  Recipe-less
  aggregate targets like ``run`` therefore cache correctly, and a rebuilt
  dependency invalidates its dependents even across executor instances and
  processes.
* **Recipes can be in-process Python callables.**  A
  :class:`CallableRunner` binds targets to bound methods of a pipeline
  object (the demo's stages), falling back to running the Makefile's shell
  recipe for unbound targets, so the same Makefile drives both the tests'
  in-process pipeline and a real shell build via the CLI.

When a session is attached, every build that executes at least one target
commits (``flor.commit`` with the goal as ``root_target``) and records one
``build_deps`` row per target in the goal's closure — ``cached`` marks the
targets that were skipped — which is exactly the per-version DAG the
relational layer's :class:`BuildDepRepository` serves back.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Protocol

from ..errors import BuildError
from ..relational.records import BuildDepRecord
from .dag import BuildGraph
from .makefile import Makefile, Rule
from .scheduler import ParallelScheduler

#: Name of the staleness-state file kept in the build work directory.
STATE_FILE_NAME = ".repro-build-state.json"

#: Fingerprint modes: ``mtime`` rebuilds on any touch (classic make),
#: ``content`` only on real content changes, ``auto`` on either.
HASH_MODES = ("auto", "mtime", "content")


def fingerprint_path(path: Path, mode: str = "auto") -> str:
    """A string that changes when ``path`` should be considered changed."""
    if mode not in HASH_MODES:
        raise BuildError(f"unknown hash mode {mode!r}; expected one of {HASH_MODES}")
    stat = path.stat()
    parts = []
    if mode in ("auto", "mtime"):
        parts.append(f"{stat.st_mtime_ns}:{stat.st_size}")
    if mode in ("auto", "content"):
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        parts.append(digest)
    return "|".join(parts)


# --------------------------------------------------------------------- runners
class Runner(Protocol):
    """Anything that can execute one rule's recipe in a work directory."""

    def run(self, rule: Rule, workdir: Path) -> None:  # pragma: no cover - protocol
        ...


class ShellRunner:
    """Execute recipe lines through the shell, like make.

    GNU make's single-character prefixes are honoured: ``@`` suppresses
    echoing the command, ``-`` ignores a non-zero exit status.
    """

    def __init__(self, echo: bool = True):
        self.echo = echo

    def run(self, rule: Rule, workdir: Path) -> None:
        for line in rule.recipe:
            command = line
            silent = ignore_errors = False
            while command[:1] in ("@", "-"):
                if command[0] == "@":
                    silent = True
                else:
                    ignore_errors = True
                command = command[1:].lstrip()
            if not command:
                continue
            if self.echo and not silent:
                print(command)
            result = subprocess.run(command, shell=True, cwd=workdir)
            if result.returncode != 0 and not ignore_errors:
                raise BuildError(
                    f"recipe for target {rule.target!r} failed "
                    f"(exit {result.returncode}): {command}"
                )


class CallableRunner:
    """Bind targets to in-process Python callables, with a shell fallback.

    The demo pipeline binds each Makefile stage to a bound method of
    :class:`~repro.pipeline.PdfPipeline`; any target without a binding (or a
    freshly added Makefile rule) falls back to its shell recipe so mixed
    Makefiles keep working.
    """

    def __init__(
        self,
        callables: Mapping[str, Callable[[], object]],
        fallback: Runner | None = None,
    ):
        self.callables = dict(callables)
        self.fallback = fallback if fallback is not None else ShellRunner()

    def run(self, rule: Rule, workdir: Path) -> None:
        fn = self.callables.get(rule.target)
        if fn is not None:
            fn()
            return
        self.fallback.run(rule, workdir)


# --------------------------------------------------------------------- reports
@dataclass(frozen=True)
class TargetResult:
    """Outcome of one target within a build: executed or cached, and why."""

    target: str
    executed: bool
    reason: str
    seconds: float = 0.0


@dataclass
class BuildReport:
    """What one ``build()`` call did.

    ``executed`` lists targets in completion order (equal to dependency
    order when ``jobs=1``); ``results`` covers the goal's whole closure in
    dependency order, including cached targets; ``vid`` is the version id
    the build committed under (or the last build's vid when everything was
    cached and nothing new was committed).
    """

    goal: str
    executed: list[str] = field(default_factory=list)
    results: list[TargetResult] = field(default_factory=list)
    vid: str | None = None
    jobs: int = 1
    seconds: float = 0.0

    @property
    def cached(self) -> list[str]:
        return [r.target for r in self.results if not r.executed]


# -------------------------------------------------------------------- executor
class BuildExecutor:
    """Incremental builds of Makefile targets with per-version recording.

    Parameters
    ----------
    makefile:
        Parsed rules (a :class:`Makefile` or the :class:`BuildGraph` source).
    workdir:
        Directory holding prerequisite files and the staleness state; created
        on first use.
    runner:
        Recipe execution strategy; defaults to :class:`ShellRunner`.
    session:
        Optional FlorDB session.  When given, builds that execute targets
        commit and record the dependency DAG into ``session.build_deps``.
    jobs:
        Default parallelism for :meth:`build` (overridable per call).
    hash_mode:
        ``auto`` (default), ``mtime`` or ``content`` — see
        :func:`fingerprint_path`.
    materialize_missing:
        When True (default), source prerequisites that do not exist yet are
        created as empty stub files, which suits the demo's notional
        ``*.py`` stage scripts; when False a missing prerequisite is a
        :class:`BuildError`, which suits real shell builds.
    """

    def __init__(
        self,
        makefile: Makefile,
        *,
        workdir: Path | str,
        runner: Runner | None = None,
        session=None,
        jobs: int = 1,
        hash_mode: str = "auto",
        materialize_missing: bool = True,
    ):
        if hash_mode not in HASH_MODES:
            raise BuildError(f"unknown hash mode {hash_mode!r}; expected one of {HASH_MODES}")
        self.makefile = makefile
        self.graph = BuildGraph(makefile)
        self.workdir = Path(workdir)
        self.runner = runner if runner is not None else ShellRunner()
        self.session = session
        self.jobs = jobs
        self.hash_mode = hash_mode
        self.materialize_missing = materialize_missing
        self._lock = threading.Lock()
        self._state = self._load_state()

    # ------------------------------------------------------------------ state
    @property
    def state_path(self) -> Path:
        return self.workdir / STATE_FILE_NAME

    def _load_state(self) -> dict:
        try:
            raw = json.loads(self.state_path.read_text())
        except (OSError, ValueError):
            raw = {}
        raw.setdefault("counter", 0)
        raw.setdefault("targets", {})
        raw.setdefault("last_vid", None)
        return raw

    def _save_state(self) -> None:
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.state_path.write_text(json.dumps(self._state, indent=1, sort_keys=True))

    def invalidate(self, target: str | None = None) -> None:
        """Forget staleness state for ``target`` (or for every target)."""
        if target is None:
            self._state["targets"] = {}
        else:
            self.graph.rule(target)  # raises TargetNotFoundError for unknowns
            self._state["targets"].pop(target, None)
        self._save_state()

    # ------------------------------------------------------------------ build
    def build(self, target: str | None = None, *, force: bool = False, jobs: int | None = None) -> BuildReport:
        """Bring ``target`` (default: the Makefile's first target) up to date.

        Returns a :class:`BuildReport`; raises
        :class:`~repro.errors.TargetNotFoundError` for unknown targets and
        :class:`~repro.errors.BuildError` when a recipe fails (state for the
        targets that did complete is persisted, so a rerun resumes).
        """
        goal = target if target is not None else self.makefile.default_target
        if goal is None:
            raise BuildError("Makefile declares no targets")
        self.graph.rule(goal)
        jobs = jobs if jobs is not None else self.jobs

        started = time.perf_counter()
        self.workdir.mkdir(parents=True, exist_ok=True)
        order = self.graph.topological_order(goal)
        target_order = [node for node in order if self.graph.is_target(node)]
        self._materialize_sources(node for node in order if not self.graph.is_target(node))

        fingerprints: dict[str, str] = {}
        plan, reasons = self._plan(target_order, force=force, fingerprints=fingerprints)

        report = BuildReport(goal=goal, jobs=jobs)
        scheduler = ParallelScheduler(self.graph, jobs=jobs)
        timings: dict[str, float] = {}
        try:
            report.executed = scheduler.run(plan, lambda t: self._execute_one(t, timings))
        finally:
            # Persist whatever completed even when a recipe failed mid-build,
            # so the next invocation resumes instead of starting over.
            self._save_state()
        report.results = [
            TargetResult(
                target=t,
                executed=t in timings,
                reason=reasons[t],
                seconds=timings.get(t, 0.0),
            )
            for t in target_order
        ]
        report.vid = self._record(goal, target_order, report)
        report.seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------- plan
    def _materialize_sources(self, sources) -> None:
        missing = [s for s in sources if not (self.workdir / s).exists()]
        if not missing:
            return
        if not self.materialize_missing:
            raise BuildError(
                "missing prerequisite file(s) in "
                f"{self.workdir}: {', '.join(sorted(missing))}"
            )
        for source in missing:
            path = self.workdir / source
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(f"# stub source for {source!r} (auto-created by repro.build)\n")

    def _plan(
        self,
        target_order: list[str],
        *,
        force: bool,
        fingerprints: dict[str, str],
    ) -> tuple[list[str], dict[str, str]]:
        """Decide which targets run and why, dependencies first.

        A target is stale when it is phony, was never built, any file
        prerequisite's fingerprint changed, any prerequisite target is
        itself in the plan, or a prerequisite target was rebuilt elsewhere
        (stamp mismatch in the persisted state).  Staleness is transitive by
        construction because targets are visited in dependency order.
        """
        plan: list[str] = []
        planned: set[str] = set()
        reasons: dict[str, str] = {}
        targets_state: dict = self._state["targets"]
        for target in target_order:
            reason = None
            if force:
                reason = "forced"
            elif self.graph.rule(target).phony:
                reason = "phony target"
            else:
                entry = targets_state.get(target)
                if entry is None:
                    reason = "never built"
                else:
                    for dep in self.graph.dependencies(target):
                        if self.graph.is_target(dep):
                            if dep in planned:
                                reason = f"dependency {dep!r} re-ran"
                                break
                            dep_stamp = targets_state.get(dep, {}).get("stamp")
                            if entry["deps"].get(dep) != dep_stamp:
                                reason = f"dependency {dep!r} was rebuilt"
                                break
                        else:
                            if dep not in fingerprints:
                                fingerprints[dep] = fingerprint_path(
                                    self.workdir / dep, self.hash_mode
                                )
                            if entry["deps"].get(dep) != fingerprints[dep]:
                                reason = f"{dep} changed"
                                break
            if reason is None:
                reasons[target] = "up to date"
            else:
                reasons[target] = reason
                plan.append(target)
                planned.add(target)
        return plan, reasons

    # -------------------------------------------------------------- execution
    def _execute_one(self, target: str, timings: dict[str, float]) -> None:
        """Run one target's recipe and record its fresh state.

        Called by the scheduler, possibly from worker threads; the state
        mutation happens under a lock after the (slow) recipe finishes.  The
        scheduler guarantees every prerequisite target completed first, so
        their stamps are current when we snapshot them.
        """
        rule = self.graph.rule(target)
        started = time.perf_counter()
        self.runner.run(rule, self.workdir)
        elapsed = time.perf_counter() - started
        deps: dict[str, object] = {}
        for dep in self.graph.dependencies(target):
            if self.graph.is_target(dep):
                continue  # filled in below, under the lock
            deps[dep] = fingerprint_path(self.workdir / dep, self.hash_mode)
        with self._lock:
            targets_state = self._state["targets"]
            for dep in self.graph.dependencies(target):
                if self.graph.is_target(dep):
                    deps[dep] = targets_state.get(dep, {}).get("stamp")
            self._state["counter"] += 1
            targets_state[target] = {"stamp": self._state["counter"], "deps": deps}
            timings[target] = elapsed

    # -------------------------------------------------------------- recording
    def _record(self, goal: str, target_order: list[str], report: BuildReport) -> str | None:
        """Commit the build and write one ``build_deps`` row per target.

        No-op builds do not create empty versions; they report the vid of
        the previous build (persisted in the state file, falling back to the
        session's latest version epoch).
        """
        if self.session is None:
            return None
        if not report.executed:
            vid = self._state.get("last_vid")
            if vid is None:
                latest = self.session.ts2vid.latest(self.session.projid)
                vid = latest.vid if latest is not None else None
            return vid
        executed = set(report.executed)
        vid = self.session.commit(f"repro build {goal}", root_target=goal)
        if vid is not None:
            self.session.build_deps.add_many(
                [
                    BuildDepRecord(
                        vid=vid,
                        target=t,
                        deps=tuple(self.graph.dependencies(t)),
                        cmds=self.graph.rule(t).recipe,
                        cached=t not in executed,
                    )
                    for t in target_order
                ]
            )
        self._state["last_vid"] = vid
        self._save_state()
        return vid


__all__ = [
    "BuildExecutor",
    "BuildReport",
    "TargetResult",
    "CallableRunner",
    "ShellRunner",
    "Runner",
    "fingerprint_path",
    "STATE_FILE_NAME",
    "HASH_MODES",
]
