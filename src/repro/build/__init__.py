"""A Make-like incremental build substrate (the paper's Figure 2 workflow).

FlorDB's demo is a Make-driven ML pipeline: a Makefile names the stages
(``process_pdfs`` → ``featurize`` → ``train`` → ``infer`` → ``run``), and
every build records the per-version dependency DAG into the relational
layer's ``build_deps`` table so that "which inputs produced this model?" is
a SQL question.  This subpackage supplies the build half of that story in
three layers:

``makefile``
    :func:`~repro.build.makefile.parse_makefile` parses the demo's Makefile
    dialect — targets, prerequisites, tab-indented recipes, comments,
    continuations and ``.PHONY`` — into ordered :class:`Rule` objects.
``dag``
    :class:`~repro.build.dag.BuildGraph` is the validated dependency DAG:
    direct ``dependencies()``, reverse ``dependents()``, final-goal
    ``leaves()``, deterministic topological ordering, and eager cycle
    detection raising :class:`~repro.errors.CycleError`.
``executor`` / ``scheduler``
    :class:`~repro.build.executor.BuildExecutor` runs only stale targets
    (mtime + content-hash fingerprints persisted under the work directory),
    binds targets to in-process pipeline callables via
    :class:`~repro.build.executor.CallableRunner` (shell recipes as the
    fallback), commits each effective build and records its DAG per version.
    :class:`~repro.build.scheduler.ParallelScheduler` executes independent
    targets concurrently (``jobs=N``) with a wavefront/ready-queue design.

Typical usage::

    from repro.build import BuildExecutor, CallableRunner, parse_makefile

    executor = BuildExecutor(
        parse_makefile(makefile_text),
        workdir="build",
        runner=CallableRunner({"train": pipeline.train, ...}),
        session=session,
    )
    report = executor.build("run", jobs=4)   # report.executed, report.vid

The CLI exposes the same machinery as ``python -m repro.cli build <target>
--jobs N --force`` for Makefiles with plain shell recipes.
"""

from .dag import BuildGraph
from .executor import (
    BuildExecutor,
    BuildReport,
    CallableRunner,
    Runner,
    ShellRunner,
    TargetResult,
    fingerprint_path,
)
from .makefile import Makefile, Rule, load_makefile, parse_makefile
from .scheduler import ParallelScheduler

__all__ = [
    "Makefile",
    "Rule",
    "parse_makefile",
    "load_makefile",
    "BuildGraph",
    "BuildExecutor",
    "BuildReport",
    "TargetResult",
    "CallableRunner",
    "ShellRunner",
    "Runner",
    "ParallelScheduler",
    "fingerprint_path",
]
