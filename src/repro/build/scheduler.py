"""Wavefront scheduling of independent build targets over a thread pool.

Given a deps-first plan (the stale subset of a :class:`BuildGraph`), the
scheduler runs every target whose in-plan dependencies have completed,
``jobs`` at a time.  This is the classic ready-queue/wavefront design: a
target enters the ready queue the moment its last in-plan dependency
finishes, so a wide DAG keeps all workers busy while a deep chain degrades
gracefully to sequential execution.

Threads (not processes) are the right tool here: recipe work is either an
in-process Python callable operating on shared pipeline state or a shell
subprocess, and both release the GIL while the interesting work happens.

Failure semantics match ``make -k``'s *non*-keep-going default: the first
failing target stops new submissions, in-flight targets are drained, every
target downstream of the failure is left unbuilt, and the original exception
propagates (wrapped in :class:`~repro.errors.BuildError` when it is not
already a :class:`~repro.errors.ReproError`).
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Callable, Sequence

from ..errors import BuildError, CycleError, ReproError
from .dag import BuildGraph


class ParallelScheduler:
    """Run plan targets respecting DAG order, ``jobs`` at a time."""

    def __init__(self, graph: BuildGraph, jobs: int = 1):
        if jobs < 1:
            raise BuildError(f"jobs must be >= 1, got {jobs}")
        self.graph = graph
        self.jobs = jobs

    def run(self, plan: Sequence[str], execute: Callable[[str], None]) -> list[str]:
        """Execute every target in ``plan``; returns them in completion order.

        ``plan`` must be topologically sorted (dependencies first), which is
        what :meth:`BuildGraph.topological_order` produces.  With ``jobs=1``
        execution is strictly sequential in plan order, so single-job builds
        are fully deterministic.
        """
        plan = list(plan)
        if self.jobs == 1 or len(plan) <= 1:
            for target in plan:
                try:
                    execute(target)
                except ReproError:
                    raise
                except Exception as exc:
                    raise BuildError(f"target {target!r} failed: {exc}") from exc
            return plan
        return self._run_parallel(plan, execute)

    def _run_parallel(self, plan: Sequence[str], execute: Callable[[str], None]) -> list[str]:
        plan_set = set(plan)
        remaining = {
            target: {dep for dep in self.graph.dependencies(target) if dep in plan_set}
            for target in plan
        }
        dependents = {target: [] for target in plan}
        for target, deps in remaining.items():
            for dep in deps:
                dependents[dep].append(target)

        ready: deque[str] = deque(t for t in plan if not remaining[t])
        completed: list[str] = []
        running: dict[Future, str] = {}
        failed: tuple[str, BaseException] | None = None

        with ThreadPoolExecutor(max_workers=self.jobs, thread_name_prefix="repro-build") as pool:
            while ready or running:
                while ready and failed is None:
                    target = ready.popleft()
                    running[pool.submit(execute, target)] = target
                if not running:
                    break
                done, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in done:
                    target = running.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        failed = failed or (target, exc)
                        continue
                    completed.append(target)
                    for dependent in dependents[target]:
                        remaining[dependent].discard(target)
                        if not remaining[dependent]:
                            ready.append(dependent)

        if failed is not None:
            target, exc = failed
            if isinstance(exc, ReproError):
                raise exc
            raise BuildError(f"target {target!r} failed: {exc}") from exc
        if len(completed) != len(plan):
            # Unreachable for a validated DAG; guards against a plan that was
            # not dependency-closed.
            stuck = sorted(plan_set - set(completed))
            raise CycleError(tuple(stuck))
        return completed


__all__ = ["ParallelScheduler"]
