"""Parser for the Makefile dialect used by the paper's demo pipeline.

The dialect is the one emitted by :mod:`repro.workloads.generator` and shown
in Figure 4 of the paper: rule lines (``target: prerequisites``), tab-indented
recipe lines (with GNU make's ``@`` silent and ``-`` ignore-errors prefixes),
``#`` comments, blank lines, backslash continuations and ``.PHONY``
declarations.  Variables, pattern rules and functions are intentionally out of
scope — the demo never uses them, and keeping the grammar small keeps the
parser auditable.

Duplicate rules follow GNU make semantics: prerequisites from every
declaration are merged in order, and when two declarations both carry a
recipe the later one wins (a warning is recorded on the parsed
:class:`Makefile` instead of printed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator

from ..errors import MakefileError, TargetNotFoundError

#: Special targets (GNU make chapter 4.8) that configure parsing instead of
#: declaring a buildable rule.  Only ``.PHONY`` carries meaning here; the rest
#: are accepted and ignored so real-world Makefiles don't trip the parser.
_SPECIAL_TARGETS = {".PHONY", ".SUFFIXES", ".DEFAULT", ".PRECIOUS", ".SILENT", ".IGNORE"}


@dataclass(frozen=True)
class Rule:
    """One Makefile rule: a target, its prerequisites and its recipe."""

    target: str
    prerequisites: tuple[str, ...] = ()
    recipe: tuple[str, ...] = ()
    lineno: int = 0
    phony: bool = False


@dataclass
class Makefile:
    """An ordered collection of parsed rules.

    Declaration order is preserved: it determines the default goal (the first
    target, like make) and gives :class:`~repro.build.dag.BuildGraph` a
    deterministic traversal order.
    """

    rules: dict[str, Rule] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)
    path: str | None = None

    @property
    def targets(self) -> list[str]:
        return list(self.rules)

    @property
    def default_target(self) -> str | None:
        """The first declared target — what bare ``make`` would build."""
        return next(iter(self.rules), None)

    def get(self, target: str) -> Rule:
        try:
            return self.rules[target]
        except KeyError:
            raise TargetNotFoundError(target, tuple(self.rules)) from None

    def __contains__(self, target: str) -> bool:
        return target in self.rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules.values())

    def __len__(self) -> int:
        return len(self.rules)


def parse_makefile(text: str, path: str | None = None) -> Makefile:
    """Parse Makefile ``text`` into a :class:`Makefile`.

    ``path`` is only used to prefix error messages, mirroring make's
    ``Makefile:12: *** missing separator`` style.
    """
    makefile = Makefile(path=path)
    phony: set[str] = set()
    current: tuple[str, ...] = ()
    # True until the current declaration contributes its first recipe line;
    # used to detect (and warn about) GNU-make-style recipe overrides when a
    # target is declared twice and both declarations carry recipes.
    awaiting_recipe = False

    for lineno, line in _logical_lines(text):
        if line.startswith("\t"):
            recipe_line = line[1:].strip()
            if not recipe_line or recipe_line.startswith("#"):
                continue
            if not current:
                raise MakefileError(
                    "recipe commences before first target", lineno=lineno, path=path
                )
            # A multi-target rule gives the same recipe to every target.
            for target in current:
                rule = makefile.rules[target]
                if awaiting_recipe and rule.recipe:
                    makefile.warnings.append(
                        f"{path or 'Makefile'}:{lineno}: overriding recipe for target {target!r}"
                    )
                    rule = replace(rule, recipe=())
                makefile.rules[target] = replace(rule, recipe=rule.recipe + (recipe_line,))
            awaiting_recipe = False
            continue

        stripped = _strip_comment(line).strip()
        if not stripped:
            continue
        if ":" not in stripped:
            raise MakefileError(
                f"missing separator in {stripped!r} (expected 'target: prerequisites')",
                lineno=lineno,
                path=path,
            )
        lhs, _, rhs = stripped.partition(":")
        targets = lhs.split()
        prerequisites = tuple(rhs.split())
        if not targets:
            raise MakefileError("rule has no target", lineno=lineno, path=path)

        special = [t for t in targets if t in _SPECIAL_TARGETS]
        if special:
            if ".PHONY" in special:
                phony.update(prerequisites)
            current = ()
            awaiting_recipe = False
            continue

        for target in targets:
            rule = Rule(target=target, prerequisites=prerequisites, lineno=lineno)
            existing = makefile.rules.get(target)
            if existing is not None:
                merged = existing.prerequisites + tuple(
                    p for p in prerequisites if p not in existing.prerequisites
                )
                rule = replace(existing, prerequisites=merged, lineno=existing.lineno)
            makefile.rules[target] = rule
        current = tuple(targets)
        awaiting_recipe = True

    if phony:
        for target in phony:
            if target in makefile.rules:
                makefile.rules[target] = replace(makefile.rules[target], phony=True)
    return makefile


def load_makefile(path: str | Path) -> Makefile:
    """Parse the Makefile at ``path`` (errors mention the file name)."""
    path = Path(path)
    if not path.is_file():
        raise MakefileError(f"no such Makefile: {path}", path=str(path))
    return parse_makefile(path.read_text(), path=str(path))


def _logical_lines(text: str) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, line)`` pairs with backslash continuations joined.

    The line number reported for a joined line is where it started, which is
    what a user fixing the Makefile wants to see.
    """
    pending: list[str] = []
    start = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if raw.endswith("\\"):
            if not pending:
                start = lineno
            pending.append(raw[:-1])
            continue
        if pending:
            pending.append(raw)
            yield start, " ".join(part.strip("\t ") if i else part for i, part in enumerate(pending))
            pending = []
            continue
        yield lineno, raw
    if pending:
        yield start, " ".join(part.strip("\t ") if i else part for i, part in enumerate(pending))


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment from a non-recipe line."""
    index = line.find("#")
    return line if index < 0 else line[:index]


__all__ = ["Rule", "Makefile", "parse_makefile", "load_makefile"]
