"""Reproduction of FlorDB (CIDR 2025): incremental context maintenance for ML.

Typical usage mirrors the paper::

    from repro import flor

    for epoch in flor.loop("epoch", range(5)):
        ...
        flor.log("loss", loss)
    flor.commit()

    df = flor.dataframe("loss")          # pivoted view across all versions

Subpackages
-----------
``repro.core``        the Flor API, record/replay runtime and hindsight logging
``repro.relational``  the SQLite data model of Figure 1
``repro.dataframe``   a mini dataframe engine (pandas substitute)
``repro.versioning``  a content-addressed version store (git substitute)
``repro.build``       a Make-like incremental build substrate (make substitute):
                      Makefile parsing, a validated build DAG, staleness-aware
                      execution with in-process or shell recipes, a parallel
                      wavefront scheduler (``jobs=N``), and per-version
                      recording of the dependency DAG into ``build_deps``
``repro.ml``          a NumPy training substrate (torch substitute)
``repro.docs``        a synthetic document corpus and featurization
``repro.mlops``       feature-store / model-registry / label-store roles
``repro.webapp``      the human-in-the-loop feedback web application
``repro.workloads``   synthetic workload generators for the benchmarks
``repro.runtime``     the record-path runtime: tuple staging with deferred
                      value encoding, a double-buffered background flusher
                      (single coalesced transaction per drain, bounded
                      memory with backpressure, sync mode for replay), and
                      asynchronous checkpoint serialization with a drain
                      barrier before restore/commit/close
``repro.service``     multi-tenant HTTP service layer: sharded database
                      pool (one SQLite file per project, LRU handle cache),
                      batched ingestion (one batch per flush, riding the
                      shard's background flusher), and
                      append/commit/dataframe/SQL endpoints behind the
                      ``serve`` CLI subcommand
``repro.jobs``        durable background job orchestration: a SQLite-backed
                      queue (lease + heartbeat, bounded retries with
                      backoff, per-version progress checkpoints) and a
                      worker pool executing hindsight backfills/replays
                      under supervision — over HTTP, embedded in ``serve
                      --job-workers``, or via the ``jobs`` CLI group

The ``flordb`` command line (:mod:`repro.cli`) covers the shell side:
``names``/``versions``/``dataframe``/``sql``/``stats`` for queries,
``backfill`` for hindsight logging, ``build`` for incremental Makefile
builds, and ``serve`` for the multi-tenant service.  The README at the
repository root walks through install, the quickstart above, and how to
run the tier-1 tests and benchmarks.
"""

from .config import ProjectConfig
from .core.api import FlorFacade, flor
from .core.hindsight import BackfillReport, HindsightEngine
from .core.replay import ReplayPlan
from .core.session import Session, active_session
from .dataframe import DataFrame
from .errors import ReproError
from .jobs import JobRunner, JobStore
from .query import PivotViewCache, QueryEngine
from .runtime import AsyncCheckpointWriter, BackgroundFlusher, RecordBuffer

__version__ = "1.0.0"

__all__ = [
    "flor",
    "FlorFacade",
    "Session",
    "active_session",
    "ProjectConfig",
    "HindsightEngine",
    "BackfillReport",
    "ReplayPlan",
    "DataFrame",
    "QueryEngine",
    "PivotViewCache",
    "JobStore",
    "JobRunner",
    "RecordBuffer",
    "BackgroundFlusher",
    "AsyncCheckpointWriter",
    "ReproError",
    "__version__",
]
