"""SQLite-backed relational data model (Figure 1 of the paper).

Physical tables: ``logs``, ``loops``, ``ts2vid``, ``obj_store``,
``build_deps``.  The ``git`` table of the figure is *virtual*: it is served
by the :mod:`repro.versioning` store and surfaced through
:func:`repro.relational.queries.git_view`.
"""

from .database import Database
from .records import BuildDepRecord, LogRecord, LoopRecord, ObjectRecord, Ts2VidRecord
from .repositories import (
    BuildDepRepository,
    LogRepository,
    LoopRepository,
    ObjectRepository,
    Ts2VidRepository,
)
from .schema import SCHEMA_VERSION, TABLES, create_schema

__all__ = [
    "Database",
    "LogRecord",
    "LoopRecord",
    "Ts2VidRecord",
    "ObjectRecord",
    "BuildDepRecord",
    "LogRepository",
    "LoopRepository",
    "Ts2VidRepository",
    "ObjectRepository",
    "BuildDepRepository",
    "SCHEMA_VERSION",
    "TABLES",
    "create_schema",
]
