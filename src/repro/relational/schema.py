"""DDL for the FlorDB relational data model.

The schema follows Figure 1 of the paper.  Columns keep the paper's names so
that queries written against the paper translate directly.  Log and loop rows
are append-only; the mutable tables are ``build_deps.cached``, the job
orchestration pair ``jobs``/``job_events`` (``jobs`` rows advance through a
state machine, ``job_events`` is an append-only audit/progress trail — see
:mod:`repro.jobs`) and the per-tenant admission-control rules in
``qos_policies`` (see :mod:`repro.qos`).
"""

from __future__ import annotations

import sqlite3

from ..errors import SchemaError

SCHEMA_VERSION = 1

#: Physical tables in creation order (white boxes of Figure 1, plus the
#: job-orchestration tables added for the production service layer).
TABLES = (
    "meta",
    "logs",
    "loops",
    "ts2vid",
    "obj_store",
    "build_deps",
    "jobs",
    "job_events",
    "qos_policies",
)

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key             TEXT PRIMARY KEY,
    value           TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS logs (
    projid          TEXT NOT NULL,
    tstamp          TEXT NOT NULL,
    filename        TEXT NOT NULL,
    ctx_id          INTEGER NOT NULL,
    value_name      TEXT NOT NULL,
    value           TEXT,
    value_type      INTEGER NOT NULL DEFAULT 0,
    seq             INTEGER PRIMARY KEY AUTOINCREMENT
);
CREATE INDEX IF NOT EXISTS idx_logs_name ON logs (projid, value_name);
CREATE INDEX IF NOT EXISTS idx_logs_ctx ON logs (projid, tstamp, filename, ctx_id);
-- Covering index for the query engine's pushdown scans: a name-filtered
-- read (the flor.dataframe hot path) is answered entirely from the index,
-- and the trailing columns let SQLite skip the rowid lookup per match.
CREATE INDEX IF NOT EXISTS idx_logs_pushdown
    ON logs (projid, value_name, tstamp, filename, ctx_id, value_type, value);
-- Range pushdown (--since/--until, latest-run reads) ordered by append
-- sequence within a run.
CREATE INDEX IF NOT EXISTS idx_logs_tstamp ON logs (projid, tstamp, seq);

CREATE TABLE IF NOT EXISTS loops (
    projid          TEXT NOT NULL,
    tstamp          TEXT NOT NULL,
    filename        TEXT NOT NULL,
    ctx_id          INTEGER NOT NULL,
    parent_ctx_id   INTEGER,
    loop_name       TEXT NOT NULL,
    loop_iteration  INTEGER NOT NULL,
    iteration_value TEXT,
    PRIMARY KEY (projid, tstamp, filename, ctx_id)
);
CREATE INDEX IF NOT EXISTS idx_loops_parent ON loops (projid, tstamp, filename, parent_ctx_id);
-- Covering index for the run-scoped ancestry join: fetching every loop row
-- of one (tstamp, filename) run never touches the base table.
CREATE INDEX IF NOT EXISTS idx_loops_ancestry
    ON loops (projid, tstamp, filename, ctx_id, parent_ctx_id,
              loop_name, loop_iteration, iteration_value);

CREATE TABLE IF NOT EXISTS ts2vid (
    projid          TEXT NOT NULL,
    ts_start        TEXT NOT NULL,
    ts_end          TEXT NOT NULL,
    vid             TEXT NOT NULL,
    root_target     TEXT,
    PRIMARY KEY (projid, ts_start)
);
CREATE INDEX IF NOT EXISTS idx_ts2vid_vid ON ts2vid (vid);

CREATE TABLE IF NOT EXISTS obj_store (
    projid          TEXT NOT NULL,
    tstamp          TEXT NOT NULL,
    filename        TEXT NOT NULL,
    ctx_id          INTEGER NOT NULL,
    value_name      TEXT NOT NULL,
    contents        BLOB,
    PRIMARY KEY (projid, tstamp, filename, ctx_id, value_name)
);

CREATE TABLE IF NOT EXISTS build_deps (
    vid             TEXT NOT NULL,
    target          TEXT NOT NULL,
    deps            TEXT NOT NULL DEFAULT '[]',
    cmds            TEXT NOT NULL DEFAULT '[]',
    cached          INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (vid, target)
);

-- Durable background jobs (repro.jobs).  A row is the single source of
-- truth for one unit of supervised work (a hindsight backfill or replay):
-- workers claim rows with a compare-and-swap on ``state`` and hold a
-- heartbeat-renewed lease, so a crashed worker's job is observable and
-- reclaimable instead of lost.  Timestamps are unix seconds (REAL).
CREATE TABLE IF NOT EXISTS jobs (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    project          TEXT NOT NULL,
    kind             TEXT NOT NULL,
    payload          TEXT NOT NULL DEFAULT '{}',
    state            TEXT NOT NULL DEFAULT 'queued',
    priority         INTEGER NOT NULL DEFAULT 0,
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 3,
    not_before       REAL NOT NULL DEFAULT 0.0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    lease_owner      TEXT,
    lease_expires    REAL,
    created_at       REAL NOT NULL DEFAULT 0.0,
    updated_at       REAL NOT NULL DEFAULT 0.0,
    started_at       REAL,
    finished_at      REAL,
    error            TEXT,
    result           TEXT
);
-- The claim query: queued rows whose backoff has elapsed, best priority
-- first, FIFO within a priority.
CREATE INDEX IF NOT EXISTS idx_jobs_claim ON jobs (state, not_before, priority, id);
CREATE INDEX IF NOT EXISTS idx_jobs_project ON jobs (project, id);

-- Append-only job trail: state transitions, per-version progress
-- checkpoints (kind='version'), and worker errors.  A resumed backfill
-- reads its own 'version' events to skip versions already replayed.
-- Multi-tenant QoS policy table (repro.qos).  One row per admission rule:
-- ``selector`` is an exact tenant name, a ``prefix*`` pattern, or ``*``
-- (the default fallback, excluded from the ordered scan).  Non-``*`` rules
-- are evaluated first-match-wins in ``position`` order, which is what makes
-- shadowing detectable at write time (see repro.qos.policy).  NULL limit
-- columns mean "unlimited" for that dimension.
CREATE TABLE IF NOT EXISTS qos_policies (
    selector        TEXT PRIMARY KEY,
    position        INTEGER NOT NULL DEFAULT 0,
    rate            REAL,
    burst           REAL,
    byte_quota      INTEGER,
    window_seconds  REAL NOT NULL DEFAULT 60.0,
    priority        TEXT NOT NULL DEFAULT 'normal',
    updated_at      REAL NOT NULL DEFAULT 0.0
);
CREATE INDEX IF NOT EXISTS idx_qos_position ON qos_policies (position, selector);

CREATE TABLE IF NOT EXISTS job_events (
    seq             INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id          INTEGER NOT NULL,
    kind            TEXT NOT NULL,
    payload         TEXT NOT NULL DEFAULT '{}',
    created_at      REAL NOT NULL DEFAULT 0.0
);
CREATE INDEX IF NOT EXISTS idx_job_events_job ON job_events (job_id, seq);
"""


def create_schema(connection: sqlite3.Connection) -> None:
    """Create all tables and indexes if they do not already exist.

    Raises :class:`SchemaError` if the database was written by an
    incompatible library version.
    """
    connection.executescript(_DDL)
    row = connection.execute("SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
    if row is None:
        connection.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        connection.commit()
        return
    found = int(row[0])
    if found != SCHEMA_VERSION:
        raise SchemaError(
            f"database schema version {found} is incompatible with library version {SCHEMA_VERSION}"
        )


def table_columns(connection: sqlite3.Connection, table: str) -> list[str]:
    """Return the column names of ``table`` in declaration order."""
    if table not in TABLES:
        raise SchemaError(f"unknown table: {table!r}")
    rows = connection.execute(f"PRAGMA table_info({table})").fetchall()
    return [row[1] for row in rows]
