"""Repositories: typed insert/query access for each physical table.

Each repository wraps a :class:`~repro.storage.protocols.RelationalStore` and
translates between dataclass records and SQL rows.  They are intentionally
narrow — higher-level query shapes (pivots, latest-version selection) live in
:mod:`repro.relational.queries`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..storage.protocols import RelationalStore
from .records import (
    BuildDepRecord,
    LogRecord,
    LoopRecord,
    ObjectRecord,
    Ts2VidRecord,
)

#: Insert statements shared with :mod:`repro.runtime.flusher`, which replays
#: them through a single transaction when coalescing batched submissions;
#: bind parameters come from ``LogRecord.as_row`` / ``LoopRecord.as_row``.
INSERT_LOG_SQL = (
    "INSERT INTO logs (projid, tstamp, filename, ctx_id, value_name, value, value_type)"
    " VALUES (?, ?, ?, ?, ?, ?, ?)"
)
INSERT_LOOP_SQL = (
    "INSERT OR REPLACE INTO loops"
    " (projid, tstamp, filename, ctx_id, parent_ctx_id, loop_name, loop_iteration, iteration_value)"
    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
)


class LogRepository:
    """Append-only access to the ``logs`` table."""

    def __init__(self, db: RelationalStore):
        self._db = db

    def add(self, record: LogRecord) -> None:
        self.add_many([record])

    def add_many(self, records: Sequence[LogRecord]) -> None:
        self._db.executemany(INSERT_LOG_SQL, [r.as_row() for r in records])

    def _rows_to_records(self, rows: Iterable[tuple]) -> list[LogRecord]:
        return [
            LogRecord(
                projid=row[0],
                tstamp=row[1],
                filename=row[2],
                ctx_id=row[3],
                value_name=row[4],
                value=row[5],
                value_type=row[6],
            )
            for row in rows
        ]

    def all(self, projid: str | None = None) -> list[LogRecord]:
        if projid is None:
            rows = self._db.query(
                "SELECT projid, tstamp, filename, ctx_id, value_name, value, value_type"
                " FROM logs ORDER BY seq"
            )
        else:
            rows = self._db.query(
                "SELECT projid, tstamp, filename, ctx_id, value_name, value, value_type"
                " FROM logs WHERE projid = ? ORDER BY seq",
                (projid,),
            )
        return self._rows_to_records(rows)

    def by_names(self, projid: str, names: Sequence[str]) -> list[LogRecord]:
        if not names:
            return []
        placeholders = ",".join("?" for _ in names)
        rows = self._db.query(
            "SELECT projid, tstamp, filename, ctx_id, value_name, value, value_type"
            f" FROM logs WHERE projid = ? AND value_name IN ({placeholders}) ORDER BY seq",
            (projid, *names),
        )
        return self._rows_to_records(rows)

    def by_tstamp(self, projid: str, tstamp: str) -> list[LogRecord]:
        rows = self._db.query(
            "SELECT projid, tstamp, filename, ctx_id, value_name, value, value_type"
            " FROM logs WHERE projid = ? AND tstamp = ? ORDER BY seq",
            (projid, tstamp),
        )
        return self._rows_to_records(rows)

    def distinct_names(self, projid: str) -> list[str]:
        rows = self._db.query(
            "SELECT DISTINCT value_name FROM logs WHERE projid = ? ORDER BY value_name",
            (projid,),
        )
        return [row[0] for row in rows]

    def distinct_tstamps(self, projid: str) -> list[str]:
        rows = self._db.query(
            "SELECT DISTINCT tstamp FROM logs WHERE projid = ? ORDER BY tstamp",
            (projid,),
        )
        return [row[0] for row in rows]

    def count(self) -> int:
        return self._db.count("logs")


class LoopRepository:
    """Access to the ``loops`` table: one row per loop iteration context."""

    def __init__(self, db: RelationalStore):
        self._db = db

    def add(self, record: LoopRecord) -> None:
        self.add_many([record])

    def add_many(self, records: Sequence[LoopRecord]) -> None:
        self._db.executemany(INSERT_LOOP_SQL, [r.as_row() for r in records])

    def _rows_to_records(self, rows: Iterable[tuple]) -> list[LoopRecord]:
        return [
            LoopRecord(
                projid=row[0],
                tstamp=row[1],
                filename=row[2],
                ctx_id=row[3],
                parent_ctx_id=row[4],
                loop_name=row[5],
                loop_iteration=row[6],
                iteration_value=row[7],
            )
            for row in rows
        ]

    def all(self, projid: str | None = None) -> list[LoopRecord]:
        if projid is None:
            rows = self._db.query(
                "SELECT projid, tstamp, filename, ctx_id, parent_ctx_id, loop_name,"
                " loop_iteration, iteration_value FROM loops ORDER BY tstamp, ctx_id"
            )
        else:
            rows = self._db.query(
                "SELECT projid, tstamp, filename, ctx_id, parent_ctx_id, loop_name,"
                " loop_iteration, iteration_value FROM loops WHERE projid = ?"
                " ORDER BY tstamp, ctx_id",
                (projid,),
            )
        return self._rows_to_records(rows)

    def by_context(self, projid: str, tstamp: str, filename: str) -> list[LoopRecord]:
        rows = self._db.query(
            "SELECT projid, tstamp, filename, ctx_id, parent_ctx_id, loop_name,"
            " loop_iteration, iteration_value FROM loops"
            " WHERE projid = ? AND tstamp = ? AND filename = ? ORDER BY ctx_id",
            (projid, tstamp, filename),
        )
        return self._rows_to_records(rows)

    def get(self, projid: str, tstamp: str, filename: str, ctx_id: int) -> LoopRecord | None:
        rows = self._db.query(
            "SELECT projid, tstamp, filename, ctx_id, parent_ctx_id, loop_name,"
            " loop_iteration, iteration_value FROM loops"
            " WHERE projid = ? AND tstamp = ? AND filename = ? AND ctx_id = ?",
            (projid, tstamp, filename, ctx_id),
        )
        records = self._rows_to_records(rows)
        return records[0] if records else None

    def count(self) -> int:
        return self._db.count("loops")


class Ts2VidRepository:
    """Access to the ``ts2vid`` table mapping timestamp epochs to version ids."""

    def __init__(self, db: RelationalStore):
        self._db = db

    def add(self, record: Ts2VidRecord) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO ts2vid (projid, ts_start, ts_end, vid, root_target)"
            " VALUES (?, ?, ?, ?, ?)",
            (record.projid, record.ts_start, record.ts_end, record.vid, record.root_target),
        )

    def all(self, projid: str | None = None) -> list[Ts2VidRecord]:
        if projid is None:
            rows = self._db.query(
                "SELECT projid, ts_start, ts_end, vid, root_target FROM ts2vid ORDER BY ts_start"
            )
        else:
            rows = self._db.query(
                "SELECT projid, ts_start, ts_end, vid, root_target FROM ts2vid"
                " WHERE projid = ? ORDER BY ts_start",
                (projid,),
            )
        return [Ts2VidRecord(*row) for row in rows]

    def vid_for_tstamp(self, projid: str, tstamp: str) -> str | None:
        """Return the version id whose epoch covers ``tstamp``."""
        row = self._db.query_one(
            "SELECT vid FROM ts2vid WHERE projid = ? AND ts_start <= ? AND ts_end >= ?"
            " ORDER BY ts_start DESC LIMIT 1",
            (projid, tstamp, tstamp),
        )
        return row[0] if row else None

    def latest(self, projid: str) -> Ts2VidRecord | None:
        row = self._db.query_one(
            "SELECT projid, ts_start, ts_end, vid, root_target FROM ts2vid"
            " WHERE projid = ? ORDER BY ts_start DESC LIMIT 1",
            (projid,),
        )
        return Ts2VidRecord(*row) if row else None

    def count(self) -> int:
        return self._db.count("ts2vid")


class ObjectRepository:
    """Access to the ``obj_store`` table holding serialized large objects."""

    def __init__(self, db: RelationalStore):
        self._db = db

    def put(self, record: ObjectRecord) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO obj_store (projid, tstamp, filename, ctx_id, value_name, contents)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (
                record.projid,
                record.tstamp,
                record.filename,
                record.ctx_id,
                record.value_name,
                record.contents,
            ),
        )

    def get(
        self, projid: str, tstamp: str, filename: str, ctx_id: int, value_name: str
    ) -> ObjectRecord | None:
        row = self._db.query_one(
            "SELECT projid, tstamp, filename, ctx_id, value_name, contents FROM obj_store"
            " WHERE projid = ? AND tstamp = ? AND filename = ? AND ctx_id = ? AND value_name = ?",
            (projid, tstamp, filename, ctx_id, value_name),
        )
        return ObjectRecord(*row) if row else None

    def list_keys(self, projid: str, tstamp: str | None = None) -> list[tuple[str, str, int, str]]:
        """Return ``(tstamp, filename, ctx_id, value_name)`` keys for a project."""
        if tstamp is None:
            rows = self._db.query(
                "SELECT tstamp, filename, ctx_id, value_name FROM obj_store WHERE projid = ?"
                " ORDER BY tstamp, filename, ctx_id",
                (projid,),
            )
        else:
            rows = self._db.query(
                "SELECT tstamp, filename, ctx_id, value_name FROM obj_store"
                " WHERE projid = ? AND tstamp = ? ORDER BY filename, ctx_id",
                (projid, tstamp),
            )
        return [(row[0], row[1], row[2], row[3]) for row in rows]

    def count(self) -> int:
        return self._db.count("obj_store")


class BuildDepRepository:
    """Access to the ``build_deps`` table capturing the build DAG per version."""

    def __init__(self, db: RelationalStore):
        self._db = db

    def add(self, record: BuildDepRecord) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO build_deps (vid, target, deps, cmds, cached)"
            " VALUES (?, ?, ?, ?, ?)",
            (record.vid, record.target, record.deps_json(), record.cmds_json(), int(record.cached)),
        )

    def add_many(self, records: Sequence[BuildDepRecord]) -> None:
        self._db.executemany(
            "INSERT OR REPLACE INTO build_deps (vid, target, deps, cmds, cached)"
            " VALUES (?, ?, ?, ?, ?)",
            [
                (r.vid, r.target, r.deps_json(), r.cmds_json(), int(r.cached))
                for r in records
            ],
        )

    def by_vid(self, vid: str) -> list[BuildDepRecord]:
        rows = self._db.query(
            "SELECT vid, target, deps, cmds, cached FROM build_deps WHERE vid = ? ORDER BY target",
            (vid,),
        )
        return [BuildDepRecord.from_row(row) for row in rows]

    def get(self, vid: str, target: str) -> BuildDepRecord | None:
        row = self._db.query_one(
            "SELECT vid, target, deps, cmds, cached FROM build_deps WHERE vid = ? AND target = ?",
            (vid, target),
        )
        return BuildDepRecord.from_row(row) if row else None

    def mark_cached(self, vid: str, target: str, cached: bool = True) -> None:
        self._db.execute(
            "UPDATE build_deps SET cached = ? WHERE vid = ? AND target = ?",
            (int(cached), vid, target),
        )

    def count(self) -> int:
        return self._db.count("build_deps")
