"""SQLite connection management for FlorDB.

A :class:`Database` owns exactly one SQLite connection, configured for
durable-but-fast appends (WAL journal, NORMAL synchronous) and exposing a
transaction context manager.  All SQL in this package is parameterized; no
user-provided string is ever interpolated into a statement.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Sequence

from ..errors import DatabaseError
from .schema import create_schema


class Database:
    """A thin wrapper around an SQLite connection holding the FlorDB schema.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` for an ephemeral database
        (useful in tests and replay sandboxes).
    """

    def __init__(self, path: Path | str = ":memory:"):
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        try:
            self._connection = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as exc:  # pragma: no cover - environment dependent
            raise DatabaseError(f"cannot open database at {self.path}: {exc}") from exc
        self._lock = threading.RLock()
        self._configure()
        create_schema(self._connection)

    def _configure(self) -> None:
        cursor = self._connection.cursor()
        if self.path != ":memory:":
            cursor.execute("PRAGMA journal_mode=WAL")
        cursor.execute("PRAGMA synchronous=NORMAL")
        cursor.execute("PRAGMA foreign_keys=ON")
        cursor.close()

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    @property
    def write_version(self) -> int:
        """Monotonic count of rows written through this handle.

        Backed by ``sqlite3``'s ``total_changes``: every INSERT/UPDATE/DELETE
        committed through this connection advances it, reads never do.  The
        query engine's pivot-view cache uses it as a zero-cost staleness
        probe — any writer sharing this handle (sessions, the ingestion
        queue, replay backfills) is detected without a single SQL statement.
        """
        with self._lock:
            return self._connection.total_changes

    # ----------------------------------------------------------- execution
    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """Run a block atomically; rolls back on any exception."""
        with self._lock:
            try:
                yield self._connection
                self._connection.commit()
            except Exception:
                self._connection.rollback()
                raise

    def execute(self, sql: str, params: Sequence[Any] = ()) -> sqlite3.Cursor:
        with self._lock:
            try:
                cursor = self._connection.execute(sql, tuple(params))
                self._connection.commit()
                return cursor
            except sqlite3.Error as exc:
                raise DatabaseError(f"SQL error: {exc}") from exc

    def executemany(self, sql: str, rows: Sequence[Sequence[Any]]) -> None:
        # Rows pass straight through to sqlite3 (which accepts any sequence);
        # re-materializing them as tuples here would copy every row a second
        # time.  Callers produce tuples exactly once via ``Record.as_row``.
        if not rows:
            return
        with self._lock:
            try:
                self._connection.executemany(sql, rows)
                self._connection.commit()
            except sqlite3.Error as exc:
                raise DatabaseError(f"SQL error: {exc}") from exc

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        with self._lock:
            try:
                return self._connection.execute(sql, tuple(params)).fetchall()
            except sqlite3.Error as exc:
                raise DatabaseError(f"SQL error: {exc}") from exc

    def query_one(self, sql: str, params: Sequence[Any] = ()) -> tuple | None:
        rows = self.query(sql, params)
        return rows[0] if rows else None

    # ------------------------------------------------------------- snapshots
    def snapshot_into(self, target: "Database") -> int:
        """Copy this database's full contents into ``target``, page by page.

        Uses SQLite's online backup API, so the copy is transactionally
        consistent even while this handle keeps serving traffic.  Holds both
        handles' locks for the duration, which makes the returned
        ``write_version`` exactly the version the snapshot corresponds to —
        the replica layer relies on that pairing for its staleness math.

        Note the backup API writes pages directly, bypassing SQL: the
        *target*'s ``total_changes`` (and therefore its ``write_version``)
        does NOT advance.  Consumers caching on the target must be
        invalidated out-of-band (see ``ReplicatedDatabase.on_sync``).
        """
        with self._lock:
            with target._lock:
                try:
                    self._connection.backup(target._connection)
                except sqlite3.Error as exc:
                    raise DatabaseError(f"snapshot failed: {exc}") from exc
            return self._connection.total_changes

    # --------------------------------------------------------------- counts
    def count(self, table: str) -> int:
        from .schema import TABLES

        if table not in TABLES:
            raise DatabaseError(f"unknown table: {table!r}")
        row = self.query_one(f"SELECT COUNT(*) FROM {table}")
        return int(row[0]) if row else 0
