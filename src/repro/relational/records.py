"""Typed row objects for the relational data model.

Each dataclass mirrors one physical table from Figure 1.  Values logged via
``flor.log`` are serialized to text together with a small type tag
(``value_type``) so that the original Python type is restored when the value
is read back into a dataframe.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: value_type tags used in the ``logs`` table.
VALUE_TYPE_STR = 0
VALUE_TYPE_INT = 1
VALUE_TYPE_FLOAT = 2
VALUE_TYPE_BOOL = 3
VALUE_TYPE_JSON = 4
VALUE_TYPE_NONE = 5


def encode_value(value: Any) -> tuple[str | None, int]:
    """Serialize a logged value to ``(text, value_type)``.

    Scalars keep their type tag; anything else is stored as JSON when
    possible and as ``repr`` text otherwise.
    """
    if value is None:
        return None, VALUE_TYPE_NONE
    if isinstance(value, bool):
        return ("1" if value else "0"), VALUE_TYPE_BOOL
    if isinstance(value, int):
        return str(value), VALUE_TYPE_INT
    if isinstance(value, float):
        return repr(value), VALUE_TYPE_FLOAT
    if isinstance(value, str):
        return value, VALUE_TYPE_STR
    try:
        return json.dumps(value, sort_keys=True, default=str), VALUE_TYPE_JSON
    except (TypeError, ValueError):
        return repr(value), VALUE_TYPE_STR


def decode_value(text: str | None, value_type: int) -> Any:
    """Inverse of :func:`encode_value`."""
    if value_type == VALUE_TYPE_NONE or text is None:
        return None
    if value_type == VALUE_TYPE_BOOL:
        return text == "1"
    if value_type == VALUE_TYPE_INT:
        return int(text)
    if value_type == VALUE_TYPE_FLOAT:
        return float(text)
    if value_type == VALUE_TYPE_JSON:
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            return text
    return text


@dataclass(frozen=True)
class LogRecord:
    """One row of ``logs``: a single named value emitted by ``flor.log``."""

    projid: str
    tstamp: str
    filename: str
    ctx_id: int
    value_name: str
    value: str | None
    value_type: int = VALUE_TYPE_STR

    def decoded(self) -> Any:
        return decode_value(self.value, self.value_type)

    def as_row(self) -> tuple:
        """Bind parameters for the ``logs`` INSERT.

        The single record→row conversion shared by the repositories, the
        service ingester and the background flusher, so each record is
        materialized as a tuple exactly once on its way into SQLite.
        """
        return (
            self.projid,
            self.tstamp,
            self.filename,
            self.ctx_id,
            self.value_name,
            self.value,
            self.value_type,
        )

    @classmethod
    def create(
        cls,
        projid: str,
        tstamp: str,
        filename: str,
        ctx_id: int,
        value_name: str,
        value: Any,
    ) -> "LogRecord":
        text, value_type = encode_value(value)
        return cls(projid, tstamp, filename, ctx_id, value_name, text, value_type)


@dataclass(frozen=True)
class LoopRecord:
    """One row of ``loops``: a single iteration of a ``flor.loop``."""

    projid: str
    tstamp: str
    filename: str
    ctx_id: int
    parent_ctx_id: int | None
    loop_name: str
    loop_iteration: int
    iteration_value: str | None

    def as_row(self) -> tuple:
        """Bind parameters for the ``loops`` INSERT (see ``LogRecord.as_row``)."""
        return (
            self.projid,
            self.tstamp,
            self.filename,
            self.ctx_id,
            self.parent_ctx_id,
            self.loop_name,
            self.loop_iteration,
            self.iteration_value,
        )


@dataclass(frozen=True)
class Ts2VidRecord:
    """One row of ``ts2vid``: a timestamp epoch mapped to a version id."""

    projid: str
    ts_start: str
    ts_end: str
    vid: str
    root_target: str | None = None


@dataclass(frozen=True)
class ObjectRecord:
    """One row of ``obj_store``: a serialized large object (e.g. checkpoint)."""

    projid: str
    tstamp: str
    filename: str
    ctx_id: int
    value_name: str
    contents: bytes = field(repr=False, default=b"")


#: Job lifecycle states (``jobs.state``).  ``queued`` rows are claimable;
#: ``leased``/``running`` rows are owned by a worker under a lease;
#: ``succeeded``/``failed``/``cancelled`` are terminal (``retry`` re-queues).
JOB_QUEUED = "queued"
JOB_LEASED = "leased"
JOB_RUNNING = "running"
JOB_SUCCEEDED = "succeeded"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
JOB_STATES = (JOB_QUEUED, JOB_LEASED, JOB_RUNNING, JOB_SUCCEEDED, JOB_FAILED, JOB_CANCELLED)
JOB_TERMINAL_STATES = (JOB_SUCCEEDED, JOB_FAILED, JOB_CANCELLED)


def _loads_or_empty(text: str | None) -> dict:
    if not text:
        return {}
    try:
        loaded = json.loads(text)
    except json.JSONDecodeError:
        return {}
    return loaded if isinstance(loaded, dict) else {}


@dataclass(frozen=True)
class JobRecord:
    """One row of ``jobs``: a durable unit of supervised background work."""

    id: int
    project: str
    kind: str
    payload: dict
    state: str
    priority: int = 0
    attempts: int = 0
    max_attempts: int = 3
    not_before: float = 0.0
    cancel_requested: bool = False
    lease_owner: str | None = None
    lease_expires: float | None = None
    created_at: float = 0.0
    updated_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: dict | None = None

    #: SELECT column order mirrored by :meth:`from_row`.
    COLUMNS = (
        "id", "project", "kind", "payload", "state", "priority", "attempts",
        "max_attempts", "not_before", "cancel_requested", "lease_owner",
        "lease_expires", "created_at", "updated_at", "started_at",
        "finished_at", "error", "result",
    )

    @property
    def terminal(self) -> bool:
        return self.state in JOB_TERMINAL_STATES

    @classmethod
    def from_row(cls, row: tuple) -> "JobRecord":
        (
            id_, project, kind, payload, state, priority, attempts, max_attempts,
            not_before, cancel_requested, lease_owner, lease_expires,
            created_at, updated_at, started_at, finished_at, error, result,
        ) = row
        return cls(
            id=int(id_),
            project=project,
            kind=kind,
            payload=_loads_or_empty(payload),
            state=state,
            priority=int(priority),
            attempts=int(attempts),
            max_attempts=int(max_attempts),
            not_before=float(not_before),
            cancel_requested=bool(cancel_requested),
            lease_owner=lease_owner,
            lease_expires=None if lease_expires is None else float(lease_expires),
            created_at=float(created_at),
            updated_at=float(updated_at),
            started_at=None if started_at is None else float(started_at),
            finished_at=None if finished_at is None else float(finished_at),
            error=error,
            result=None if result is None else _loads_or_empty(result),
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe view served by the HTTP API and printed by the CLI."""
        return {
            "id": self.id,
            "project": self.project,
            "kind": self.kind,
            "payload": self.payload,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "cancel_requested": self.cancel_requested,
            "lease_owner": self.lease_owner,
            "lease_expires": self.lease_expires,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "result": self.result,
        }


@dataclass(frozen=True)
class JobEventRecord:
    """One row of ``job_events``: an append-only entry in a job's trail."""

    seq: int
    job_id: int
    kind: str
    payload: dict
    created_at: float = 0.0

    @classmethod
    def from_row(cls, row: tuple) -> "JobEventRecord":
        seq, job_id, kind, payload, created_at = row
        return cls(
            seq=int(seq),
            job_id=int(job_id),
            kind=kind,
            payload=_loads_or_empty(payload),
            created_at=float(created_at),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "job_id": self.job_id,
            "kind": self.kind,
            "payload": self.payload,
            "created_at": self.created_at,
        }


@dataclass(frozen=True)
class BuildDepRecord:
    """One row of ``build_deps``: a build target captured at a version."""

    vid: str
    target: str
    deps: tuple[str, ...] = ()
    cmds: tuple[str, ...] = ()
    cached: bool = False

    def deps_json(self) -> str:
        return json.dumps(list(self.deps))

    def cmds_json(self) -> str:
        return json.dumps(list(self.cmds))

    @classmethod
    def from_row(cls, row: tuple) -> "BuildDepRecord":
        vid, target, deps, cmds, cached = row
        return cls(
            vid=vid,
            target=target,
            deps=tuple(json.loads(deps)),
            cmds=tuple(json.loads(cmds)),
            cached=bool(cached),
        )
