"""Typed row objects for the relational data model.

Each dataclass mirrors one physical table from Figure 1.  Values logged via
``flor.log`` are serialized to text together with a small type tag
(``value_type``) so that the original Python type is restored when the value
is read back into a dataframe.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: value_type tags used in the ``logs`` table.
VALUE_TYPE_STR = 0
VALUE_TYPE_INT = 1
VALUE_TYPE_FLOAT = 2
VALUE_TYPE_BOOL = 3
VALUE_TYPE_JSON = 4
VALUE_TYPE_NONE = 5


def encode_value(value: Any) -> tuple[str | None, int]:
    """Serialize a logged value to ``(text, value_type)``.

    Scalars keep their type tag; anything else is stored as JSON when
    possible and as ``repr`` text otherwise.
    """
    if value is None:
        return None, VALUE_TYPE_NONE
    if isinstance(value, bool):
        return ("1" if value else "0"), VALUE_TYPE_BOOL
    if isinstance(value, int):
        return str(value), VALUE_TYPE_INT
    if isinstance(value, float):
        return repr(value), VALUE_TYPE_FLOAT
    if isinstance(value, str):
        return value, VALUE_TYPE_STR
    try:
        return json.dumps(value, sort_keys=True, default=str), VALUE_TYPE_JSON
    except (TypeError, ValueError):
        return repr(value), VALUE_TYPE_STR


def decode_value(text: str | None, value_type: int) -> Any:
    """Inverse of :func:`encode_value`."""
    if value_type == VALUE_TYPE_NONE or text is None:
        return None
    if value_type == VALUE_TYPE_BOOL:
        return text == "1"
    if value_type == VALUE_TYPE_INT:
        return int(text)
    if value_type == VALUE_TYPE_FLOAT:
        return float(text)
    if value_type == VALUE_TYPE_JSON:
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            return text
    return text


@dataclass(frozen=True)
class LogRecord:
    """One row of ``logs``: a single named value emitted by ``flor.log``."""

    projid: str
    tstamp: str
    filename: str
    ctx_id: int
    value_name: str
    value: str | None
    value_type: int = VALUE_TYPE_STR

    def decoded(self) -> Any:
        return decode_value(self.value, self.value_type)

    def as_row(self) -> tuple:
        """Bind parameters for the ``logs`` INSERT.

        The single record→row conversion shared by the repositories, the
        service ingester and the background flusher, so each record is
        materialized as a tuple exactly once on its way into SQLite.
        """
        return (
            self.projid,
            self.tstamp,
            self.filename,
            self.ctx_id,
            self.value_name,
            self.value,
            self.value_type,
        )

    @classmethod
    def create(
        cls,
        projid: str,
        tstamp: str,
        filename: str,
        ctx_id: int,
        value_name: str,
        value: Any,
    ) -> "LogRecord":
        text, value_type = encode_value(value)
        return cls(projid, tstamp, filename, ctx_id, value_name, text, value_type)


@dataclass(frozen=True)
class LoopRecord:
    """One row of ``loops``: a single iteration of a ``flor.loop``."""

    projid: str
    tstamp: str
    filename: str
    ctx_id: int
    parent_ctx_id: int | None
    loop_name: str
    loop_iteration: int
    iteration_value: str | None

    def as_row(self) -> tuple:
        """Bind parameters for the ``loops`` INSERT (see ``LogRecord.as_row``)."""
        return (
            self.projid,
            self.tstamp,
            self.filename,
            self.ctx_id,
            self.parent_ctx_id,
            self.loop_name,
            self.loop_iteration,
            self.iteration_value,
        )


@dataclass(frozen=True)
class Ts2VidRecord:
    """One row of ``ts2vid``: a timestamp epoch mapped to a version id."""

    projid: str
    ts_start: str
    ts_end: str
    vid: str
    root_target: str | None = None


@dataclass(frozen=True)
class ObjectRecord:
    """One row of ``obj_store``: a serialized large object (e.g. checkpoint)."""

    projid: str
    tstamp: str
    filename: str
    ctx_id: int
    value_name: str
    contents: bytes = field(repr=False, default=b"")


@dataclass(frozen=True)
class BuildDepRecord:
    """One row of ``build_deps``: a build target captured at a version."""

    vid: str
    target: str
    deps: tuple[str, ...] = ()
    cmds: tuple[str, ...] = ()
    cached: bool = False

    def deps_json(self) -> str:
        return json.dumps(list(self.deps))

    def cmds_json(self) -> str:
        return json.dumps(list(self.cmds))

    @classmethod
    def from_row(cls, row: tuple) -> "BuildDepRecord":
        vid, target, deps, cmds, cached = row
        return cls(
            vid=vid,
            target=target,
            deps=tuple(json.loads(deps)),
            cmds=tuple(json.loads(cmds)),
            cached=bool(cached),
        )
