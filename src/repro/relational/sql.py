"""SQL access to FlorDB context ("queried via Pandas or SQL", §1.2).

Two complementary surfaces:

* :func:`run_sql` — run a read-only SQL statement directly against the
  physical tables (``logs``, ``loops``, ``ts2vid``, ``obj_store``,
  ``build_deps``) and get a mini DataFrame back.
* :func:`register_pivot_view` / :func:`sql_over_names` — materialize the
  pivoted view of chosen log names as a temporary table named ``pivot`` so
  that run-level questions ("which run had the best recall?") are one
  ``SELECT`` away, mirroring how the paper positions the relational model.

Only statements that begin with ``SELECT`` or ``WITH`` are accepted; the
context store is append-only from the query surface.
"""

from __future__ import annotations

import re
import sqlite3
from typing import Any, Sequence

from ..dataframe import DataFrame, from_records
from ..errors import DatabaseError
from .database import Database

_READ_ONLY_RE = re.compile(r"^\s*(SELECT|WITH)\b", re.IGNORECASE)
_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_READ_ONLY_MESSAGE = "only SELECT/WITH statements may be run against the context store"

#: Authorizer action codes that a read-only statement may perform.  The
#: prefix regex alone is not enough — ``WITH t AS (SELECT 1) DELETE ...``
#: begins with WITH but mutates — so statement compilation is checked too.
_READ_ONLY_ACTIONS = {
    sqlite3.SQLITE_SELECT,
    sqlite3.SQLITE_READ,
    sqlite3.SQLITE_FUNCTION,
    getattr(sqlite3, "SQLITE_RECURSIVE", 33),
}


def _read_only_authorizer(action: int, *_args: Any) -> int:
    return sqlite3.SQLITE_OK if action in _READ_ONLY_ACTIONS else sqlite3.SQLITE_DENY


def _require_read_only(sql: str) -> None:
    if not _READ_ONLY_RE.match(sql):
        raise DatabaseError(_READ_ONLY_MESSAGE)


def run_sql(db: Database, sql: str, params: Sequence[Any] = ()) -> DataFrame:
    """Run a read-only SQL statement and return the result as a DataFrame.

    Read-only is enforced twice: a cheap prefix check for a friendly error,
    then an SQLite authorizer during compilation that denies every action
    other than reading (catching writes smuggled past the prefix, e.g.
    ``WITH ... DELETE``).  SQLite errors — including authorizer denials and
    malformed statements — surface as :class:`~repro.errors.DatabaseError`.
    """
    _require_read_only(sql)
    try:
        with db.transaction() as connection:
            connection.set_authorizer(_read_only_authorizer)
            try:
                cursor = connection.execute(sql, tuple(params))
                columns = [description[0] for description in cursor.description or []]
                rows = cursor.fetchall()
            finally:
                connection.set_authorizer(None)
    except sqlite3.Error as exc:
        if "not authorized" in str(exc):
            raise DatabaseError(_READ_ONLY_MESSAGE) from exc
        raise DatabaseError(f"SQL error: {exc}") from exc
    return from_records((dict(zip(columns, row)) for row in rows), columns=columns)


def _quote_identifier(name: str) -> str:
    """Validate and quote a column name derived from a log value name."""
    if not _IDENTIFIER_RE.match(name):
        raise DatabaseError(
            f"log name {name!r} cannot be used as a SQL column; "
            "use letters, digits and underscores"
        )
    return f'"{name}"'


def register_pivot_view(
    db: Database,
    projid: str,
    names: Sequence[str],
    table_name: str = "pivot",
    frame: DataFrame | None = None,
) -> list[str]:
    """Materialize the pivoted view of ``names`` into a temporary table.

    Returns the column names of the created table.  The table lives in the
    connection's temp schema, so it never dirties the durable database and
    is rebuilt on demand.  ``frame`` supplies a pre-built pivot — the query
    engine passes its cached view here so SQL reads share the materialized
    views instead of re-pivoting.
    """
    from ..core.dataframe_view import build_dataframe

    if not _IDENTIFIER_RE.match(table_name):
        raise DatabaseError(f"invalid table name: {table_name!r}")
    if frame is None:
        frame = build_dataframe(db, projid, list(names))
    columns = frame.columns or ["projid", "tstamp", "filename", *names]
    quoted = [_quote_identifier(c) for c in columns]
    with db.transaction() as connection:
        connection.execute(f"DROP TABLE IF EXISTS temp.{table_name}")
        # NUMERIC affinity lets SQLite treat numeric-looking log values as
        # numbers (so MAX(recall) compares 0.9 > 0.85, not lexicographically).
        connection.execute(
            f"CREATE TEMP TABLE {table_name} ({', '.join(f'{c} NUMERIC' for c in quoted)})"
        )
        if len(frame):
            placeholders = ", ".join("?" for _ in columns)
            connection.executemany(
                f"INSERT INTO {table_name} ({', '.join(quoted)}) VALUES ({placeholders})",
                [
                    tuple(_sqlite_value(row.get(c)) for c in columns)
                    for row in frame.to_records()
                ],
            )
    return columns


def _sqlite_value(value: Any) -> Any:
    """Coerce a pivoted cell to something SQLite can bind (scalars pass through)."""
    if value is None or isinstance(value, (int, float, str, bytes)):
        return value
    if isinstance(value, bool):  # pragma: no cover - bool is an int subclass
        return int(value)
    return str(value)


def sql_over_names(
    db: Database,
    projid: str,
    names: Sequence[str],
    sql: str,
    params: Sequence[Any] = (),
    table_name: str = "pivot",
    frame: DataFrame | None = None,
) -> DataFrame:
    """Materialize the pivoted view of ``names`` and run ``sql`` against it.

    The statement refers to the view by ``table_name`` (default ``pivot``);
    ``frame`` optionally supplies the pivot (see :func:`register_pivot_view`)::

        sql_over_names(db, "proj", ["acc", "recall"],
                       "SELECT tstamp, MAX(recall) AS best FROM pivot GROUP BY tstamp")
    """
    _require_read_only(sql)
    register_pivot_view(db, projid, names, table_name, frame=frame)
    return run_sql(db, sql, params)
