"""Higher-level query shapes over the relational data model.

The central export is :func:`long_format_records`, which joins ``logs`` with
the ``loops`` table to annotate every log record with its loop dimensions
(document, page, epoch, step, ...).  The pivoted user-facing view built on
top of it lives in :mod:`repro.core.dataframe_view`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..dataframe import DataFrame, from_records
from .database import Database
from .records import LoopRecord, decode_value
from .repositories import LogRepository, LoopRepository, Ts2VidRepository

#: Reserved dimension columns that always appear in the pivoted view.
BASE_DIMENSIONS = ("projid", "tstamp", "filename")


@dataclass
class AnnotatedLog:
    """A log record joined with its loop-dimension ancestry.

    ``dimensions`` maps loop name to iteration index and ``dimension_values``
    maps ``<loop_name>_value`` to the stringified iteration value, ordered
    from the outermost loop inward.
    """

    projid: str
    tstamp: str
    filename: str
    ctx_id: int
    value_name: str
    value: Any
    dimensions: dict[str, int] = field(default_factory=dict)
    dimension_values: dict[str, Any] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return len(self.dimensions)

    def dimension_key(self) -> tuple:
        """Hashable key of the record's loop position (outermost first)."""
        return tuple(self.dimensions.items())

    def as_row(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "projid": self.projid,
            "tstamp": self.tstamp,
            "filename": self.filename,
            "ctx_id": self.ctx_id,
            "value_name": self.value_name,
            "value": self.value,
        }
        row.update(self.dimensions)
        row.update(self.dimension_values)
        return row


def _loop_ancestry(
    loops_by_ctx: dict[int, LoopRecord], ctx_id: int
) -> list[LoopRecord]:
    """Return the loop chain for ``ctx_id`` from outermost to innermost."""
    chain: list[LoopRecord] = []
    seen: set[int] = set()
    current = loops_by_ctx.get(ctx_id)
    while current is not None and current.ctx_id not in seen:
        chain.append(current)
        seen.add(current.ctx_id)
        parent = current.parent_ctx_id
        current = loops_by_ctx.get(parent) if parent is not None else None
    chain.reverse()
    return chain


def long_format_records(
    db: Database,
    projid: str,
    value_names: Sequence[str] | None = None,
) -> list[AnnotatedLog]:
    """Join logs with loop dimensions, producing one annotated row per record.

    ``value_names`` of ``None`` returns all logged names.  ``ctx_id`` 0 means
    "logged outside any loop" and yields empty dimensions.
    """
    log_repo = LogRepository(db)
    loop_repo = LoopRepository(db)
    logs = (
        log_repo.all(projid)
        if value_names is None
        else log_repo.by_names(projid, list(value_names))
    )
    loops_index: dict[tuple[str, str], dict[int, LoopRecord]] = {}
    for loop in loop_repo.all(projid):
        loops_index.setdefault((loop.tstamp, loop.filename), {})[loop.ctx_id] = loop

    annotated: list[AnnotatedLog] = []
    for record in logs:
        loops_by_ctx = loops_index.get((record.tstamp, record.filename), {})
        chain = _loop_ancestry(loops_by_ctx, record.ctx_id)
        dimensions = {loop.loop_name: loop.loop_iteration for loop in chain}
        dimension_values = {
            f"{loop.loop_name}_value": loop.iteration_value for loop in chain
        }
        annotated.append(
            AnnotatedLog(
                projid=record.projid,
                tstamp=record.tstamp,
                filename=record.filename,
                ctx_id=record.ctx_id,
                value_name=record.value_name,
                value=decode_value(record.value, record.value_type),
                dimensions=dimensions,
                dimension_values=dimension_values,
            )
        )
    return annotated


def long_format_frame(
    db: Database, projid: str, value_names: Sequence[str] | None = None
) -> DataFrame:
    """Long-format DataFrame view of :func:`long_format_records`."""
    records = long_format_records(db, projid, value_names)
    return from_records([r.as_row() for r in records])


def git_view(versioning_repository: Any) -> DataFrame:
    """Materialize the virtual ``git`` table of Figure 1.

    Columns: ``vid``, ``filename``, ``parent_vid``, ``contents``.  The rows
    come from the content-addressed version store rather than SQLite, which
    is what makes the table "virtual" in the paper's data model.
    """
    rows: list[dict[str, Any]] = []
    for commit in versioning_repository.log():
        parent = commit.parent_vid
        for filename in sorted(commit.files):
            rows.append(
                {
                    "vid": commit.vid,
                    "filename": filename,
                    "parent_vid": parent,
                    "contents": versioning_repository.read_file(commit.vid, filename),
                }
            )
    return from_records(rows, columns=["vid", "filename", "parent_vid", "contents"])


def latest(frame: DataFrame, column: str = "tstamp") -> DataFrame:
    """Rows belonging to the most recent timestamp present in ``frame``.

    This is ``flor.utils.latest`` from the paper's Figure 6: given a frame
    spanning several runs, keep only the rows of the latest run.
    """
    if frame.empty or column not in frame:
        return frame
    maximum = frame[column].max()
    if maximum is None:
        return frame
    return frame[frame[column] == maximum]


def distinct_versions(db: Database, projid: str) -> list[str]:
    """All version ids recorded for a project, oldest first."""
    return [record.vid for record in Ts2VidRepository(db).all(projid)]
