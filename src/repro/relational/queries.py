"""Higher-level query shapes over the relational data model.

The central export is :func:`long_format_records`, which joins ``logs`` with
the ``loops`` table to annotate every log record with its loop dimensions
(document, page, epoch, step, ...).  The pivoted user-facing view built on
top of it lives in :mod:`repro.core.dataframe_view`.

Filtering is pushed down into SQLite: the value-name set, timestamp range
and ``seq`` bounds narrow the ``logs`` scan through the covering indexes of
:mod:`repro.relational.schema`, and only the loop rows of *touched* runs are
fetched (a join against the distinct ``(tstamp, filename)`` pairs of the
filtered logs) instead of every loop ever recorded.  The ``seq``/``rowid``
watermark helpers at the bottom let the materialized pivot-view cache of
:mod:`repro.query` detect and fetch just the appended delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..dataframe import DataFrame, from_records
from ..storage.protocols import RelationalStore
from .records import LoopRecord, decode_value
from .repositories import Ts2VidRepository

#: Reserved dimension columns that always appear in the pivoted view.
BASE_DIMENSIONS = ("projid", "tstamp", "filename")


@dataclass
class AnnotatedLog:
    """A log record joined with its loop-dimension ancestry.

    ``dimensions`` maps loop name to iteration index and ``dimension_values``
    maps ``<loop_name>_value`` to the stringified iteration value, ordered
    from the outermost loop inward.
    """

    projid: str
    tstamp: str
    filename: str
    ctx_id: int
    value_name: str
    value: Any
    dimensions: dict[str, int] = field(default_factory=dict)
    dimension_values: dict[str, Any] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return len(self.dimensions)

    def dimension_key(self) -> tuple:
        """Hashable key of the record's loop position (outermost first)."""
        return tuple(self.dimensions.items())

    def as_row(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "projid": self.projid,
            "tstamp": self.tstamp,
            "filename": self.filename,
            "ctx_id": self.ctx_id,
            "value_name": self.value_name,
            "value": self.value,
        }
        row.update(self.dimensions)
        row.update(self.dimension_values)
        return row


def _loop_ancestry(
    loops_by_ctx: dict[int, LoopRecord], ctx_id: int
) -> list[LoopRecord]:
    """Return the loop chain for ``ctx_id`` from outermost to innermost."""
    chain: list[LoopRecord] = []
    seen: set[int] = set()
    current = loops_by_ctx.get(ctx_id)
    while current is not None and current.ctx_id not in seen:
        chain.append(current)
        seen.add(current.ctx_id)
        parent = current.parent_ctx_id
        current = loops_by_ctx.get(parent) if parent is not None else None
    chain.reverse()
    return chain


def _logs_where(
    projid: str,
    value_names: Sequence[str] | None,
    tstamp_range: tuple[str | None, str | None] | None,
    min_seq: int | None,
    max_seq: int | None,
    run_keys: Sequence[tuple[str, str]] | None,
) -> tuple[str, list[Any]]:
    """WHERE clause + bind parameters shared by the log scan and the run join."""
    clauses = ["projid = ?"]
    params: list[Any] = [projid]
    if value_names is not None:
        placeholders = ",".join("?" for _ in value_names)
        clauses.append(f"value_name IN ({placeholders})")
        params.extend(value_names)
    if tstamp_range is not None:
        since, until = tstamp_range
        if since is not None:
            clauses.append("tstamp >= ?")
            params.append(since)
        if until is not None:
            clauses.append("tstamp <= ?")
            params.append(until)
    if min_seq is not None:
        clauses.append("seq > ?")
        params.append(min_seq)
    if max_seq is not None:
        clauses.append("seq <= ?")
        params.append(max_seq)
    if run_keys is not None:
        rows = ",".join("(?, ?)" for _ in run_keys)
        clauses.append(f"(tstamp, filename) IN (VALUES {rows})")
        for tstamp, filename in run_keys:
            params.extend((tstamp, filename))
    return " AND ".join(clauses), params


def long_format_records(
    db: RelationalStore,
    projid: str,
    value_names: Sequence[str] | None = None,
    *,
    tstamp_range: tuple[str | None, str | None] | None = None,
    min_seq: int | None = None,
    max_seq: int | None = None,
    run_keys: Sequence[tuple[str, str]] | None = None,
) -> list[AnnotatedLog]:
    """Join logs with loop dimensions, producing one annotated row per record.

    ``value_names`` of ``None`` returns all logged names.  ``ctx_id`` 0 means
    "logged outside any loop" and yields empty dimensions.

    All keyword filters are pushed down into SQLite rather than applied to
    Python objects: ``tstamp_range`` is a ``(since, until)`` pair of
    inclusive bounds (either side may be ``None``), ``min_seq``/``max_seq``
    bound the ``logs.seq`` rowid (exclusive / inclusive — the delta-read
    shape used by the pivot-view cache), and ``run_keys`` restricts the scan
    to the given ``(tstamp, filename)`` runs.  Only the loop rows of runs
    actually touched by the filtered logs are fetched for annotation.
    """
    if value_names is not None and not value_names:
        return []
    if run_keys is not None and not run_keys:
        return []  # an empty run set selects nothing (and "IN (VALUES )" is not SQL)
    value_names = None if value_names is None else [str(n) for n in value_names]
    where, params = _logs_where(projid, value_names, tstamp_range, min_seq, max_seq, run_keys)
    log_rows = db.query(
        "SELECT projid, tstamp, filename, ctx_id, value_name, value, value_type"
        f" FROM logs WHERE {where} ORDER BY seq",
        params,
    )
    if not log_rows:
        return []
    # Ancestry join pushed into SQLite: only the loop rows belonging to runs
    # present in the filtered logs come back, served by idx_loops_ancestry.
    loop_rows = db.query(
        "SELECT l.tstamp, l.filename, l.ctx_id, l.parent_ctx_id, l.loop_name,"
        " l.loop_iteration, l.iteration_value"
        " FROM loops AS l"
        f" JOIN (SELECT DISTINCT tstamp, filename FROM logs WHERE {where}) AS runs"
        " ON runs.tstamp = l.tstamp AND runs.filename = l.filename"
        " WHERE l.projid = ?",
        [*params, projid],
    )
    loops_index: dict[tuple[str, str], dict[int, LoopRecord]] = {}
    for tstamp, filename, ctx_id, parent, loop_name, iteration, value in loop_rows:
        loops_index.setdefault((tstamp, filename), {})[ctx_id] = LoopRecord(
            projid=projid,
            tstamp=tstamp,
            filename=filename,
            ctx_id=ctx_id,
            parent_ctx_id=parent,
            loop_name=loop_name,
            loop_iteration=iteration,
            iteration_value=value,
        )

    annotated: list[AnnotatedLog] = []
    for _projid, tstamp, filename, ctx_id, value_name, value, value_type in log_rows:
        loops_by_ctx = loops_index.get((tstamp, filename), {})
        chain = _loop_ancestry(loops_by_ctx, ctx_id)
        dimensions = {loop.loop_name: loop.loop_iteration for loop in chain}
        dimension_values = {
            f"{loop.loop_name}_value": loop.iteration_value for loop in chain
        }
        annotated.append(
            AnnotatedLog(
                projid=_projid,
                tstamp=tstamp,
                filename=filename,
                ctx_id=ctx_id,
                value_name=value_name,
                value=decode_value(value, value_type),
                dimensions=dimensions,
                dimension_values=dimension_values,
            )
        )
    return annotated


def long_format_frame(
    db: RelationalStore, projid: str, value_names: Sequence[str] | None = None
) -> DataFrame:
    """Long-format DataFrame view of :func:`long_format_records`."""
    records = long_format_records(db, projid, value_names)
    return from_records([r.as_row() for r in records])


# ---------------------------------------------------------------------------
# Watermarks (used by repro.query's materialized pivot-view cache)
# ---------------------------------------------------------------------------

def log_watermark(db: RelationalStore, projid: str) -> int:
    """Monotonic upper bound on the project's ``logs.seq`` (0 when empty).

    ``seq`` is an AUTOINCREMENT rowid, so it grows monotonically and a cached
    view annotated up to seq ``w`` is refreshed by reading ``seq > w``.  The
    probe is deliberately **database-global**: ``MAX(seq)`` without a projid
    filter is a single B-tree edge seek (SQLite's min/max optimization),
    while the per-project maximum would scan the project's whole index
    range.  A write to another project sharing the database can therefore
    advance the bound spuriously — the refresh it triggers finds an empty
    projid-filtered delta and is cheap; in the sharded service each project
    owns its database, so the bound is exact there.
    """
    row = db.query_one("SELECT COALESCE(MAX(seq), 0) FROM logs")
    return int(row[0]) if row else 0


def loop_watermark(db: RelationalStore, projid: str) -> int:
    """Monotonic upper bound on the project's ``loops.rowid`` (0 when empty).

    ``INSERT OR REPLACE`` rewrites a loop row under a *new* rowid, so this
    watermark advances on replacement too — exactly the writes that can
    change the ancestry of already-cached log records.  Database-global for
    the same O(1)-seek reason as :func:`log_watermark`.
    """
    row = db.query_one("SELECT COALESCE(MAX(rowid), 0) FROM loops")
    return int(row[0]) if row else 0


def runs_touched_since(db: RelationalStore, projid: str, loop_rowid: int) -> set[tuple[str, str]]:
    """Distinct ``(tstamp, filename)`` runs with loop rows newer than the watermark."""
    rows = db.query(
        "SELECT DISTINCT tstamp, filename FROM loops WHERE projid = ? AND rowid > ?",
        (projid, loop_rowid),
    )
    return {(row[0], row[1]) for row in rows}


def git_view(versioning_repository: Any) -> DataFrame:
    """Materialize the virtual ``git`` table of Figure 1.

    Columns: ``vid``, ``filename``, ``parent_vid``, ``contents``.  The rows
    come from the content-addressed version store rather than SQLite, which
    is what makes the table "virtual" in the paper's data model.
    """
    rows: list[dict[str, Any]] = []
    for commit in versioning_repository.log():
        parent = commit.parent_vid
        for filename in sorted(commit.files):
            rows.append(
                {
                    "vid": commit.vid,
                    "filename": filename,
                    "parent_vid": parent,
                    "contents": versioning_repository.read_file(commit.vid, filename),
                }
            )
    return from_records(rows, columns=["vid", "filename", "parent_vid", "contents"])


def latest(frame: DataFrame, column: str = "tstamp") -> DataFrame:
    """Rows belonging to the most recent timestamp present in ``frame``.

    This is ``flor.utils.latest`` from the paper's Figure 6: given a frame
    spanning several runs, keep only the rows of the latest run.
    """
    if frame.empty or column not in frame:
        return frame
    maximum = frame[column].max()
    if maximum is None:
        return frame
    return frame[frame[column] == maximum]


def distinct_versions(db: RelationalStore, projid: str) -> list[str]:
    """All version ids recorded for a project, oldest first."""
    return [record.vid for record in Ts2VidRepository(db).all(projid)]
