"""Mini column-oriented dataframe engine.

Pandas is not available in this environment, so this package provides the
subset of dataframe behaviour that FlorDB's query surface relies on:

* column projection and attribute access (``df["acc"]``, ``df.acc``),
* boolean-mask filtering (``df[df.epoch == 3]``),
* element-wise column arithmetic and comparisons,
* ``isna`` / ``astype`` / ``cumsum`` / ``fillna`` on columns,
* ``sort_values``, ``drop_duplicates``, ``groupby(...).agg(...)``,
* ``merge`` (inner/left joins), ``concat`` and ``pivot``.

The implementation favours clarity over raw speed; benchmark T5 measures its
query latency against growing log volumes.
"""

from .column import Column
from .frame import DataFrame
from .ops import concat, from_records, merge, pivot_logs

__all__ = [
    "Column",
    "DataFrame",
    "concat",
    "from_records",
    "merge",
    "pivot_logs",
]
