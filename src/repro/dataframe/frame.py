"""A small column-oriented DataFrame.

The frame stores columns as :class:`~repro.dataframe.column.Column` objects
keyed by name, with all columns required to have equal length.  Attribute
access resolves to columns (``df.acc``), matching the pandas-flavoured usage
in the FlorDB paper (e.g. ``infer[infer.document_value == name]``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import ColumnNotFoundError, DataFrameError, LengthMismatchError
from .column import Column, _is_missing


class DataFrame:
    """An ordered collection of equal-length named columns."""

    def __init__(self, data: Mapping[str, Iterable[Any]] | None = None):
        self._columns: dict[str, Column] = {}
        self._length = 0
        if data:
            for name, values in data.items():
                self[name] = values if not isinstance(values, Column) else values.to_list()

    # ----------------------------------------------------------------- shape
    @property
    def columns(self) -> list[str]:
        return list(self._columns.keys())

    @property
    def shape(self) -> tuple[int, int]:
        return (self._length, len(self._columns))

    @property
    def empty(self) -> bool:
        return self._length == 0

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_string(max_rows=10)

    # -------------------------------------------------------------- get / set
    def __getattr__(self, name: str) -> Column:
        columns = object.__getattribute__(self, "_columns")
        if name in columns:
            return columns[name]
        raise AttributeError(name)

    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, str):
            if key not in self._columns:
                raise ColumnNotFoundError(key, tuple(self._columns))
            return self._columns[key]
        if isinstance(key, Column):
            mask = [bool(v) and not _is_missing(v) for v in key.to_list()]
            if len(mask) != self._length:
                raise LengthMismatchError(
                    f"boolean mask of length {len(mask)} does not match {self._length} rows"
                )
            indices = [i for i, keep in enumerate(mask) if keep]
            return self.take(indices)
        if isinstance(key, (list, tuple)) and all(isinstance(k, str) for k in key):
            return self.select(list(key))
        if isinstance(key, (list, tuple)) and all(isinstance(k, bool) for k in key):
            indices = [i for i, keep in enumerate(key) if keep]
            return self.take(indices)
        if isinstance(key, slice):
            return self.take(range(*key.indices(self._length)))
        raise DataFrameError(f"unsupported indexer: {key!r}")

    def __setitem__(self, name: str, values: Any) -> None:
        if isinstance(values, Column):
            values = values.to_list()
        elif not isinstance(values, (list, tuple)):
            values = [values] * (self._length if self._columns else 1)
        else:
            values = list(values)
        if self._columns and len(values) != self._length:
            raise LengthMismatchError(
                f"column {name!r} has {len(values)} values; frame has {self._length} rows"
            )
        if not self._columns:
            self._length = len(values)
        self._columns[str(name)] = Column(name, values)

    def get(self, name: str, default: Any = None) -> Any:
        return self._columns.get(name, default)

    # ------------------------------------------------------------ row access
    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a dict keyed by column name."""
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise DataFrameError(f"row index {index} out of range for {self._length} rows")
        return {name: col[index] for name, col in self._columns.items()}

    def itertuples(self) -> Iterator[dict[str, Any]]:
        for i in range(self._length):
            yield self.row(i)

    iterrows = itertuples

    def to_records(self) -> list[dict[str, Any]]:
        """Materialize the frame as a list of row dicts."""
        return [self.row(i) for i in range(self._length)]

    to_dicts = to_records

    def to_dict(self, orient: str = "list") -> dict[str, Any]:
        if orient == "list":
            return {name: col.to_list() for name, col in self._columns.items()}
        if orient == "records":
            return self.to_records()  # type: ignore[return-value]
        raise DataFrameError(f"unsupported orient: {orient!r}")

    # ----------------------------------------------------------- projections
    def select(self, names: Sequence[str]) -> "DataFrame":
        out = DataFrame()
        for name in names:
            if name not in self._columns:
                raise ColumnNotFoundError(name, tuple(self._columns))
            out[name] = self._columns[name].to_list()
        if not names:
            out._length = self._length
        return out

    def drop(self, names: str | Sequence[str]) -> "DataFrame":
        if isinstance(names, str):
            names = [names]
        keep = [c for c in self._columns if c not in set(names)]
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        out = DataFrame()
        for name, col in self._columns.items():
            out[mapping.get(name, name)] = col.to_list()
        return out

    def assign(self, **new_columns: Any) -> "DataFrame":
        out = self.copy()
        for name, values in new_columns.items():
            if callable(values):
                values = values(out)
            out[name] = values
        return out

    def copy(self) -> "DataFrame":
        out = DataFrame()
        for name, col in self._columns.items():
            out[name] = col.to_list()
        out._length = self._length
        return out

    def take(self, indices: Iterable[int]) -> "DataFrame":
        indices = list(indices)
        out = DataFrame()
        for name, col in self._columns.items():
            out[name] = col.take(indices).to_list()
        out._length = len(indices)
        return out

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(range(min(n, self._length)))

    def tail(self, n: int = 5) -> "DataFrame":
        start = max(0, self._length - n)
        return self.take(range(start, self._length))

    # -------------------------------------------------------------- filtering
    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "DataFrame":
        """Keep rows for which ``predicate(row_dict)`` is truthy."""
        indices = [i for i in range(self._length) if predicate(self.row(i))]
        return self.take(indices)

    def dropna(self, subset: Sequence[str] | None = None) -> "DataFrame":
        names = list(subset) if subset else self.columns
        for name in names:
            if name not in self._columns:
                raise ColumnNotFoundError(name, tuple(self._columns))
        indices = [
            i
            for i in range(self._length)
            if not any(_is_missing(self._columns[name][i]) for name in names)
        ]
        return self.take(indices)

    def fillna(self, value: Any) -> "DataFrame":
        out = DataFrame()
        for name, col in self._columns.items():
            out[name] = col.fillna(value).to_list()
        out._length = self._length
        return out

    def drop_duplicates(self, subset: Sequence[str] | None = None, keep: str = "first") -> "DataFrame":
        names = list(subset) if subset else self.columns
        seen: dict[tuple, int] = {}
        order = range(self._length) if keep == "first" else range(self._length - 1, -1, -1)
        for i in order:
            key = tuple(repr(self._columns[name][i]) for name in names)
            seen.setdefault(key, i)
        kept = sorted(seen.values())
        return self.take(kept)

    # ---------------------------------------------------------------- sorting
    def sort_values(self, by: str | Sequence[str], ascending: bool = True) -> "DataFrame":
        names = [by] if isinstance(by, str) else list(by)
        for name in names:
            if name not in self._columns:
                raise ColumnNotFoundError(name, tuple(self._columns))

        def key(idx: int) -> tuple:
            parts = []
            for name in names:
                value = self._columns[name][idx]
                parts.append((1, "") if _is_missing(value) else (0, value))
            return tuple(parts)

        order = sorted(range(self._length), key=key, reverse=not ascending)
        return self.take(order)

    # --------------------------------------------------------------- groupby
    def groupby(self, by: str | Sequence[str]) -> "GroupBy":
        names = [by] if isinstance(by, str) else list(by)
        for name in names:
            if name not in self._columns:
                raise ColumnNotFoundError(name, tuple(self._columns))
        return GroupBy(self, names)

    # ---------------------------------------------------------------- display
    def to_string(self, max_rows: int = 30) -> str:
        """Render a fixed-width table, truncated to ``max_rows`` rows."""
        names = self.columns
        if not names:
            return "DataFrame(empty)"
        rows = [self.row(i) for i in range(min(self._length, max_rows))]
        rendered = [[str("" if _is_missing(r[n]) else r[n]) for n in names] for r in rows]
        widths = [
            max(len(names[j]), *(len(row[j]) for row in rendered)) if rendered else len(names[j])
            for j in range(len(names))
        ]
        header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
        lines = [header, "  ".join("-" * w for w in widths)]
        for row in rendered:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if self._length > max_rows:
            lines.append(f"... ({self._length} rows total)")
        return "\n".join(lines)

    # --------------------------------------------------------------- equality
    def equals(self, other: "DataFrame") -> bool:
        if not isinstance(other, DataFrame):
            return False
        if self.columns != other.columns or len(self) != len(other):
            return False
        return all(self._columns[name].equals(other._columns[name]) for name in self.columns)


class GroupBy:
    """Grouped view over a DataFrame, produced by :meth:`DataFrame.groupby`."""

    def __init__(self, frame: DataFrame, by: list[str]):
        self._frame = frame
        self._by = by
        self._groups: dict[tuple, list[int]] = {}
        for i in range(len(frame)):
            key = tuple(frame[name][i] for name in by)
            self._groups.setdefault(key, []).append(i)

    def __len__(self) -> int:
        return len(self._groups)

    def groups(self) -> dict[tuple, list[int]]:
        return {key: list(idx) for key, idx in self._groups.items()}

    def __iter__(self) -> Iterator[tuple[tuple, DataFrame]]:
        for key, indices in self._groups.items():
            yield key, self._frame.take(indices)

    def agg(self, spec: Mapping[str, str | Callable[[Column], Any]]) -> DataFrame:
        """Aggregate columns per group.

        ``spec`` maps column name to either the name of a Column reduction
        (``"mean"``, ``"sum"``, ``"min"``, ``"max"``, ``"count"``, ``"nunique"``,
        ``"first"``, ``"last"``) or a callable receiving the group's Column.
        """
        out: dict[str, list[Any]] = {name: [] for name in self._by}
        for column in spec:
            out[column] = []
        for key, indices in self._groups.items():
            for name, part in zip(self._by, key):
                out[name].append(part)
            for column, how in spec.items():
                if column not in self._frame:
                    raise ColumnNotFoundError(column, tuple(self._frame.columns))
                group_col = self._frame[column].take(indices)
                if callable(how):
                    out[column].append(how(group_col))
                elif how == "first":
                    out[column].append(group_col[0] if len(group_col) else None)
                elif how == "last":
                    out[column].append(group_col[len(group_col) - 1] if len(group_col) else None)
                elif how in {"mean", "sum", "min", "max", "count", "nunique", "any", "all"}:
                    out[column].append(getattr(group_col, how)())
                else:
                    raise DataFrameError(f"unsupported aggregation: {how!r}")
        return DataFrame(out)

    def size(self) -> DataFrame:
        out: dict[str, list[Any]] = {name: [] for name in self._by}
        out["size"] = []
        for key, indices in self._groups.items():
            for name, part in zip(self._by, key):
                out[name].append(part)
            out["size"].append(len(indices))
        return DataFrame(out)
