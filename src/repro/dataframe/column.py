"""A one-dimensional, named column of values.

:class:`Column` is the element-wise half of the mini dataframe engine.  It is
deliberately list-backed (not NumPy) so that heterogeneous log values —
strings, numbers, ``None`` — coexist without dtype coercion surprises, which
matches how FlorDB stores log values as text and casts on demand.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import DataFrameError, LengthMismatchError

_MISSING = (None,)


def _is_missing(value: Any) -> bool:
    """Return True for values treated as nulls (None or float NaN)."""
    if value is None:
        return True
    return isinstance(value, float) and math.isnan(value)


class Column:
    """An immutable, ordered sequence of values with a name.

    Element-wise operators return new columns; comparison operators return
    boolean columns suitable for DataFrame masking.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str, values: Iterable[Any]):
        self.name = str(name)
        self._values: list[Any] = list(values)

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, index: int | slice) -> Any:
        if isinstance(index, slice):
            return Column(self.name, self._values[index])
        return self._values[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(v) for v in self._values[:6])
        if len(self._values) > 6:
            preview += ", ..."
        return f"Column({self.name!r}, [{preview}], n={len(self)})"

    def __eq__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __lt__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a >= b)

    def __hash__(self) -> int:  # columns are not hashable (like pandas Series)
        raise TypeError("Column objects are unhashable; use .to_list() instead")

    # -------------------------------------------------------------- arithmetic
    def __add__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a + b)

    def __radd__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: b + a)

    def __sub__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: b - a)

    def __mul__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a * b)

    def __rmul__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: b * a)

    def __truediv__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a / b)

    def __and__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: bool(a) and bool(b))

    def __or__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: bool(a) or bool(b))

    def __invert__(self) -> "Column":
        return Column(self.name, [not bool(v) for v in self._values])

    def _other_values(self, other: Any) -> Sequence[Any]:
        if isinstance(other, Column):
            if len(other) != len(self):
                raise LengthMismatchError(
                    f"cannot combine columns of length {len(self)} and {len(other)}"
                )
            return other._values
        return [other] * len(self)

    def _binary(self, other: Any, op: Callable[[Any, Any], Any]) -> "Column":
        rhs = self._other_values(other)
        out = []
        for a, b in zip(self._values, rhs):
            if _is_missing(a) or _is_missing(b):
                out.append(None)
            else:
                out.append(op(a, b))
        return Column(self.name, out)

    def _compare(self, other: Any, op: Callable[[Any, Any], bool]) -> "Column":
        rhs = self._other_values(other)
        out = []
        for a, b in zip(self._values, rhs):
            if _is_missing(a) or _is_missing(b):
                out.append(False)
            else:
                try:
                    out.append(bool(op(a, b)))
                except TypeError:
                    out.append(False)
        return Column(self.name, out)

    # ------------------------------------------------------------- conversions
    def to_list(self) -> list[Any]:
        """Return the column values as a plain Python list."""
        return list(self._values)

    tolist = to_list

    def astype(self, caster: Callable[[Any], Any]) -> "Column":
        """Cast every non-null value with ``caster`` (e.g. ``int``, ``float``)."""
        out = []
        for value in self._values:
            if _is_missing(value):
                out.append(None)
                continue
            try:
                out.append(caster(value))
            except (TypeError, ValueError) as exc:
                raise DataFrameError(
                    f"cannot cast value {value!r} in column {self.name!r} with {caster!r}"
                ) from exc
        return Column(self.name, out)

    def map(self, func: Callable[[Any], Any]) -> "Column":
        """Apply ``func`` element-wise, passing nulls through unchanged."""
        return Column(
            self.name,
            [None if _is_missing(v) else func(v) for v in self._values],
        )

    apply = map

    # --------------------------------------------------------------- missing
    def isna(self) -> "Column":
        """Boolean column marking null (None / NaN) entries."""
        return Column(self.name, [_is_missing(v) for v in self._values])

    def notna(self) -> "Column":
        return Column(self.name, [not _is_missing(v) for v in self._values])

    def fillna(self, value: Any) -> "Column":
        return Column(
            self.name,
            [value if _is_missing(v) else v for v in self._values],
        )

    def dropna(self) -> "Column":
        return Column(self.name, [v for v in self._values if not _is_missing(v)])

    # ------------------------------------------------------------- reductions
    def any(self) -> bool:
        return any(bool(v) for v in self._values if not _is_missing(v))

    def all(self) -> bool:
        return all(bool(v) for v in self._values if not _is_missing(v))

    def sum(self) -> Any:
        values = [v for v in self._values if not _is_missing(v)]
        return sum(values) if values else 0

    def count(self) -> int:
        """Number of non-null values."""
        return sum(1 for v in self._values if not _is_missing(v))

    def mean(self) -> float | None:
        values = [v for v in self._values if not _is_missing(v)]
        if not values:
            return None
        return sum(values) / len(values)

    def min(self) -> Any:
        values = [v for v in self._values if not _is_missing(v)]
        return min(values) if values else None

    def max(self) -> Any:
        values = [v for v in self._values if not _is_missing(v)]
        return max(values) if values else None

    def nunique(self) -> int:
        return len({repr(v) for v in self._values if not _is_missing(v)})

    def unique(self) -> list[Any]:
        """Distinct non-null values in first-seen order."""
        seen: dict[str, Any] = {}
        for value in self._values:
            if _is_missing(value):
                continue
            seen.setdefault(repr(value), value)
        return list(seen.values())

    # ------------------------------------------------------------ cumulative
    def cumsum(self) -> "Column":
        """Cumulative sum; null entries propagate the running total unchanged."""
        out: list[Any] = []
        total: Any = 0
        for value in self._values:
            if not _is_missing(value):
                total = total + value
            out.append(total)
        return Column(self.name, out)

    # ---------------------------------------------------------------- helpers
    def rename(self, name: str) -> "Column":
        return Column(name, self._values)

    def argsort(self, reverse: bool = False) -> list[int]:
        """Stable ordering of row indices; nulls sort last."""
        def key(idx: int) -> tuple[int, Any]:
            value = self._values[idx]
            if _is_missing(value):
                return (1, 0)
            return (0, value)

        order = sorted(range(len(self._values)), key=key)
        if reverse:
            non_null = [i for i in order if not _is_missing(self._values[i])]
            nulls = [i for i in order if _is_missing(self._values[i])]
            order = list(reversed(non_null)) + nulls
        return order

    def take(self, indices: Sequence[int]) -> "Column":
        return Column(self.name, [self._values[i] for i in indices])

    def equals(self, other: "Column") -> bool:
        """Exact value equality (including null positions)."""
        if not isinstance(other, Column) or len(other) != len(self):
            return False
        for a, b in zip(self._values, other._values):
            if _is_missing(a) and _is_missing(b):
                continue
            if a != b:
                return False
        return True
