"""Frame-level operations: construction from records, concat, merge, pivot.

``pivot_logs`` implements the core transformation behind ``flor.dataframe``:
the ``logs`` table stores one row per logged value, and the user-facing frame
has one row per loop context with one column per requested log name (the
"pivoted view" of the paper's Section 2).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..errors import ColumnNotFoundError, DataFrameError
from .frame import DataFrame


def from_records(records: Iterable[Mapping[str, Any]], columns: Sequence[str] | None = None) -> DataFrame:
    """Build a DataFrame from an iterable of row dicts.

    Column order follows ``columns`` when given, otherwise first-seen order
    across all records.  Missing keys become nulls.
    """
    rows = list(records)
    if columns is None:
        ordered: list[str] = []
        for row in rows:
            for key in row:
                if key not in ordered:
                    ordered.append(key)
        columns = ordered
    data: dict[str, list[Any]] = {name: [] for name in columns}
    for row in rows:
        for name in columns:
            data[name].append(row.get(name))
    frame = DataFrame(data)
    if not rows:
        # Preserve the requested schema even when empty.
        for name in columns:
            frame[name] = []
    return frame


def concat(frames: Sequence[DataFrame]) -> DataFrame:
    """Stack frames vertically, unioning columns (missing cells become null)."""
    frames = [f for f in frames if f is not None]
    if not frames:
        return DataFrame()
    columns: list[str] = []
    for frame in frames:
        for name in frame.columns:
            if name not in columns:
                columns.append(name)
    records: list[dict[str, Any]] = []
    for frame in frames:
        records.extend(frame.to_records())
    return from_records(records, columns)


def merge(
    left: DataFrame,
    right: DataFrame,
    on: str | Sequence[str],
    how: str = "inner",
    suffixes: tuple[str, str] = ("_x", "_y"),
) -> DataFrame:
    """Join two frames on equality of the ``on`` columns.

    Supports ``inner`` and ``left`` joins, which is all the library needs for
    composing log views with build/version metadata.
    """
    if how not in {"inner", "left"}:
        raise DataFrameError(f"unsupported join type: {how!r}")
    keys = [on] if isinstance(on, str) else list(on)
    for key in keys:
        if key not in left:
            raise ColumnNotFoundError(key, tuple(left.columns))
        if key not in right:
            raise ColumnNotFoundError(key, tuple(right.columns))

    right_rows: dict[tuple, list[dict[str, Any]]] = {}
    for row in right.to_records():
        right_rows.setdefault(tuple(row[k] for k in keys), []).append(row)

    overlap = {c for c in right.columns if c in left.columns and c not in keys}
    out_records: list[dict[str, Any]] = []
    for row in left.to_records():
        key = tuple(row[k] for k in keys)
        matches = right_rows.get(key, [])
        if not matches:
            if how == "left":
                merged = _suffix_left(row, overlap, suffixes)
                for name in right.columns:
                    if name in keys:
                        continue
                    out_name = name + suffixes[1] if name in overlap else name
                    merged[out_name] = None
                out_records.append(merged)
            continue
        for match in matches:
            merged = _suffix_left(row, overlap, suffixes)
            for name, value in match.items():
                if name in keys:
                    continue
                out_name = name + suffixes[1] if name in overlap else name
                merged[out_name] = value
            out_records.append(merged)
    columns: list[str] = []
    for record in out_records:
        for name in record:
            if name not in columns:
                columns.append(name)
    if not out_records:
        columns = _merged_columns(left, right, keys, overlap, suffixes)
    return from_records(out_records, columns)


def _suffix_left(row: Mapping[str, Any], overlap: set[str], suffixes: tuple[str, str]) -> dict[str, Any]:
    return {(k + suffixes[0] if k in overlap else k): v for k, v in row.items()}


def _merged_columns(
    left: DataFrame,
    right: DataFrame,
    keys: list[str],
    overlap: set[str],
    suffixes: tuple[str, str],
) -> list[str]:
    columns = [c + suffixes[0] if c in overlap else c for c in left.columns]
    for c in right.columns:
        if c in keys:
            continue
        columns.append(c + suffixes[1] if c in overlap else c)
    return columns


def pivot_logs(
    records: Iterable[Mapping[str, Any]],
    value_names: Sequence[str],
    dimension_columns: Sequence[str],
    value_key: str = "value_name",
    value_column: str = "value",
) -> DataFrame:
    """Pivot long-format log records into one row per logging context.

    Parameters
    ----------
    records:
        Long-format rows, each containing the dimension columns plus
        ``value_key`` (the log name) and ``value_column`` (the logged value).
    value_names:
        Log names that become columns of the output frame.
    dimension_columns:
        Columns identifying a logging context (projid, tstamp, filename and
        loop iteration columns); rows sharing all dimensions merge into one
        output row.
    """
    wanted = set(value_names)
    grouped: dict[tuple, dict[str, Any]] = {}
    order: list[tuple] = []
    for record in records:
        name = record.get(value_key)
        if name not in wanted:
            continue
        key = tuple(record.get(dim) for dim in dimension_columns)
        if key not in grouped:
            grouped[key] = {dim: record.get(dim) for dim in dimension_columns}
            order.append(key)
        grouped[key][name] = record.get(value_column)
    columns = list(dimension_columns) + list(value_names)
    return from_records((grouped[key] for key in order), columns)
