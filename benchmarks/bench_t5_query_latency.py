"""T5 — Dataframe query latency over growing log volume (cold path).

The paper claims log statements are readable "as tabular data ... queried
via Pandas or SQL" with no wrangling.  This benchmark grows the ``logs``
table and measures the latency of the pivoted ``flor.dataframe`` query plus
the Figure 6-style filter + latest chain.  Expected shape: latency grows
roughly linearly with the number of matching log records.

The materialized views are invalidated before every query so this stays a
measurement of the **cold rebuild** — the repeated-read and append-delta
tiers that the query engine makes cheap are T9's subject
(``bench_t9_pivot_cache``).
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.relational.queries import latest
from repro.workloads import LoggingWorkload

#: (runs, loops per run) sweep — total records = runs × loops × 4 names.
SCALES = [(2, 100), (4, 250), (8, 500)]


@pytest.mark.parametrize("runs,loops", SCALES, ids=[f"{r}x{l}" for r, l in SCALES])
def test_dataframe_query_latency(benchmark, make_session, runs, loops):
    session = make_session(f"t5_{runs}_{loops}")
    workload = LoggingWorkload(runs=runs, loops_per_run=loops, values_per_loop=4)
    workload.populate(session)

    def query():
        session.query.invalidate()  # measure the cold rebuild (T9 covers warm)
        frame = session.dataframe("metric_0", "metric_1", "metric_2")
        newest = latest(frame)
        filtered = newest[newest.metric_0 > 0.5]
        return len(frame), len(newest), len(filtered)

    total_rows, latest_rows, filtered_rows = benchmark(query)
    report(
        f"T5: query over {workload.record_count} log records",
        [
            {
                "log_records": workload.record_count,
                "pivot_rows": total_rows,
                "latest_rows": latest_rows,
                "filtered_rows": filtered_rows,
            }
        ],
    )
    assert total_rows == runs * loops
    assert latest_rows == loops
