"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one figure or quantitative claim from the
paper (see DESIGN.md §2 and EXPERIMENTS.md).  Benchmarks print the series
they measure with :func:`report` so that running
``pytest benchmarks/ --benchmark-only -s`` reproduces the tables in
EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

import pytest

from repro import ProjectConfig, Session


@pytest.fixture()
def project(tmp_path):
    return ProjectConfig(tmp_path / "bench", "bench").ensure_layout()


@pytest.fixture()
def session(project):
    session = Session(project, default_filename="train.py")
    yield session
    session.close()


@pytest.fixture()
def make_session(tmp_path):
    created = []

    def factory(name: str = "bench", **kwargs) -> Session:
        session = Session(ProjectConfig(tmp_path / name, name), **kwargs)
        created.append(session)
        return session

    yield factory
    for session in created:
        session.close()


def report(title: str, rows: list[dict]) -> None:
    """Print a small fixed-width table of benchmark observations."""
    if not rows:
        print(f"\n[{title}] (no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(row.get(c))) for row in rows)) for c in columns
    }
    print(f"\n[{title}]")
    print("  " + "  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        print("  " + "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
