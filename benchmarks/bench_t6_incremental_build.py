"""T6 — Incremental build avoidance after a single-stage change.

The demo claims FlorDB-driven pipelines re-run "only the parts of the
workflow that have been selected".  This benchmark builds the full pipeline,
invalidates one mid-pipeline input (featurize.py), rebuilds, and compares the
re-executed stage count and wall-clock against a forced full rebuild.
Expected shape: the incremental rebuild touches only the downstream stages
and costs a fraction of the full rebuild.
"""

from __future__ import annotations

import time

from conftest import report

from repro.workloads import PipelineWorkload


def test_incremental_build_avoidance(benchmark, make_session, tmp_path):
    session = make_session("t6")
    workload = PipelineWorkload(documents=4, max_pages=5, epochs=2, seed=3)
    executor, _pipeline = workload.build_executor(session, tmp_path / "build")

    start = time.perf_counter()
    initial = executor.build("run")
    full_seconds = time.perf_counter() - start
    assert len(initial.executed) == 5

    cached = executor.build("run")
    assert cached.executed == []

    time.sleep(0.01)
    (tmp_path / "build" / "featurize.py").write_text("# featurization tweak\n")

    start = time.perf_counter()
    incremental = benchmark.pedantic(lambda: executor.build("run"), rounds=1, iterations=1)
    incremental_seconds = time.perf_counter() - start

    forced = executor.build("run", force=True)

    report(
        "T6: rebuild after touching featurize.py",
        [
            {"build": "initial (cold)", "stages_executed": len(initial.executed), "seconds": full_seconds},
            {"build": "unchanged", "stages_executed": 0, "seconds": 0.0},
            {
                "build": "featurize.py touched",
                "stages_executed": len(incremental.executed),
                "seconds": incremental_seconds,
                "stages": ",".join(incremental.executed),
            },
            {"build": "forced full", "stages_executed": len(forced.executed), "seconds": None},
        ],
    )
    assert set(incremental.executed) == {"featurize", "train", "infer", "run"}
    assert "process_pdfs" not in incremental.executed
    assert len(forced.executed) == 5
