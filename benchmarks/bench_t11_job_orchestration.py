"""T11 — Job orchestration: durable backfill jobs vs. inline, crash-and-resume.

The ``repro.jobs`` subsystem moves multiversion hindsight backfills off the
request path: a job is persisted, claimed under a heartbeat-renewed lease,
executed one version at a time with a durable progress checkpoint after each
version, and supervised with bounded retries.  Two measurements:

* **Jobs vs. inline** — the same multi-tenant backfill work-list
  (:class:`~repro.workloads.BackfillJobWorkload`) executed as a serial
  in-process loop versus one durable job per tenant drained by a
  :class:`~repro.jobs.JobRunner` worker pool.  Queue supervision (claims,
  leases, heartbeats, per-version events) must stay cheap: asserted at full
  scale, the jobs path finishes within ``OVERHEAD_CEILING ×`` the inline
  wall-clock while producing identical records — and every replay survives a
  process-death at any point, which the inline loop cannot claim.
* **Crash and resume** — a worker "dies" (stops heartbeating) mid-backfill
  after K versions; once the lease lapses, a fresh runner reclaims the job.
  Asserted: the resumed execution replays only the ``versions − K``
  unfinished versions, and the backfilled column is complete.
"""

from __future__ import annotations

import time

import pytest
from conftest import report

from repro import ProjectConfig, Session
from repro.jobs import (
    JobInterrupted,
    JobRunner,
    JobStore,
    directory_session_provider,
    execute_job,
    pool_session_provider,
)
from repro.service import DatabasePool
from repro.workloads import BackfillJobWorkload

#: (projects, versions) per scale; smoke keeps CI's shared runners fast.
SCALES = {"smoke": (2, 2), "full": (4, 4)}
EPOCHS = 4
STEPS = 2
WORKERS = 4

#: Full-scale bound on queue-supervision overhead: the durable path pays
#: store transactions + per-version events + per-version session checkouts
#: on top of the same replays, and multi-tenant workers claw most of it
#: back.  Crash-safety must not cost more than this factor.
OVERHEAD_CEILING = 2.0


def _workload(scale: str) -> BackfillJobWorkload:
    projects, versions = SCALES[scale]
    return BackfillJobWorkload(
        projects=projects, versions=versions, epochs=EPOCHS, steps=STEPS
    )


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_jobs_vs_inline_backfill(benchmark, tmp_path, scale):
    workload = _workload(scale)
    inline_root = tmp_path / "inline"
    jobs_root = tmp_path / "jobs"
    workload.populate(inline_root)
    workload.populate(jobs_root)

    inline_records, inline_seconds = _time(lambda: workload.backfill_inline(inline_root))

    # The jobs path runs the way `repro serve --job-workers N` does: workers
    # check out shards from a DatabasePool, so tenant sessions stay open
    # across the per-version checkouts.
    pool = DatabasePool(jobs_root, capacity=workload.projects)
    store = JobStore.open(jobs_root)
    try:
        job_ids = workload.submit_all(store)
        runner = JobRunner(
            store, pool_session_provider(pool), workers=WORKERS, poll_interval=0.01
        )

        def drain() -> bool:
            return runner.run_until_idle(timeout=300.0)

        idle, jobs_seconds = benchmark.pedantic(
            lambda: _time(drain), rounds=1, iterations=1
        )
        assert idle, "job queue did not drain"
        jobs = [store.require(job_id) for job_id in job_ids]
        assert all(job.state == "succeeded" for job in jobs), [
            (job.id, job.state, job.error) for job in jobs
        ]
        jobs_records = sum(job.result["new_records"] for job in jobs)
    finally:
        store.close()
        pool.close()

    expected = workload.projects * workload.expected_new_records
    overhead = jobs_seconds / inline_seconds if inline_seconds else float("inf")
    report(
        f"T11: jobs vs inline backfill, {scale} scale"
        f" ({workload.projects} tenants x {workload.versions} versions)",
        [
            {
                "path": "inline-serial",
                "seconds": inline_seconds,
                "records": inline_records,
                "records_s": inline_records / inline_seconds if inline_seconds else 0.0,
            },
            {
                "path": f"jobs-{WORKERS}w",
                "seconds": jobs_seconds,
                "records": jobs_records,
                "records_s": jobs_records / jobs_seconds if jobs_seconds else 0.0,
            },
            {"path": "overhead_x", "seconds": overhead, "records": 0, "records_s": 0.0},
        ],
    )
    assert inline_records == expected
    assert jobs_records == expected
    if scale == "full":
        assert overhead <= OVERHEAD_CEILING, (
            f"durable jobs took {overhead:.2f}x the inline serial backfill"
            f" (ceiling {OVERHEAD_CEILING}x)"
        )


def test_crash_and_resume_replays_only_remaining(benchmark, tmp_path):
    """Acceptance: restart reclaims the lease and replays only unfinished versions."""
    projects, versions = SCALES["full"]
    workload = BackfillJobWorkload(projects=1, versions=versions, epochs=EPOCHS, steps=STEPS)
    root = tmp_path / "crash"
    workload.populate(root)
    crash_after = versions // 2

    store = JobStore.open(root, lease_seconds=0.05)
    try:
        job_id = workload.submit_all(store)[0]
        claimed = store.claim("doomed-worker")
        assert claimed is not None and claimed.id == job_id
        store.mark_running(job_id, "doomed-worker")

        calls = {"n": 0}

        def die_after_k() -> bool:
            calls["n"] += 1
            return calls["n"] > crash_after

        with pytest.raises(JobInterrupted):
            # The "crash": the worker stops mid-job and never releases or
            # fails the lease — exactly what a SIGKILL looks like to the
            # store.  Progress checkpoints for the first K versions are
            # already durable.
            execute_job(
                claimed,
                store,
                directory_session_provider(root),
                worker="doomed-worker",
                should_stop=die_after_k,
            )
        assert len(store.completed_versions(job_id)) == crash_after
        time.sleep(0.1)  # let the abandoned lease lapse

        runner = JobRunner(
            store, directory_session_provider(root), workers=1, lease_seconds=10.0
        )
        idle, resume_seconds = benchmark.pedantic(
            lambda: _time(lambda: runner.run_until_idle(timeout=120.0)),
            rounds=1,
            iterations=1,
        )
        assert idle
        job = store.require(job_id)
        assert job.state == "succeeded"
        assert job.result["versions_checkpointed"] == crash_after
        assert job.result["versions_replayed"] == versions - crash_after

        kinds = [event.kind for event in store.events(job_id)]
        assert kinds.count("lease_reclaimed") == 1
        # One 'version' event per version total, across both executions.
        assert kinds.count("version") == versions
    finally:
        store.close()

    project = workload.project_names()[0]
    with Session(ProjectConfig(root / project, project)) as session:
        frame = session.dataframe("weight")
        assert len(frame) == workload.expected_new_records

    report(
        "T11: crash-and-resume",
        [
            {
                "versions": versions,
                "checkpointed_before_crash": crash_after,
                "replayed_on_resume": versions - crash_after,
                "resume_seconds": resume_seconds,
            }
        ],
    )
