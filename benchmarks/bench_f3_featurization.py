"""F3 — Figure 3: featurization logging and the pivoted dataframe.

Measures the instrumented featurization loop over a corpus sweep and checks
that the pivoted view has one row per page with the figure's columns
(text_src, headings, page_numbers) addressable by document and page.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro import active_session
from repro.docs.corpus import generate_corpus
from repro.docs.featurize import featurize_corpus

SCALES = [4, 8, 16]


@pytest.mark.parametrize("num_documents", SCALES)
def test_figure3_featurization(benchmark, make_session, num_documents):
    session = make_session(f"f3_{num_documents}")
    corpus = generate_corpus(num_documents=num_documents, min_pages=3, max_pages=8, seed=1)

    def run():
        with active_session(session):
            features = list(featurize_corpus(corpus))
            session.commit("featurize")
        return features

    features = benchmark.pedantic(run, rounds=1, iterations=1)
    frame = session.dataframe("text_src", "headings", "page_numbers", "first_page")
    report(
        f"F3: featurization of {num_documents} documents",
        [
            {
                "documents": num_documents,
                "pages": corpus.total_pages,
                "pivot_rows": len(frame),
                "log_records": session.logs.count(),
            }
        ],
    )
    assert len(features) == corpus.total_pages
    assert len(frame) == corpus.total_pages
    assert {"document_value", "page"} <= set(frame.columns)
    assert set(frame["text_src"].unique()) <= {"OCR", "TXT"}
