"""T3 — Multiversion propagation: accuracy and cost across refactored versions.

The paper claims new log statements are injected "into the correct locations
in all prior versions".  This benchmark evolves a script across V versions
(each refactored relative to the last), propagates a new statement into every
version, and verifies placement by replaying: a correctly placed statement
materializes the new value for every recorded epoch of every version.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro import HindsightEngine
from repro.core.propagation import propagate_statements
from repro.workloads import VersionedScriptWorkload

VERSION_SWEEP = [3, 6]


@pytest.mark.parametrize("versions", VERSION_SWEEP)
def test_propagation_accuracy_and_cost(benchmark, make_session, versions):
    session = make_session(f"t3_{versions}")
    workload = VersionedScriptWorkload(versions=versions, epochs=4, steps=2, refactor=True)
    vids = workload.record_all_versions(session)
    new_source = workload.hindsight_source()
    engine = HindsightEngine(session)

    def propagate_all():
        results = []
        for vid in vids:
            old_source = engine.historical_source(vid, "train.py")
            results.append(propagate_statements(old_source, new_source))
        return results

    results = benchmark.pedantic(propagate_all, rounds=1, iterations=1)
    injected = sum(r.injected_count for r in results)
    skipped = sum(len(r.skipped) for r in results)

    # Ground truth via replay: every epoch/step of every version gets 'weight'.
    backfill = engine.backfill("train.py", new_source=new_source)
    frame = session.dataframe("loss", "weight")
    missing = sum(1 for row in frame.to_records() if row.get("weight") is None)

    report(
        f"T3: propagation across {versions} refactored versions",
        [
            {
                "versions": versions,
                "statements_injected": injected,
                "statements_skipped": skipped,
                "rows_total": len(frame),
                "rows_missing_weight": missing,
                "backfill_seconds": backfill.wall_seconds,
            }
        ],
    )
    assert injected == versions  # exactly one new statement per historical version
    assert skipped == 0
    assert missing == 0
