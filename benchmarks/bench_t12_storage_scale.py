"""T12 — Storage layer at scale: replica reads, cold-tier cache, seam cost.

Three measurements of the pluggable storage layer (``repro.storage``):

* **Replica read scaling** — aggregate dataframe reads/sec from 4 reader
  threads while a writer thread ingests continuously.  The single-handle
  baseline is the service's default read path (flush + read-your-writes on
  the primary connection): every read must merge the writer's fresh delta
  under the shared lock.  Replica routing serves bounded-stale snapshots
  from per-replica connections and materialized views — the per-read merge
  collapses into a per-sync cost paid on the watermark cadence.  Asserted:
  **replicas ≥ 1.5× single-handle** (measured headroom is far larger), and
  the replica watermark converges to the primary's ``MAX(logs.seq)`` once
  the writer quiesces (bounded staleness, not lost writes).
* **Warm archive reads** — cold blobs are packed into append-only archives
  behind an LRU byte cache (``repro gc --tier-cold``).  A warm cold read is
  a dict hit instead of a file open, so it must stay **within 2× of a
  hot-path read** (in practice it is faster).
* **Ingest non-regression** — the T8-shape batched-vs-unbatched sweep runs
  through the refactored protocol seam *with replicas enabled*; batched
  ingestion must still clear the **≥ 5×** floor T8 asserts, proving the
  storage seam and replica plumbing cost the write path nothing.

Assertions fire at full scale only (T5/T9/T10's convention); CI's
smoke-bench job records the smoke-scale trajectory in ``BENCH_*.json``.
"""

from __future__ import annotations

import threading
import time

import pytest
from conftest import report

from repro.relational.records import LogRecord
from repro.service import FlorService
from repro.service.pool import DatabasePool
from repro.storage.tiering import TieredBlobStore
from repro.versioning.objects import ObjectStore
from repro.webapp.framework import TestClient
from repro.workloads import ServiceLoadReport, ServiceWorkload

#: Seconds each read mode runs for (duration-boxed: the single-handle
#: baseline completes few reads under heavy ingest, so a fixed read count
#: would make its leg arbitrarily slow).
READ_DURATIONS = {"smoke": 0.5, "full": 2.0}
READERS = 4
SEED_ROWS = 2_000
WRITER_BATCH = 200

BLOB_SCALES = {"smoke": 40, "full": 150}
BLOB_SIZE = 8_192
BLOB_ROUNDS = 30

INGEST_SCALES = {"smoke": 10, "full": 30}  # requests per client
INGEST_CLIENTS = 8
INGEST_PROJECTS = 4


# ---------------------------------------------------------------- replicas
def _measure_reads(tmp_path, label: str, *, replicas: int, duration: float):
    """Aggregate reads/sec of READERS threads racing a continuous writer."""
    pool = DatabasePool(
        tmp_path / label,
        flush_size=WRITER_BATCH,
        flush_interval=None,
        flush_mode="sync",
        replicas=replicas,
        replica_staleness=0.1,
    )
    shard = pool.get("bench")
    session = shard.session
    for i in range(SEED_ROWS):
        session.log("metric", i * 0.001)
    shard.flush()

    stop = threading.Event()

    def writer() -> None:
        base = 0
        while not stop.is_set():
            rows = [
                LogRecord.create(
                    projid=session.projid,
                    tstamp=session.tstamp,
                    filename="writer.py",
                    ctx_id=0,
                    value_name="metric",
                    value=base + j,
                )
                for j in range(WRITER_BATCH)
            ]
            shard.queue.append(logs=rows)
            base += WRITER_BATCH

    counts = [0] * READERS
    deadline = time.perf_counter() + duration

    def read_replica(slot: int) -> None:
        while time.perf_counter() < deadline:
            shard.replicas.dataframe(("metric",))
            counts[slot] += 1

    def read_primary(slot: int) -> None:
        while time.perf_counter() < deadline:
            with shard.lock:  # the pre-replica service read path
                shard.flush()
                session.dataframe("metric")
            counts[slot] += 1

    target = read_replica if replicas else read_primary
    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    time.sleep(0.05)
    readers = [threading.Thread(target=target, args=(slot,)) for slot in range(READERS)]
    start = time.perf_counter()
    for thread in readers:
        thread.start()
    for thread in readers:
        thread.join()
    elapsed = time.perf_counter() - start
    stop.set()
    writer_thread.join()

    converged = None
    if replicas:
        shard.flush()
        shard.replicas.refresh()
        primary_seq = session.db.query_one("SELECT COALESCE(MAX(seq), 0) FROM logs")[0]
        converged = shard.replicas.replicated.min_watermark() == primary_seq
        sync_stats = shard.replicas.replicated.stats.as_dict()
    else:
        sync_stats = {}
    pool.close()
    return sum(counts) / elapsed, converged, sync_stats


@pytest.mark.parametrize("scale", sorted(READ_DURATIONS))
def test_replica_reads_scale_under_concurrent_ingest(benchmark, tmp_path, scale):
    duration = READ_DURATIONS[scale]
    primary_rps, _, _ = _measure_reads(
        tmp_path, f"t12_primary_{scale}", replicas=0, duration=duration
    )
    replica_rps, converged, sync_stats = benchmark.pedantic(
        lambda: _measure_reads(
            tmp_path, f"t12_replica_{scale}", replicas=2, duration=duration
        ),
        rounds=1,
        iterations=1,
    )
    scaling = replica_rps / primary_rps if primary_rps else float("inf")
    report(
        f"T12: replica read scaling, {scale} scale ({READERS} readers + 1 writer)",
        [
            {
                "mode": "single-handle",
                "reads_s": primary_rps,
                "syncs": "-",
                "stale_served": "-",
            },
            {
                "mode": "2 replicas",
                "reads_s": replica_rps,
                "syncs": sync_stats.get("syncs", 0),
                "stale_served": sync_stats.get("skipped_syncs", 0),
            },
        ],
    )
    # Bounded staleness, not lost writes: once the writer quiesces and a
    # final snapshot ships, every replica serves the primary's full history.
    assert converged is True
    if scale == "full":
        assert scaling >= 1.5, (
            f"replica-routed reads reached only {scaling:.2f}x the "
            f"single-handle baseline under concurrent ingest"
        )


# ------------------------------------------------------------ cold tiering
@pytest.mark.parametrize("scale", sorted(BLOB_SCALES))
def test_warm_archive_reads_within_bound_of_hot(benchmark, tmp_path, scale):
    blobs = BLOB_SCALES[scale]
    tiered = TieredBlobStore(
        ObjectStore(tmp_path / "objects"),
        tmp_path / "archive",
        cache_bytes=4 * blobs * BLOB_SIZE,
    )
    hot_ids = [
        tiered.put(bytes([i % 251]) * BLOB_SIZE + f"hot{i}".encode())
        for i in range(blobs)
    ]
    cold_ids = [
        tiered.put(bytes([i % 251]) * BLOB_SIZE + f"cold{i}".encode())
        for i in range(blobs)
    ]
    assert tiered.archive(cold_ids) == blobs
    for object_id in cold_ids:  # first touch seeks into the pack
        tiered.get(object_id)

    def sweep(ids) -> float:
        start = time.perf_counter()
        for _ in range(BLOB_ROUNDS):
            for object_id in ids:
                tiered.get(object_id)
        return (time.perf_counter() - start) / (BLOB_ROUNDS * len(ids))

    hot_seconds = sweep(hot_ids)
    warm_seconds = benchmark.pedantic(lambda: sweep(cold_ids), rounds=1, iterations=1)
    ratio = warm_seconds / hot_seconds if hot_seconds else float("inf")
    stats = tiered.stats()
    report(
        f"T12: warm archive vs hot blob reads, {scale} scale",
        [
            {
                "blobs": blobs,
                "hot_us": hot_seconds * 1e6,
                "warm_us": warm_seconds * 1e6,
                "warm_vs_hot_x": ratio,
                "cache_hits": stats["cache_hits"],
                "cache_misses": stats["cache_misses"],
            }
        ],
    )
    if scale == "full":
        assert ratio <= 2.0, (
            f"warm archive-cache reads are {ratio:.2f}x hot-path reads "
            f"(bound: 2.0x)"
        )


# --------------------------------------------------------- ingest no-regress
def _drive_ingest(tmp_path, label: str, *, batch: int, requests: int) -> ServiceLoadReport:
    service = FlorService(
        tmp_path / label,
        pool_capacity=INGEST_PROJECTS,
        flush_size=batch,
        flush_interval=None,
        flush_mode="sync",
        replicas=2,  # the new read plumbing must not tax the write path
    )
    try:
        workload = ServiceWorkload(
            clients=INGEST_CLIENTS,
            requests_per_client=requests,
            records_per_request=batch,
            projects=INGEST_PROJECTS,
        )
        result = workload.run(TestClient(service.app()))
        assert result.errors == 0
        return result
    finally:
        service.close()


@pytest.mark.parametrize("scale", sorted(INGEST_SCALES))
def test_ingest_throughput_not_regressed_by_storage_seam(benchmark, tmp_path, scale):
    """The T8 headline (batched ≥ 5× unbatched) must survive the refactor."""
    requests = INGEST_SCALES[scale]
    baseline = _drive_ingest(tmp_path, f"t12_i1_{scale}", batch=1, requests=requests)
    batched = benchmark.pedantic(
        lambda: _drive_ingest(tmp_path, f"t12_i64_{scale}", batch=64, requests=requests),
        rounds=1,
        iterations=1,
    )
    speedup = (
        batched.records_per_second / baseline.records_per_second
        if baseline.records_per_second
        else float("inf")
    )
    report(
        f"T12: ingest through the storage seam, {scale} scale "
        f"({INGEST_CLIENTS} clients, replicas on)",
        [
            {
                "batch": 1,
                "records_s": baseline.records_per_second,
                "p99_ms": baseline.percentile(99) * 1e3,
            },
            {
                "batch": 64,
                "records_s": batched.records_per_second,
                "p99_ms": batched.percentile(99) * 1e3,
            },
        ],
    )
    if scale == "full":
        assert speedup >= 5.0, (
            f"batched ingestion through the storage seam reached only "
            f"{speedup:.1f}x the unbatched baseline (T8 asserts 5x)"
        )
