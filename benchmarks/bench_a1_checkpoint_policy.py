"""A1 — Ablation: adaptive vs. fixed-interval vs. no checkpointing.

DESIGN.md calls out adaptive checkpointing as a key design decision.  This
ablation records the same run under four policies and measures (a) how many
checkpoints each takes (recording cost) and (b) how many iterations a
targeted hindsight query must re-execute under each (replay cost).
Expected shape: "never" minimizes record cost but forces full re-execution;
"every iteration" minimizes replay work at maximum record cost; adaptive
lands in between on both axes.
"""

from __future__ import annotations

import textwrap

import pytest
from conftest import report

from repro import HindsightEngine, ReplayPlan, active_session, flor
from repro.core.checkpoint import (
    AdaptiveCheckpointPolicy,
    EveryIterationPolicy,
    FixedIntervalPolicy,
    NeverCheckpointPolicy,
)

EPOCHS = 12

SCRIPT = textwrap.dedent(
    f"""
    state = {{"w": 0.0}}
    with flor.checkpointing(state=state):
        for epoch in flor.loop("epoch", range({EPOCHS})):
            acc = 0.0
            for i in range(1500):
                acc += (i % 5) * 0.01
            state["w"] += acc
            flor.log("loss", 1.0 / (1.0 + state["w"]))
    """
).strip()

NEW_SCRIPT = SCRIPT.replace(
    'flor.log("loss", 1.0 / (1.0 + state["w"]))',
    'flor.log("loss", 1.0 / (1.0 + state["w"]))\n        flor.log("weight", state["w"])',
)

POLICIES = [
    ("never", NeverCheckpointPolicy()),
    ("every-iteration", EveryIterationPolicy()),
    ("fixed-4", FixedIntervalPolicy(interval=4)),
    ("adaptive", AdaptiveCheckpointPolicy(max_overhead=0.05)),
]


def _record(make_session, name, policy):
    session = make_session(f"a1_{name}", checkpoint_policy=policy)
    (session.config.root / "train.py").write_text(SCRIPT)
    session.track("train.py")
    namespace = {"__file__": "train.py", "flor": flor}
    with active_session(session):
        exec(compile(SCRIPT, "train.py", "exec"), namespace)  # noqa: S102
        session.commit("run")
    return session


@pytest.mark.parametrize("name,policy", POLICIES, ids=[name for name, _ in POLICIES])
def test_checkpoint_policy_ablation(benchmark, make_session, name, policy):
    session = benchmark.pedantic(
        lambda: _record(make_session, name, policy), rounds=1, iterations=1
    )
    checkpoints_taken = session.checkpoints.saved

    engine = HindsightEngine(session)
    result = engine.backfill(
        "train.py", new_source=NEW_SCRIPT, plan=ReplayPlan.only(epoch=[EPOCHS - 1])
    )

    report(
        f"A1: checkpoint policy = {name}",
        [
            {
                "policy": name,
                "checkpoints_taken": checkpoints_taken,
                "replay_iterations_for_last_epoch": result.iterations_executed,
                "iterations_skipped": result.iterations_skipped,
            }
        ],
    )
    if name == "never":
        assert checkpoints_taken == 0
        assert result.iterations_executed == EPOCHS  # full re-execution forced
    if name == "every-iteration":
        assert checkpoints_taken == EPOCHS
        assert result.iterations_executed == 1
    if name == "fixed-4":
        assert checkpoints_taken == EPOCHS // 4
        assert 1 <= result.iterations_executed <= 4
    if name == "adaptive":
        assert 1 <= checkpoints_taken <= EPOCHS
        assert result.iterations_executed < EPOCHS
