"""T8 — Service throughput: batched vs. unbatched ingestion under load.

The service layer (``repro.service``) fronts FlorDB for many concurrent
clients and amortizes SQLite's per-transaction commit cost by coalescing
appended records into one transaction per flush.  This benchmark drives
the bulk-append endpoint with :class:`~repro.workloads.ServiceWorkload`
(8 client threads by default) at several batch sizes — ``batch`` controls
both the records per request and the ingestion queue's ``flush_size`` —
and reports requests/sec, records/sec and p50/p99 append latency.

Expected shape: records/sec grows steeply with batch size (each batched
transaction pays the commit cost once for ``batch`` records), while
per-request latency grows only mildly.  The headline claim, asserted
below: batch ≥ 64 sustains at least 5× the append throughput of
batch = 1 under 8 concurrent clients.  A second sweep holds the batch
fixed and varies client concurrency to show throughput is stable as
contention rises (per-shard locks serialize writers per tenant, tenants
proceed independently).
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.service import FlorService
from repro.webapp.framework import TestClient
from repro.workloads import ServiceLoadReport, ServiceWorkload

BATCH_SWEEP = [1, 16, 64]
CLIENT_SWEEP = [2, 8]
CLIENTS = 8
REQUESTS_PER_CLIENT = 30
PROJECTS = 4


def _drive(tmp_path, name: str, *, batch: int, clients: int) -> ServiceLoadReport:
    # Pinned to the sync flusher: this benchmark isolates the *queue-level*
    # batching ablation (transactions per flush_size), which the background
    # flusher's own transaction coalescing would otherwise mask — the T10
    # benchmark measures that second effect on its own.
    service = FlorService(
        tmp_path / name,
        pool_capacity=PROJECTS,
        flush_size=batch,
        flush_interval=None,
        flush_mode="sync",
    )
    try:
        workload = ServiceWorkload(
            clients=clients,
            requests_per_client=REQUESTS_PER_CLIENT,
            records_per_request=batch,
            projects=PROJECTS,
        )
        result = workload.run(TestClient(service.app()))
        assert result.errors == 0
        return result
    finally:
        service.close()


def test_batched_ingestion_throughput(benchmark, tmp_path):
    """Batch ≥ 64 must sustain ≥ 5× the records/sec of batch = 1."""
    results: dict[int, ServiceLoadReport] = {}
    for batch in BATCH_SWEEP[:-1]:
        results[batch] = _drive(tmp_path, f"t8_b{batch}", batch=batch, clients=CLIENTS)
    results[BATCH_SWEEP[-1]] = benchmark.pedantic(
        lambda: _drive(tmp_path, f"t8_b{BATCH_SWEEP[-1]}", batch=BATCH_SWEEP[-1], clients=CLIENTS),
        rounds=1,
        iterations=1,
    )
    report(
        f"T8: append throughput vs batch size ({CLIENTS} clients)",
        [
            {
                "batch": batch,
                "records_s": result.records_per_second,
                "requests_s": result.requests_per_second,
                "p50_ms": result.percentile(50) * 1e3,
                "p99_ms": result.percentile(99) * 1e3,
                "records": result.records,
            }
            for batch, result in sorted(results.items())
        ],
    )
    baseline = results[1].records_per_second
    batched = results[BATCH_SWEEP[-1]].records_per_second
    assert batched >= 5.0 * baseline, (
        f"batched ingestion ({BATCH_SWEEP[-1]}) reached only "
        f"{batched / baseline:.1f}x the unbatched baseline"
    )


@pytest.mark.parametrize("clients", CLIENT_SWEEP)
def test_throughput_under_concurrency(benchmark, tmp_path, clients):
    """Records/sec should not collapse as client concurrency rises."""
    result = benchmark.pedantic(
        lambda: _drive(tmp_path, f"t8_c{clients}", batch=64, clients=clients),
        rounds=1,
        iterations=1,
    )
    report(
        f"T8: concurrency sweep (batch=64, {clients} clients)",
        [
            {
                "clients": clients,
                "records_s": result.records_per_second,
                "p50_ms": result.percentile(50) * 1e3,
                "p99_ms": result.percentile(99) * 1e3,
            }
        ],
    )
    assert result.records > 0
