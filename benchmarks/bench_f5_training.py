"""F5 — Figure 5: the instrumented training loop.

Runs the figure's training loop (flor.arg hyperparameters, checkpointing
block, nested epoch/step loops, per-step loss and per-epoch acc/recall) and
reports the metric trajectory plus the number of checkpoints the adaptive
policy chose to take.
"""

from __future__ import annotations

from conftest import report

from repro import active_session
from repro.ml.dataset import train_test_split
from repro.ml.train import TrainingConfig, make_synthetic_classification, train_classifier


def test_figure5_training_loop(benchmark, make_session):
    session = make_session("f5")
    data = make_synthetic_classification(samples=400, features=12, classes=3, seed=5)
    train_data, test_data = train_test_split(data, test_fraction=0.25, seed=5)
    config = TrainingConfig(hidden=48, epochs=5, batch_size=32, lr=5e-3)

    def run():
        with active_session(session):
            result = train_classifier(train_data, test_data, config)
            session.commit("figure 5 training run")
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    metrics = session.dataframe("acc", "recall")
    losses = session.dataframe("loss")
    rows = [
        {
            "epoch": row["epoch"],
            "acc": row["acc"],
            "recall": row["recall"],
        }
        for row in metrics.to_records()
    ]
    report("F5: per-epoch metrics (flor.dataframe('acc', 'recall'))", rows)
    report(
        "F5: run summary",
        [
            {
                "loss_records": len(losses),
                "checkpoints": session.checkpoints.saved,
                "final_acc": result.final_accuracy,
                "final_recall": result.final_recall,
            }
        ],
    )

    assert len(metrics) == config.epochs
    assert len(losses) == len(result.losses)
    assert session.checkpoints.saved >= 1
    assert result.final_accuracy > 0.8  # the synthetic task is learnable
