"""T14 — Fleet scaling: batched ingest throughput vs. worker count.

One ``repro serve`` process caps aggregate ingest at one GIL and one
SQLite writer lock per shard host.  ``repro serve --workers N`` splits the
data plane into N worker processes behind a consistent-hash router
(:mod:`repro.fleet`), so tenants on different workers stop sharing either
bottleneck.  This benchmark boots real fleets (router + supervisor +
worker subprocesses, sockets end to end) at each worker count and drives
the T8-shape batched workload over keep-alive HTTP with
:meth:`~repro.workloads.ServiceWorkload.run_http`.

Asserted at every scale (the invariants):

* zero request errors and zero dropped rows;
* every acknowledged record is stored — per-project SQL counts after a
  primary-read flush barrier sum to exactly the acked total;
* the ring actually spreads the tenants (> 1 distinct owner at N = 4);
* the supervisor exits 0 after a drain hand-off shutdown.

Asserted at full scale only (T5/T9/T10/T13's convention, because smoke
runs on CI boxes with too few cores to demonstrate scaling): 4 workers
sustain ≥ 2.5× the records/sec of the single-worker fleet.
"""

from __future__ import annotations

from urllib.parse import quote

import pytest
from conftest import report

from repro.testing import FleetProcess
from repro.workloads import ServiceLoadReport, ServiceWorkload

WORKER_SWEEP = [1, 4]
PROJECTS = 4
#: Full-scale headline: 4 workers vs 1 worker on the same workload.
SCALING_FLOOR = 2.5

SCALES = {
    "smoke": {"clients": 4, "requests_per_client": 8, "batch": 16},
    "full": {"clients": 8, "requests_per_client": 40, "batch": 64},
}

COUNT_METRIC_SQL = quote("SELECT COUNT(*) AS n FROM logs WHERE value_name = 'metric'")


def _drive(
    tmp_path, label: str, *, workers: int, clients: int, requests_per_client: int, batch: int
) -> tuple[ServiceLoadReport, dict[str, str]]:
    workload = ServiceWorkload(
        clients=clients,
        requests_per_client=requests_per_client,
        records_per_request=batch,
        projects=PROJECTS,
    )
    with FleetProcess(tmp_path / label, workers=workers) as fleet:
        result = workload.run_http(fleet.base_url)
        assert result.errors == 0, f"{result.errors} failed requests at {workers} workers"
        # Invariant: acked == stored.  The primary read is the flush
        # barrier; the SQL count is the on-disk truth.
        stored = 0
        for project in workload.project_names():
            fleet.get(f"/projects/{project}/dataframe?names=metric&primary=1")
            stats = fleet.get(f"/projects/{project}/stats")
            assert stats["dropped_rows_total"] == 0
            rows = fleet.get(f"/projects/{project}/sql?q={COUNT_METRIC_SQL}")["records"]
            stored += int(rows[0]["n"])
        assert stored == result.records, (
            f"acked {result.records} records but stored {stored} at {workers} workers"
        )
        placement = {p: fleet.resolve(p) for p in workload.project_names()}
        assert fleet.terminate() == 0
    return result, placement


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_fleet_ingest_scales_with_workers(benchmark, tmp_path, scale):
    params = SCALES[scale]
    results: dict[int, ServiceLoadReport] = {}
    placements: dict[int, dict[str, str]] = {}
    for workers in WORKER_SWEEP[:-1]:
        results[workers], placements[workers] = _drive(
            tmp_path, f"t14_w{workers}", workers=workers, **params
        )
    top = WORKER_SWEEP[-1]
    results[top], placements[top] = benchmark.pedantic(
        lambda: _drive(tmp_path, f"t14_w{top}", workers=top, **params),
        rounds=1,
        iterations=1,
    )
    report(
        f"T14: fleet ingest scaling, {scale} scale "
        f"({params['clients']} clients, batch={params['batch']})",
        [
            {
                "workers": workers,
                "records_s": result.records_per_second,
                "requests_s": result.requests_per_second,
                "p50_ms": result.percentile(50) * 1e3,
                "p99_ms": result.percentile(99) * 1e3,
                "records": result.records,
                "owners": len(set(placements[workers].values())),
            }
            for workers, result in sorted(results.items())
        ],
    )
    # The ring must spread 4 tenants over the 4-worker fleet.
    assert len(set(placements[top].values())) > 1, (
        f"all {PROJECTS} tenants landed on one worker: {placements[top]}"
    )
    assert len(set(placements[1].values())) == 1
    if scale == "full":
        speedup = results[top].records_per_second / results[1].records_per_second
        assert speedup >= SCALING_FLOOR, (
            f"{top} workers reached only {speedup:.2f}x the single-worker "
            f"throughput (floor {SCALING_FLOOR}x)"
        )
